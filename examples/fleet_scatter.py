#!/usr/bin/env python3
"""Reproduce Figure 1's fleet scatter in the terminal.

Samples a heterogeneous fleet of receiver hosts (cores, IOMMU settings,
hugepage policy, memory antagonists, transports), simulates each, and
renders the (link utilization, drop rate) scatter with root-cause
labels — the paper's two observations fall out: drops correlate with
utilization AND happen at low utilization on memory-antagonized hosts.

    python examples/fleet_scatter.py [--hosts 30]
"""

import argparse
from collections import Counter

from repro.analysis.text_plots import scatter_plot
from repro.workload.fleet import FleetSampler


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=30)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    sampler = FleetSampler(seed=args.seed, warmup=3e-3, duration=6e-3)
    print(f"simulating {args.hosts} heterogeneous hosts...")
    samples = sampler.run(
        args.hosts,
        progress=lambda i, n: print(f"  host {i}/{n}", end="\r"))
    print()

    points = [(s.link_utilization, s.drop_rate) for s in samples]
    print(scatter_plot(points,
                       title="Fig. 1: host drop rate vs link utilization",
                       x_label="link utilization",
                       y_label="drop rate"))

    droppers = [s for s in samples if s.drop_rate > 1e-4]
    low_util = [s for s in droppers if s.link_utilization < 0.5]
    print(f"\n{len(droppers)}/{len(samples)} hosts drop packets; "
          f"{len(low_util)} of them at <50% link utilization.")
    causes = Counter(s.congestion_class for s in droppers)
    print("root causes among dropping hosts:",
          dict(causes.most_common()))


if __name__ == "__main__":
    main()
