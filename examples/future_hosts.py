#!/usr/bin/env python3
"""Capacity planning for next-generation hosts (paper §4).

Uses the analytical model to ask the paper's forward-looking question:
what happens when access links grow 4× (400 Gbps) while the rest of the
host stays on today's technology curve — and which §4 mitigations
(ATS device TLB, MBA bandwidth reservation, CXL-class latency, bigger
IOTLBs) buy back the most throughput?  Then validates two of the
what-ifs in simulation.

    python examples/future_hosts.py
"""

import dataclasses

from repro import ThroughputModel, baseline_config, run_experiment
from repro.core.model import iotlb_working_set, predicted_miss_ratio


def model_section() -> None:
    base = baseline_config()
    print("== analytical what-ifs (Little's-law bound, app Gbps) ==\n")
    print(f"{'scenario':>34} {'bound':>8}")
    rows = []

    # Today's host at today's link speed.
    model = ThroughputModel(base)
    rows.append(("100G link, IOMMU off", model.predict(0.0)))
    rows.append(("100G link, IOMMU on (M=1.5)", model.predict(1.5)))

    # 400G link: raise the line rate; host unchanged -> PCIe gen3 caps.
    fast_link = dataclasses.replace(
        base, link=dataclasses.replace(base.link, rate_bps=400e9))
    model_400 = ThroughputModel(fast_link)
    rows.append(("400G link, stagnant host", model_400.predict(1.5)))

    # PCIe gen5-ish (CXL-era): 4x goodput and credits, lower latency.
    host = fast_link.host
    gen5 = dataclasses.replace(
        fast_link,
        host=dataclasses.replace(
            host,
            pcie=dataclasses.replace(
                host.pcie,
                raw_bps=512e9, goodput_bps=440e9,
                max_inflight_bytes=host.pcie.max_inflight_bytes * 4,
                dma_fixed_latency=0.5e-6)))
    model_gen5 = ThroughputModel(gen5)
    rows.append(("400G link, CXL-class interconnect (M=1.5)",
                 model_gen5.predict(1.5)))
    rows.append(("... and translation fixed (M=0)",
                 model_gen5.predict(0.0)))
    for label, bound in rows:
        print(f"{label:>42} {bound / 1e9:>8.1f}")

    ws = iotlb_working_set(base.host)
    print(f"\nIOTLB pressure at 4x the bandwidth-delay product: the "
          f"active working set grows from {ws.total_pages} pages toward "
          f"{4 * ws.total_pages}, predicted steady-state miss ratio "
          f"{predicted_miss_ratio(base.host):.2f} -> "
          f"{1 - 128 / (4 * ws.total_pages):.2f} per access.")


def simulation_section() -> None:
    print("\n== simulated §4 mitigations at the congested baseline ==\n")
    base = baseline_config(warmup=4e-3, duration=8e-3)
    congested = dataclasses.replace(
        base, host=dataclasses.replace(base.host, antagonist_cores=15))
    host = congested.host
    variants = {
        "baseline (congested)": congested,
        "ATS device TLB": dataclasses.replace(
            congested, host=dataclasses.replace(
                host, iommu=dataclasses.replace(
                    host.iommu, device_tlb_entries=512))),
        "MBA 25% NIC reservation": dataclasses.replace(
            congested, host=dataclasses.replace(
                host, memory=dataclasses.replace(
                    host.memory, nic_reserved_fraction=0.25))),
        "host-signal CC (sub-RTT)": dataclasses.replace(
            congested, transport="hostcc"),
    }
    print(f"{'variant':>26} {'tput Gbps':>10} {'drop %':>7}")
    for name, config in variants.items():
        result = run_experiment(config)
        print(f"{name:>26} "
              f"{result.metrics['app_throughput_gbps']:>10.1f} "
              f"{result.metrics['drop_rate'] * 100:>7.2f}")


def sensitivity_section() -> None:
    from repro.analysis.sensitivity import sensitivity_analysis

    print("\n== which knob buys the most? (elasticities at the "
          "16-core, M=2.3 operating point) ==\n")
    base = baseline_config()
    config = dataclasses.replace(
        base, host=dataclasses.replace(
            base.host,
            cpu=dataclasses.replace(base.host.cpu, cores=16)))
    for entry in sensitivity_analysis(config, misses_per_packet=2.3):
        print(f"  {entry}")


def main() -> None:
    model_section()
    sensitivity_section()
    simulation_section()


if __name__ == "__main__":
    main()
