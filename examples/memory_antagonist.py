#!/usr/bin/env python3
"""Memory-bus congestion walk-through (paper §3.2, Figure 6 in
miniature).

The study itself is the bundled ``memory_antagonist`` scenario spec
(``src/repro/scenarios/memory_antagonist.toml``): increasing STREAM
antagonist cores against the baseline receive workload, IOMMU off.
Memory bandwidth grows ~linearly, then saturates near 90 GB/s — and
once it saturates, NIC-to-CPU throughput collapses even though the
access link is far from full.  This script is just the spec's CLI
invocation — edit the spec, not the code, to change the study.

    python examples/memory_antagonist.py
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["scenario", "run", "memory_antagonist", "--no-cache"]))
