#!/usr/bin/env python3
"""Memory-bus congestion walk-through (paper §3.2, Figure 6 in
miniature).

Runs the baseline receive workload against an increasing number of
STREAM antagonist cores and shows the two regimes the paper describes:
memory bandwidth grows ~linearly, then saturates near 90 GB/s — and
once it saturates, per-DMA latency inflates and NIC-to-CPU throughput
collapses even though the access link is far from full.

    python examples/memory_antagonist.py [--antagonists 0 6 10 15]
"""

import argparse
import dataclasses

from repro import baseline_config, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--antagonists", type=int, nargs="+",
                        default=[0, 4, 8, 12, 15])
    parser.add_argument("--iommu", action="store_true",
                        help="also enable the IOMMU (compounding case)")
    args = parser.parse_args()

    base = baseline_config(warmup=4e-3, duration=8e-3)
    if not args.iommu:
        base = dataclasses.replace(
            base, host=dataclasses.replace(
                base.host,
                iommu=dataclasses.replace(base.host.iommu,
                                          enabled=False)))

    print(f"IOMMU {'ON' if args.iommu else 'OFF'}; sweeping STREAM "
          f"antagonist cores {args.antagonists}...\n")
    header = (f"{'stream cores':>12} {'mem GB/s':>9} {'mem util':>9} "
              f"{'tput Gbps':>10} {'drop %':>7} {'dma µs':>7}")
    print(header)
    print("-" * len(header))
    for antagonists in args.antagonists:
        config = dataclasses.replace(
            base, host=dataclasses.replace(
                base.host, antagonist_cores=antagonists))
        result = run_experiment(config)
        m = result.metrics
        print(f"{antagonists:>12} {m['memory_total_GBps']:>9.1f} "
              f"{m['memory_utilization']:>9.2f} "
              f"{m['app_throughput_gbps']:>10.1f} "
              f"{m['drop_rate'] * 100:>7.2f} "
              f"{m['mean_dma_latency_us']:>7.2f}")

    print("\nWhat to look for: throughput is flat while the bus has")
    print("headroom, then collapses as utilization nears 1.0 — the NIC")
    print("is starved at the memory controller while the access link")
    print("still has headroom (the paper's low-utilization drops).")


if __name__ == "__main__":
    main()
