#!/usr/bin/env python3
"""Isolation under host congestion (paper §1).

One small-RPC "victim" per receiver thread shares the host with
elephant remote reads.  On a healthy host the victims' 4 KB RPCs finish
in tens of microseconds; on the paper's congested baseline they inherit
the NIC queue, the drops, and the retransmissions of their neighbours.

    python examples/isolation_study.py
"""

from repro.core.sweep import baseline_config
from repro.workload.isolation import congested_vs_uncongested


def main() -> None:
    print("running victim/elephant isolation study...\n")
    results = congested_vs_uncongested(
        baseline_config(warmup=4e-3, duration=8e-3))

    header = (f"{'case':>14} {'drop %':>7} {'victim p50':>11} "
              f"{'victim p99':>11} {'elephant p99':>13} {'tput':>6}")
    print(header)
    print("-" * len(header))
    for name, r in results.items():
        print(f"{name:>14} {r.drop_rate * 100:>7.2f} "
              f"{r.victim.p50:>11.1f} {r.victim.p99:>11.1f} "
              f"{r.elephant.p99:>13.1f} "
              f"{r.app_throughput_gbps:>6.1f}")

    penalty = results["congested"].victim_penalty_p99(
        results["uncongested"])
    print(f"\nvictim p99 penalty under host congestion: {penalty:.1f}x")
    print("The victims never exceeded a few Mbps — they pay because")
    print("every application shares the NIC buffer where host-")
    print("congestion drops land (paper §3: 'drop rate serves as a")
    print("proxy for violation of isolation properties').")


if __name__ == "__main__":
    main()
