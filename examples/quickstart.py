#!/usr/bin/env python3
"""Quickstart: run the paper's baseline workload and read the gauges.

Builds the full receiver host (NIC → PCIe → IOMMU → memory → CPU), the
40-sender incast fabric, and Swift congestion control; runs a short
measurement window; prints every headline metric of the paper.

    python examples/quickstart.py
"""

from repro import baseline_config, run_experiment


def main() -> None:
    config = baseline_config(warmup=4e-3, duration=8e-3)
    print("Running the paper's baseline: 40 senders, 12 receiver cores,")
    print("IOMMU on, hugepages on, Swift congestion control...\n")
    result = run_experiment(config)

    metrics = result.metrics
    print(f"application throughput : "
          f"{metrics['app_throughput_gbps']:6.1f} Gbps "
          f"(max achievable ≈ 92)")
    print(f"access link utilization: "
          f"{metrics['link_utilization'] * 100:6.1f} %")
    print(f"host drop rate         : "
          f"{metrics['drop_rate'] * 100:6.2f} %")
    print(f"IOTLB misses per packet: "
          f"{metrics['iotlb_misses_per_packet']:6.2f}")
    print(f"mean per-DMA latency   : "
          f"{metrics['mean_dma_latency_us']:6.2f} µs")
    print(f"mean NIC queueing delay: "
          f"{metrics['mean_nic_delay_us']:6.1f} µs "
          f"(Swift's host target: 100 µs)")
    print(f"memory bus utilization : "
          f"{metrics['memory_utilization'] * 100:6.1f} %")
    print(f"remote-read p99 latency: "
          f"{result.message_latency_us['p99']:6.1f} µs")

    print("\nWhat to look for: with 12 receiver cores the IOMMU working")
    print("set exceeds the 128-entry IOTLB, per-DMA latency inflates,")
    print("and the NIC buffer queues ~90 µs — just under Swift's 100 µs")
    print("host target, so drops persist (the paper's §3.1 blind spot).")


if __name__ == "__main__":
    main()
