#!/usr/bin/env python3
"""One host, one "day": the Fig. 1 scatter as a time series.

The paper's Figure 1 data was "collected over a 24-hour period, and
binned at a 10-minute granularity."  This example runs a single
12-core, IOMMU-on receiver through a diurnal load schedule with bursty
memory antagonists and plots each bin as a (utilization, drop-rate)
point — the same cloud, generated longitudinally instead of across a
fleet.

    python examples/one_host_one_day.py [--bins 36]
"""

import argparse

from repro.analysis.text_plots import scatter_plot
from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.workload.day import diurnal_schedule, simulate_day


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bins", type=int, default=36)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    config = ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=12)),
        workload=WorkloadConfig(offered_load=0.5),
        sim=SimConfig(warmup=1e-3, duration=5e-3, seed=args.seed),
    )
    schedule = diurnal_schedule(args.bins, seed=args.seed)
    print(f"simulating {args.bins} bins of one host's day...")
    bins = simulate_day(config, schedule)

    points = [(b.link_utilization, b.drop_rate) for b in bins]
    print(scatter_plot(
        points,
        title="One host, one day: drop rate vs utilization per bin",
        x_label="link utilization", y_label="drop rate"))

    droppers = [b for b in bins if b.drop_rate > 1e-4]
    low_util = [b for b in droppers if b.link_utilization < 0.5]
    print(f"\n{len(droppers)}/{len(bins)} bins with drops; "
          f"{len(low_util)} at <50% utilization "
          f"(all have antagonists: "
          f"{all(b.antagonist_cores >= 8 for b in low_util)})")


if __name__ == "__main__":
    main()
