#!/usr/bin/env python3
"""IOMMU contention walk-through (paper §3.1, Figures 3-5 in miniature).

The study itself is the bundled ``iommu_contention`` scenario spec
(``src/repro/scenarios/iommu_contention.toml``): receiver cores swept
with the IOMMU on and off at quick quality.  This script is just its
CLI invocation — edit the spec, not the code, to change the study.

    python examples/iommu_contention.py
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["scenario", "run", "iommu_contention", "--no-cache"]))
