#!/usr/bin/env python3
"""IOMMU contention walk-through (paper §3.1, Figures 3-5 in miniature).

Sweeps receiver cores with the IOMMU on and off, prints the throughput,
drop-rate, and IOTLB-miss curves, and overlays the Little's-law model
bound: throughput ≤ C · pkt / (T_base + M · T_miss).

    python examples/iommu_contention.py [--cores 2 8 12 16]
"""

import argparse

from repro import ThroughputModel, baseline_config
from repro.core.sweep import sweep_receiver_cores
from repro.core.model import iotlb_working_set


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cores", type=int, nargs="+",
                        default=[2, 6, 8, 10, 12, 16])
    args = parser.parse_args()

    base = baseline_config(warmup=4e-3, duration=8e-3)
    print(f"sweeping receiver cores {args.cores} (IOMMU on/off)...\n")
    table = sweep_receiver_cores(cores=args.cores, base=base)

    header = (f"{'cores':>6} {'IOMMU':>6} {'tput Gbps':>10} "
              f"{'drop %':>7} {'misses/pkt':>11} {'IOMMU entries':>14} "
              f"{'model Gbps':>11}")
    print(header)
    print("-" * len(header))
    for result in table:
        cores = result.params["cores"]
        iommu = result.params["iommu"]
        model = ThroughputModel(base)
        bound = model.predict(
            misses_per_packet=result.metrics["iotlb_misses_per_packet"]
            if iommu else 0.0,
            memory_utilization=result.metrics["memory_utilization"],
        )
        # CPU bound depends on this row's core count.
        bound = min(bound, cores * base.host.cpu.core_rate_bps)
        print(f"{cores:>6} {str(iommu):>6} "
              f"{result.metrics['app_throughput_gbps']:>10.1f} "
              f"{result.metrics['drop_rate'] * 100:>7.2f} "
              f"{result.metrics['iotlb_misses_per_packet']:>11.2f} "
              f"{result.metrics['iommu_entries']:>14.0f} "
              f"{bound / 1e9:>11.1f}")

    host = base.host
    ws = iotlb_working_set(host)
    print(f"\nactive IOMMU working set: {ws.pages_per_thread} pages per "
          f"thread; the {host.iommu.iotlb_entries}-entry IOTLB fills at "
          f"{host.iommu.iotlb_entries // ws.pages_per_thread} threads —")
    print("beyond that, misses climb and the interconnect becomes the "
          "bottleneck (paper Fig. 3).")


if __name__ == "__main__":
    main()
