#!/usr/bin/env python3
"""Benchmark regression gate: compare a pytest-benchmark run to the
committed baseline.

The baseline (``benchmarks/baseline.json``) records the median wall
time per benchmark, measured at the commit that last touched the
kernel hot path.  This script fails (exit 1) when any gated benchmark's
median regresses by more than ``--threshold`` (default 25 %) — a margin
chosen to sit above shared-runner noise while still catching real
algorithmic regressions (an accidental O(n) scan in the dispatch loop
shows up as 2×, not 25 %).

Faster-than-baseline results are reported; pass ``--update`` to rewrite
the baseline after a deliberate improvement (commit the diff).

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_micro.py \\
        benchmarks/bench_fig3_iommu.py -q --benchmark-only \\
        --benchmark-json=bench.json
    python scripts/check_bench_regression.py bench.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.json"

#: Only hot-path benchmarks are gated: figure-shape benches (fig1,
#: fig4..) assert their own criteria and are minutes-long, so they stay
#: out of the gate's runtime budget.  The telemetry benches guard the
#: "free when off, cheap when on" contract of the sampler and ledger;
#: the fluid bench guards the >=25x fluid-vs-packet speedup contract;
#: the fleet-memory bench guards the streaming pipeline's
#: RSS-independent-of-host-count contract; the fleet-throughput bench
#: guards the >=10x batched-vs-scalar fluid fleet contract.
GATED_PREFIXES = ("bench_engine_micro", "bench_fig3_iommu",
                  "bench_fleet_memory", "bench_fleet_throughput",
                  "bench_fluid_speedup", "bench_telemetry_overhead")


def load_medians(path: Path) -> Dict[str, float]:
    """``fullname -> median seconds`` for every benchmark in a
    pytest-benchmark JSON document."""
    doc = json.loads(path.read_text())
    medians = {}
    for bench in doc.get("benchmarks", []):
        # fullname is "benchmarks/bench_engine_micro.py::test_x";
        # normalize to "bench_engine_micro::test_x" so the key survives
        # running pytest from a different working directory.
        module = Path(bench["fullname"].split("::")[0]).stem
        medians[f"{module}::{bench['name']}"] = bench["stats"]["median"]
    return medians


def gated(medians: Dict[str, float]) -> Dict[str, float]:
    return {name: median for name, median in medians.items()
            if name.startswith(GATED_PREFIXES)}


def compare(baseline: Dict[str, float], current: Dict[str, float],
            threshold: float) -> List[str]:
    """Violation messages; empty when every gated median holds."""
    problems = []
    for name, base in sorted(baseline.items()):
        med = current.get(name)
        if med is None:
            problems.append(f"{name}: missing from this run "
                            f"(was {base * 1e6:.0f} us)")
            continue
        ratio = med / base
        if ratio > 1.0 + threshold:
            problems.append(
                f"{name}: {base * 1e6:.0f} us -> {med * 1e6:.0f} us "
                f"({ratio:.2f}x, limit {1.0 + threshold:.2f}x)")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path,
                        help="pytest-benchmark JSON from this run")
    parser.add_argument("--baseline", type=Path, default=BASELINE,
                        help=f"baseline medians (default {BASELINE})")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed median regression (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    args = parser.parse_args(argv)

    current = gated(load_medians(args.results))
    if not current:
        print("bench-gate: no gated benchmarks in results "
              f"(need {GATED_PREFIXES})")
        return 1

    if args.update:
        args.baseline.write_text(json.dumps(
            {"medians_s": current}, indent=1, sort_keys=True) + "\n")
        print(f"bench-gate: baseline rewritten with "
              f"{len(current)} medians -> {args.baseline}")
        return 0

    baseline = json.loads(args.baseline.read_text())["medians_s"]
    problems = compare(baseline, current, args.threshold)
    for name, med in sorted(current.items()):
        base = baseline.get(name)
        note = f" (baseline {base * 1e6:.0f} us)" if base else " (ungated: new)"
        print(f"  {name}: {med * 1e6:.0f} us{note}")
    if problems:
        print(f"bench-gate: {len(problems)} regression(s) beyond "
              f"{args.threshold:.0%}:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"bench-gate: OK ({len(baseline)} benchmarks within "
          f"{args.threshold:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
