#!/usr/bin/env python3
"""Layered-architecture lint: fail when a lower layer imports a higher one.

The dependency rule (DESIGN.md, "Architecture: components and topology"):

    sim -> net/obs -> host -> transport -> workload -> core -> analysis -> cli

Each package may import its own layer and anything below it.  Three
``repro.core`` modules are *kernel* modules — pure-data config,
calibration constants, and the statistics helpers — pinned to layer 0
so every layer can import them without dragging in the experiment
machinery.  The engine fidelities (``repro.sim.engine``,
``repro.sim.fluid``, and the vectorized ``repro.sim.fluid_batch``)
all live in ``sim`` and therefore sit at layer 0 themselves: their
only legal ``repro`` imports are kernel modules and ``sim``
neighbours (tests/test_layering.py pins each one by AST walk).

Only module-level imports count: a function-scope import is a
deliberate lazy edge (e.g. ``repro.workload.fleet`` pulling in the
parallel runner at call time) and is exempt.

Usage: ``python scripts/check_layering.py [--root src]`` where the root
directory contains the ``repro`` package.  Exits 0 when clean, 1 with
one line per violation.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

#: Layer number per first-level package under ``repro``.
LAYERS: Dict[str, int] = {
    "sim": 0,
    "net": 1,
    "obs": 1,
    "host": 2,
    "transport": 3,
    "workload": 4,
    "core": 5,
    "analysis": 6,
    "cli": 7,
}

#: Top-level repro modules (the package facade and entry point) sit on
#: the highest layer: anything may NOT import them, they import all.
TOP_MODULES = {"__init__", "__main__"}
TOP_LAYER = 7

#: Modules pinned to layer 0: pure data/constants/statistics with no
#: dependency on (or from) the experiment machinery.  ``net.routing``
#: lives here so both the packet fabric (layer 1) and the fluid solver
#: (layer 0's sim package) can share one deterministic path-hash.
KERNEL_MODULES = {
    "repro.core.config",
    "repro.core.calibration",
    "repro.core.metrics",
    "repro.net.routing",
}

#: Pure-data packages: bundled scenario specs and the like.  Their
#: ``.py`` files (package docstrings only) may not import anything at
#: all — a spec package that grows code stops being declarative data.
DATA_PACKAGES = {"scenarios"}

#: Packages the lint must observe for a clean run to count (guards
#: against the contract silently rotting when packages move).
REQUIRED_PACKAGES = frozenset(LAYERS) | DATA_PACKAGES


def module_name(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to ``root``."""
    rel = path.relative_to(root).with_suffix("")
    return ".".join(rel.parts)


def layer_of(module: str) -> Optional[int]:
    """Layer of a dotted ``repro...`` module; None for foreign modules."""
    if module in KERNEL_MODULES or any(
            module.startswith(kernel + ".") for kernel in KERNEL_MODULES):
        return 0
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return TOP_LAYER
    if parts[1] in TOP_MODULES:
        return TOP_LAYER
    return LAYERS.get(parts[1])


def module_level_imports(tree: ast.Module) -> Iterator[Tuple[int, str]]:
    """(lineno, dotted-target) for every module-level import.

    Walks into classes and ``if``/``try`` blocks (still import time)
    but not into function bodies (lazy imports are exempt).
    """
    stack: List[ast.AST] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module:
                # Qualify per alias so `from repro.core import
                # calibration` resolves to the kernel module, not to
                # the repro.core package.
                for alias in node.names:
                    yield node.lineno, f"{node.module}.{alias.name}"
        else:
            for child in ast.iter_child_nodes(node):
                stack.append(child)


def check(root: Path) -> List[str]:
    """All layering violations under ``root``, formatted one per line."""
    violations: List[str] = []
    seen_packages = set()
    package_root = root / "repro"
    if not package_root.is_dir():
        return [f"no 'repro' package under {root}"]
    for path in sorted(package_root.rglob("*.py")):
        module = module_name(path, root)
        parts = module.split(".")
        if len(parts) > 1 and parts[1] in DATA_PACKAGES:
            seen_packages.add(parts[1])
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    violations.append(
                        f"{path}:{node.lineno}: {module} is in the "
                        f"data package repro.{parts[1]} and may not "
                        f"import anything (specs are data, not code)")
            continue
        importer_layer = layer_of(module)
        if importer_layer is None:
            continue
        if len(parts) > 1 and parts[1] in LAYERS:
            seen_packages.add(parts[1])
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, target in module_level_imports(tree):
            target_layer = layer_of(target)
            if target_layer is None:
                continue
            if target_layer > importer_layer:
                violations.append(
                    f"{path}:{lineno}: {module} (layer {importer_layer}) "
                    f"imports {target} (layer {target_layer})")
    missing = REQUIRED_PACKAGES - seen_packages
    if missing:
        violations.append(
            f"{root}: expected packages not found: {sorted(missing)} "
            f"(contract must cover all of {sorted(REQUIRED_PACKAGES)})")
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default="src",
        help="directory containing the 'repro' package (default src)")
    args = parser.parse_args(argv)
    violations = check(Path(args.root))
    if violations:
        print(f"layering: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  {violation}")
        return 1
    covered = ", ".join(sorted(set(LAYERS) | DATA_PACKAGES))
    print(f"layering: OK ({covered} clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
