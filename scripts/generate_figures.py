#!/usr/bin/env python3
"""Regenerate every paper figure and save series + shape findings.

    python scripts/generate_figures.py [--quality full] [--out results/]

Writes, per figure: the ASCII rendering (``.txt``), the panel CSVs, and
a JSON file with the series and shape-check outcomes.  EXPERIMENTS.md
is written from these artifacts.
"""

import argparse
import json
import time
from pathlib import Path

from repro.analysis.compare import check_figure
from repro.analysis.figures import figure1, figure3, figure4, figure5, figure6


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quality", default="full",
                        choices=("quick", "full"))
    parser.add_argument("--out", default="results")
    parser.add_argument("--fleet-hosts", type=int, default=120)
    args = parser.parse_args()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    jobs = [
        ("figure1", lambda: figure1(n_hosts=args.fleet_hosts,
                                    quality=args.quality)),
        ("figure3", lambda: figure3(quality=args.quality)),
        ("figure4", lambda: figure4(quality=args.quality)),
        ("figure5", lambda: figure5(quality=args.quality)),
        ("figure6", lambda: figure6(quality=args.quality)),
    ]
    for name, job in jobs:
        start = time.time()
        print(f"[{name}] running ({args.quality})...", flush=True)
        fig = job()
        findings = check_figure(fig)
        elapsed = time.time() - start
        (out / f"{name}.txt").write_text(
            fig.render() + "\n\n" + "\n".join(map(str, findings)) + "\n")
        fig.to_csv_dir(out)
        payload = {
            "name": fig.name,
            "title": fig.title,
            "elapsed_s": round(elapsed, 1),
            "notes": fig.notes,
            "panels": {
                panel: {
                    "x_label": x_label,
                    "y_label": y_label,
                    "series": [
                        {"label": s.label, "x": list(s.x),
                         "y": [round(v, 4) for v in s.y]}
                        for s in series
                    ],
                }
                for panel, (x_label, y_label, series) in fig.panels.items()
            },
            "findings": [
                {"criterion": f.criterion, "passed": f.passed,
                 "detail": f.detail}
                for f in findings
            ],
        }
        (out / f"{name}.json").write_text(json.dumps(payload, indent=1))
        status = ("all criteria PASS"
                  if all(f.passed for f in findings)
                  else "SOME CRITERIA FAILED")
        print(f"[{name}] done in {elapsed:.0f}s — {status}", flush=True)

    from repro.analysis.report import write_report

    report_path = write_report(out)
    print(f"wrote {report_path}")


if __name__ == "__main__":
    main()
