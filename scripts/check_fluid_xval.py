#!/usr/bin/env python3
"""Fluid-vs-packet agreement matrix over every bundled scenario spec.

Runs each bundled scenario at both fidelities (quick quality where the
spec defines presets) and checks the contracts declared in
:mod:`repro.analysis.xval`: per-point throughput within tolerance,
drop-onset knees within one grid position, isolation winners, and
fleet/day shape agreement.  Writes the full agreement report as JSON
(the CI artifact) and exits 1 with a table naming every disagreeing
spec and axis point.

Usage::

    python scripts/check_fluid_xval.py --workers auto \\
        --report fluid_xval_report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import xval  # noqa: E402
from repro.core.scenario import ScenarioSpec, bundled_scenarios  # noqa: E402


def _x_key(spec: ScenarioSpec) -> str:
    render = spec.render
    if render is not None:
        if render.x:
            return render.x
        if render.panels:
            return render.panels[0].x
    return "cores"


def _quality(spec: ScenarioSpec, requested: Optional[str]):
    """The requested preset where the spec defines it; otherwise the
    spec's own defaults (walk-through specs bake quick settings into
    [base] instead of presets)."""
    if requested is not None and requested in spec.quality:
        return requested
    return None


def cross_validate(spec: ScenarioSpec, quality: Optional[str],
                   workers) -> xval.AgreementReport:
    quality = _quality(spec, quality)
    if spec.driver == "fleet":
        # Fleet specs cross-validate through the streaming aggregate
        # pipeline — the path `repro fleet` actually runs at scale.
        # The fluid leg uses the default backend ("auto" = the
        # cohort-batched solver), so the packet-vs-fluid contract is
        # checked against the backend production runs use; a second
        # scalar fluid leg then pins the batched backend to exact
        # aggregate equality (xval.compare_fleet_backends).
        packet = spec.run_fleet_aggregate(quality=quality,
                                          fidelity="packet",
                                          workers=workers)
        fluid = spec.run_fleet_aggregate(quality=quality,
                                         fidelity="fluid")
        report = xval.compare_fleet_aggregate(spec.name, packet, fluid)
        scalar_fluid = spec.run_fleet_aggregate(
            quality=quality, fidelity="fluid", backend="scalar")
        backends = xval.compare_fleet_backends(spec.name, scalar_fluid,
                                               fluid)
        report.checks += backends.checks
        report.disagreements.extend(backends.disagreements)
        return report
    packet = spec.run(quality=quality, fidelity="packet",
                      workers=workers)
    fluid = spec.run(quality=quality, fidelity="fluid")
    if spec.driver == "sweep":
        report = xval.compare_sweep(spec.name, packet, fluid,
                                    _x_key(spec))
        claim = xval.ROUTING_CLAIMS.get(spec.name)
        if claim is not None:
            routing = xval.compare_routing_sweep(
                spec.name, packet, fluid, _x_key(spec), claim)
            report.checks += routing.checks
            report.disagreements.extend(routing.disagreements)
        return report
    if spec.driver == "day":
        return xval.compare_day(spec.name, packet, fluid)
    return xval.compare_isolation(spec.name, packet, fluid)


def _workers_arg(value: str):
    return value if value == "auto" else int(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quality", default="quick",
                        help="quality preset where specs define one "
                             "(default quick)")
    parser.add_argument("--workers", type=_workers_arg, default=None,
                        help="worker processes for the packet runs")
    parser.add_argument("--report", default="fluid_xval_report.json",
                        help="agreement-report JSON path (CI artifact)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="restrict to these scenario names")
    args = parser.parse_args(argv)

    specs = bundled_scenarios()
    if args.only:
        missing = sorted(set(args.only) - set(specs))
        if missing:
            print(f"unknown scenario(s): {', '.join(missing)}")
            return 2
        specs = {name: specs[name] for name in args.only}

    reports: List[xval.AgreementReport] = []
    for name in sorted(specs):
        spec = specs[name]
        start = time.perf_counter()
        report = cross_validate(spec, args.quality, args.workers)
        elapsed = time.perf_counter() - start
        reports.append(report)
        status = "OK  " if report.ok else "FAIL"
        print(f"{status} {name:<20} {report.checks:>3} check(s)  "
              f"{elapsed:6.1f}s")

    payload = {
        "quality": args.quality,
        "tolerances": {
            "throughput_rtol": xval.THROUGHPUT_RTOL,
            "drop_onset_threshold": xval.DROP_ONSET_THRESHOLD,
            "onset_position_tolerance": xval.ONSET_POSITION_TOLERANCE,
            "day_cumulative_rtol": xval.DAY_CUMULATIVE_RTOL,
        },
        "scenarios": [report.to_dict() for report in reports],
    }
    Path(args.report).write_text(json.dumps(payload, indent=1))
    print(f"\nwrote agreement report to {args.report}")

    failures = [d for report in reports
                for d in report.disagreements]
    if failures:
        print(f"\n{len(failures)} disagreement(s):\n")
        print(f"{'scenario':<20} {'check':<18} {'point':<28} detail")
        print("-" * 100)
        for disagreement in failures:
            print(disagreement.format_row())
        return 1
    total = sum(report.checks for report in reports)
    print(f"all {len(reports)} scenario(s) agree across fidelities "
          f"({total} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
