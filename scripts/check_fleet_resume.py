#!/usr/bin/env python3
"""Kill-and-resume check for the streaming fleet pipeline (CI gate).

Three invocations of ``repro fleet`` over the same population:

1. a *clean* run (no interruption) — the reference aggregate;
2. a *victim* run with ``--checkpoint``, SIGKILLed from outside as
   soon as the checkpoint shows the first shard complete — a real
   mid-run kill, not a cooperative exit;
3. a ``--resume`` run against the victim's checkpoint.

The check passes iff the resumed run's merged
:class:`~repro.workload.fleet_agg.FleetAggregate` equals the clean
run's (the aggregate's own merge-order-tolerant equality — raw JSON
may differ in float summation order).  A timeout waiting for shard 1
falls back to killing at whatever cursor the victim reached; resume
must still reproduce the clean aggregate.

Usage::

    python scripts/check_fleet_resume.py --hosts 400 --shards 2 \\
        --fidelity fluid
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.workload.fleet_agg import FleetAggregate  # noqa: E402


def fleet_cmd(args: argparse.Namespace, extra: list) -> list:
    return [sys.executable, "-m", "repro", "fleet",
            "--hosts", str(args.hosts), "--shards", str(args.shards),
            "--seed", str(args.seed), "--fidelity", args.fidelity,
            "--backend", args.backend,
            "--batch-size", str(args.batch_size),
            *extra]


def run(cmd: list, **popen_args) -> subprocess.CompletedProcess:
    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    return subprocess.run(cmd, env=env, cwd=str(REPO), **popen_args)


def wait_for_shard_done(checkpoint: Path, victim: subprocess.Popen,
                        timeout_s: float) -> bool:
    """Poll the checkpoint until any shard reports done (or timeout)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if victim.poll() is not None:
            return False  # victim finished before we could kill it
        try:
            state = json.loads(checkpoint.read_text())
            if any(record["done"]
                   for record in state["shards"].values()):
                return True
        except (FileNotFoundError, json.JSONDecodeError):
            pass  # not written yet / mid-replace on a non-atomic FS
        time.sleep(0.05)
    return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--hosts", type=int, default=400)
    parser.add_argument("--shards", default="2")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--fidelity", default="fluid")
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "batched", "scalar"),
                        help="fleet execution backend under test "
                             "(auto = batched for fluid)")
    parser.add_argument("--batch-size", type=int, default=4096,
                        help="hosts per batched chunk — small values "
                             "give the victim run intra-shard "
                             "checkpoint granularity")
    parser.add_argument("--kill-timeout", type=float, default=120.0,
                        help="seconds to wait for shard 1 before "
                             "killing anyway")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="fleet-resume-") as tmp:
        tmp_path = Path(tmp)
        clean_json = tmp_path / "clean.json"
        resumed_json = tmp_path / "resumed.json"
        checkpoint = tmp_path / "fleet.ckpt.json"

        print(f"[1/3] clean run: {args.hosts} hosts, "
              f"{args.shards} shards, {args.fidelity}")
        result = run(fleet_cmd(args, ["--json-out", str(clean_json)]),
                     capture_output=True, text=True)
        if result.returncode != 0:
            print(result.stdout)
            print(result.stderr)
            print("FAIL: clean run exited nonzero")
            return 1

        print("[2/3] victim run with --checkpoint, SIGKILL after "
              "first shard completes")
        victim = subprocess.Popen(
            fleet_cmd(args, ["--checkpoint", str(checkpoint),
                             "--checkpoint-every", "50"]),
            env={**os.environ, "PYTHONPATH": str(REPO / "src")},
            cwd=str(REPO), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        saw_shard = wait_for_shard_done(checkpoint, victim,
                                        args.kill_timeout)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            print(f"      killed pid {victim.pid} "
                  f"(shard-1-done observed: {saw_shard})")
        else:
            print("      victim finished before the kill — resume "
                  "must then be a no-op")

        print("[3/3] --resume from the checkpoint")
        result = run(fleet_cmd(args, ["--checkpoint", str(checkpoint),
                                      "--resume",
                                      "--json-out",
                                      str(resumed_json)]),
                     capture_output=True, text=True)
        if result.returncode != 0:
            print(result.stdout)
            print(result.stderr)
            print("FAIL: resumed run exited nonzero")
            return 1

        clean = FleetAggregate.from_dict(
            json.loads(clean_json.read_text()))
        resumed = FleetAggregate.from_dict(
            json.loads(resumed_json.read_text()))
        if clean != resumed:
            print(f"FAIL: resumed aggregate != clean aggregate\n"
                  f"  clean:   {clean!r}\n  resumed: {resumed!r}")
            return 1
        print(f"OK: resumed aggregate == clean aggregate "
              f"({clean.hosts} hosts, {clean.droppers} droppers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
