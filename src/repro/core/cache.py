"""On-disk experiment result cache.

Every experiment is a pure function of its :class:`ExperimentConfig`
(the simulation derives all randomness from ``config.sim.seed``), so
results can be memoized on disk: re-running ``figures`` / ``sweep`` /
``report`` after an analysis-only change is near-instant.

Keys are the SHA-256 of the canonicalized config dataclass (a
``sort_keys`` JSON dump of ``dataclasses.asdict``) salted with a code
version, so any config change — however deep in the nesting — misses,
and a simulator-semantics change invalidates the whole cache by
bumping :data:`CODE_VERSION`.

Entries are single JSON files under ``<cache_dir>/<aa>/<digest>.json``
(two-level fan-out keeps directories small), written atomically via a
rename so concurrent sweep workers never observe torn entries.  The
cache directory resolves from, in order: an explicit ``--cache-dir`` /
constructor argument, ``$REPRO_CACHE_DIR``, ``$XDG_CACHE_HOME/repro``,
``~/.cache/repro``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.core.config import ExperimentConfig
from repro.core.results import ExperimentResult

__all__ = [
    "CODE_VERSION",
    "CacheStats",
    "CachedRun",
    "ResultCache",
    "config_digest",
    "default_cache_dir",
]

#: Code-version salt folded into every cache key.  Bump whenever a
#: change alters what a given config simulates (engine semantics,
#: calibration constants, metric definitions) — analysis-only changes
#: must NOT bump it, so figure re-renders stay cached.
CODE_VERSION = "repro-1.0.0/cache-v1"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` > ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = Path(xdg) if xdg else Path.home() / ".cache"
    return root / "repro"


def config_digest(config: ExperimentConfig,
                  salt: str = CODE_VERSION) -> str:
    """Stable SHA-256 key for a config (canonical JSON + code salt)."""
    payload = {
        "salt": salt,
        "transport": config.transport,
        "config": dataclasses.asdict(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CachedRun:
    """One cache hit: the result plus (optionally) its metrics snapshot."""

    result: ExperimentResult
    snapshot: Optional[dict]


@dataclass(frozen=True)
class CacheStats:
    """Aggregate cache state for ``repro cache stats``."""

    path: str
    entries: int
    total_bytes: int
    hits: int
    misses: int


class ResultCache:
    """Config-keyed store of experiment results + metrics snapshots."""

    def __init__(self, directory: str | Path | None = None,
                 salt: str = CODE_VERSION):
        self.directory = (Path(directory) if directory is not None
                          else default_cache_dir())
        self.salt = salt
        #: Hit/miss counters for this process (reported by the CLI).
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> Path:
        return self.directory / digest[:2] / f"{digest}.json"

    def get(self, config: ExperimentConfig,
            want_snapshot: bool = False) -> Optional[CachedRun]:
        """The cached run for ``config``, or ``None`` on a miss.

        A stored entry without a metrics snapshot does not satisfy a
        ``want_snapshot`` lookup — the caller re-runs, and ``put``
        upgrades the entry in place.
        """
        path = self._path(config_digest(config, self.salt))
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if want_snapshot and payload.get("snapshot") is None:
            self.misses += 1
            return None
        self.hits += 1
        result = ExperimentResult(
            params=payload["params"],
            metrics=payload["metrics"],
            message_latency_us=payload.get("message_latency_us", {}),
        )
        return CachedRun(result=result, snapshot=payload.get("snapshot"))

    def put(self, config: ExperimentConfig, result: ExperimentResult,
            snapshot: Optional[dict] = None) -> Path:
        """Store (or upgrade) the entry for ``config``; returns its path."""
        digest = config_digest(config, self.salt)
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "digest": digest,
            "params": result.params,
            "metrics": result.metrics,
            "message_latency_us": result.message_latency_us,
            "snapshot": snapshot,
        }
        # Atomic publish: a unique temp name per process, then rename,
        # so parallel workers caching the same config cannot tear it.
        tmp = path.with_name(f".{digest}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)
        return path

    def _entry_paths(self):
        if not self.directory.is_dir():
            return
        for shard in sorted(self.directory.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.json"))

    def stats(self) -> CacheStats:
        entries = 0
        total_bytes = 0
        for path in self._entry_paths():
            entries += 1
            total_bytes += path.stat().st_size
        return CacheStats(path=str(self.directory), entries=entries,
                          total_bytes=total_bytes, hits=self.hits,
                          misses=self.misses)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_paths():
            path.unlink(missing_ok=True)
            removed += 1
        return removed
