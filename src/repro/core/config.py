"""Configuration dataclasses for every subsystem.

All components are constructed from these configs; nothing reads global
state.  Each config validates itself in ``__post_init__`` so a bad
experiment fails at construction, not 30 simulated milliseconds in.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.core import calibration as cal

__all__ = [
    "FIDELITIES",
    "TOPOLOGIES",
    "CpuConfig",
    "DdioConfig",
    "ExperimentConfig",
    "FabricConfig",
    "HostConfig",
    "IommuConfig",
    "LinkConfig",
    "MemoryConfig",
    "NicConfig",
    "PcieConfig",
    "SimConfig",
    "SwiftConfig",
    "WorkloadConfig",
]


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(message)


#: Simulation fidelities an experiment may select: the packet-level
#: discrete-event kernel, or the RTT-stepped fluid solver
#: (:mod:`repro.sim.fluid`) cross-validated against it.
FIDELITIES = ("packet", "fluid")


@dataclass(frozen=True)
class PcieConfig:
    """PCIe link between NIC and root complex."""

    #: Theoretical link capacity (bits/s); gen3 x16 ≈ 128 Gbps.
    raw_bps: float = cal.PCIE_RAW_BPS
    #: Achievable goodput after TLP/link-layer overhead (bits/s).
    goodput_bps: float = cal.PCIE_GOODPUT_BPS
    #: Credit-limited maximum in-flight DMA bytes.
    max_inflight_bytes: int = cal.PCIE_MAX_INFLIGHT_BYTES
    #: Fixed per-DMA latency (issue, root complex, completion).
    dma_fixed_latency: float = cal.DMA_FIXED_LATENCY

    def __post_init__(self) -> None:
        _require(self.goodput_bps <= self.raw_bps,
                 "PCIe goodput cannot exceed raw capacity")
        _require(self.goodput_bps > 0, "PCIe goodput must be positive")
        _require(self.max_inflight_bytes >= cal.MTU_PAYLOAD_BYTES,
                 "in-flight credit window smaller than one MTU")
        _require(self.dma_fixed_latency >= 0, "negative DMA latency")


@dataclass(frozen=True)
class IommuConfig:
    """IOMMU / IOTLB behaviour."""

    enabled: bool = True
    iotlb_entries: int = cal.IOTLB_ENTRIES
    #: Set-associativity; None means fully associative.
    iotlb_ways: int | None = cal.IOTLB_WAYS
    iotlb_hit_latency: float = cal.IOTLB_HIT_LATENCY
    #: Page-walk cache entries per upper level (L4, L3, L2).  Large
    #: enough that a leaf access dominates typical walks, per the paper:
    #: a miss costs "one or more" memory accesses.
    walk_cache_entries: int = 32
    #: ATS-style device TLB on the NIC (paper §4 extension); 0 disables.
    device_tlb_entries: int = 0

    def __post_init__(self) -> None:
        _require(self.iotlb_entries > 0, "IOTLB must have entries")
        _require(
            self.iotlb_ways is None
            or (self.iotlb_ways > 0
                and self.iotlb_entries % self.iotlb_ways == 0),
            "iotlb_ways must divide iotlb_entries")
        _require(self.iotlb_hit_latency >= 0, "negative IOTLB hit latency")
        _require(self.walk_cache_entries >= 0, "negative walk cache size")
        _require(self.device_tlb_entries >= 0, "negative device TLB size")


@dataclass(frozen=True)
class MemoryConfig:
    """Memory controller and bus."""

    theoretical_Bps: float = cal.MEMORY_BW_THEORETICAL_BPS
    achievable_Bps: float = cal.MEMORY_BW_ACHIEVABLE_BPS
    idle_latency: float = cal.MEMORY_IDLE_LATENCY
    walk_base_latency: float = cal.WALK_BASE_LATENCY
    max_queue_delay: float = cal.MEMORY_MAX_QUEUE_DELAY
    #: Fraction of DMA-write queueing inflation seen by page-walk reads.
    walk_contention_fraction: float = cal.WALK_CONTENTION_FRACTION
    #: Allocation weights under saturation: the paper observes that CPU
    #: traffic wins over NIC DMA on a contended bus (§3.2).
    cpu_weight: float = 4.0
    nic_weight: float = 1.0
    #: How often the fluid allocation is recomputed.
    tick_interval: float = 20e-6
    #: EWMA time-constant for demand estimates.
    demand_tau: float = 200e-6
    #: MBA/MPAM-style QoS: minimum bandwidth share reserved for NIC DMA
    #: (fraction of achievable bandwidth; paper §4 extension).
    nic_reserved_fraction: float = 0.0

    def __post_init__(self) -> None:
        _require(0 < self.achievable_Bps <= self.theoretical_Bps,
                 "achievable memory bandwidth must be in (0, theoretical]")
        _require(self.idle_latency > 0, "idle latency must be positive")
        _require(self.walk_base_latency > 0,
                 "walk base latency must be positive")
        _require(self.max_queue_delay >= 0, "negative max queue delay")
        _require(0 <= self.walk_contention_fraction <= 1,
                 "walk_contention_fraction must be in [0,1]")
        _require(self.cpu_weight > 0 and self.nic_weight > 0,
                 "allocation weights must be positive")
        _require(self.tick_interval > 0, "tick interval must be positive")
        _require(0 <= self.nic_reserved_fraction < 1,
                 "nic_reserved_fraction must be in [0,1)")


@dataclass(frozen=True)
class DdioConfig:
    """Direct cache access (DDIO) model.

    DDIO steers DMA writes into the LLC; evictions still cross the
    memory bus (paper §2 footnote 2), so NIC *write* demand is counted
    in full either way.  What DDIO changes is the CPU copy traffic: with
    DDIO on, copies read mostly from LLC.
    """

    enabled: bool = True
    copy_read_fraction: float = cal.COPY_READ_FRACTION
    copy_write_fraction: float = cal.COPY_WRITE_FRACTION
    #: Copy read fraction when DDIO is disabled (payload reads miss LLC).
    copy_read_fraction_no_ddio: float = 1.0
    #: Track DDIO-slice residency per packet instead of using the
    #: static fractions — enables the emergent "leaky DMA" effect
    #: (see :mod:`repro.host.llc`).
    dynamic_llc: bool = False
    #: DDIO slice size: 2 of 11 LLC ways on the paper's Skylake parts.
    ddio_slice_bytes: int = 7 * 2**20

    def __post_init__(self) -> None:
        for name in ("copy_read_fraction", "copy_write_fraction",
                     "copy_read_fraction_no_ddio"):
            _require(0 <= getattr(self, name) <= 1.5,
                     f"{name} out of range")
        _require(self.ddio_slice_bytes > 0,
                 "ddio_slice_bytes must be positive")

    def copy_demand_fractions(self) -> tuple[float, float]:
        """(read, write) memory demand per payload byte copied."""
        if self.enabled:
            return self.copy_read_fraction, self.copy_write_fraction
        return self.copy_read_fraction_no_ddio, self.copy_write_fraction


@dataclass(frozen=True)
class NicConfig:
    """NIC input buffer and receive rings."""

    buffer_bytes: int = cal.NIC_BUFFER_BYTES
    ring_descriptors: int = cal.RX_RING_DESCRIPTORS
    replenish_batch: int = 32
    #: 4 KB control pages the NIC touches per queue.
    desc_ring_pages: int = cal.DESC_RING_PAGES
    completion_ring_pages: int = cal.COMPLETION_RING_PAGES
    tx_desc_ring_pages: int = cal.TX_DESC_RING_PAGES
    tx_completion_ring_pages: int = cal.TX_COMPLETION_RING_PAGES
    ack_staging_pages: int = cal.ACK_STAGING_PAGES
    conn_state_pages: int = cal.CONN_STATE_PAGES
    #: ACK coalescing: one ACK per this many data packets.
    ack_coalescing: int = 1

    def __post_init__(self) -> None:
        _require(self.buffer_bytes >= cal.MTU_PAYLOAD_BYTES,
                 "NIC buffer smaller than one packet")
        _require(self.ring_descriptors > 0, "ring must have descriptors")
        _require(0 < self.replenish_batch <= self.ring_descriptors,
                 "replenish batch out of range")
        _require(self.ack_coalescing >= 1, "ack_coalescing must be >= 1")


@dataclass(frozen=True)
class CpuConfig:
    """Receiver-side processing threads."""

    cores: int = 12
    core_rate_bps: float = cal.CORE_PROCESSING_GBPS * 1e9
    #: Fractional slowdown of packet processing at full memory-bus
    #: utilization (copies stall on a saturated bus).
    contention_slowdown: float = 0.15
    #: How often idle threads return batched Rx descriptors to the NIC.
    descriptor_flush_interval: float = 100e-6

    def __post_init__(self) -> None:
        _require(self.cores >= 1, "need at least one receiver core")
        _require(self.core_rate_bps > 0, "core rate must be positive")
        _require(0 <= self.contention_slowdown < 1,
                 "contention_slowdown must be in [0,1)")
        _require(self.descriptor_flush_interval > 0,
                 "descriptor_flush_interval must be positive")


@dataclass(frozen=True)
class HostConfig:
    """The receiver host: all interconnect components plus layout."""

    nic: NicConfig = field(default_factory=NicConfig)
    pcie: PcieConfig = field(default_factory=PcieConfig)
    iommu: IommuConfig = field(default_factory=IommuConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    ddio: DdioConfig = field(default_factory=DdioConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    #: Rx data region registered with the IOMMU, per receiver thread.
    rx_region_bytes: int = cal.RX_REGION_BYTES
    #: 2 MB mappings for data when True, 4 KB otherwise (paper Fig. 4).
    hugepages: bool = True
    #: STREAM antagonist cores on the NIC-local NUMA node (Fig. 6).
    antagonist_cores: int = 0
    antagonist_per_core_Bps: float = cal.STREAM_PER_CORE_BPS
    #: Antagonist cores scheduled on the *remote* NUMA node — the
    #: paper's §4 congestion-response idea ("scheduling applications on
    #: NUMA nodes different from the one where the NIC is connected").
    #: They consume the remote node's bus, not the NIC's.
    remote_antagonist_cores: int = 0

    def __post_init__(self) -> None:
        _require(self.rx_region_bytes >= 2**20,
                 "rx region must be at least 1 MB")
        _require(self.antagonist_cores >= 0, "negative antagonist cores")
        _require(self.antagonist_per_core_Bps >= 0,
                 "negative antagonist demand")
        _require(self.remote_antagonist_cores >= 0,
                 "negative remote antagonist cores")

    def with_(self, **changes: Any) -> "HostConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class LinkConfig:
    """Access link and fabric path."""

    rate_bps: float = cal.LINE_RATE_BPS
    #: One-way propagation+switching delay; chosen so the base RTT is
    #: the paper's ~20 µs.
    one_way_delay: float = cal.BASE_RTT_SECONDS / 2
    #: Fabric switch egress buffer — large, so the fabric is not the
    #: bottleneck (the paper's congestion is at the host).
    switch_buffer_bytes: int = 32 * 2**20
    #: ECN marking threshold at the switch egress (DCTCP's signal);
    #: ~65 full-size packets, the DCTCP paper's K for 10+ Gbps.
    ecn_threshold_bytes: int = 300_000

    def __post_init__(self) -> None:
        _require(self.rate_bps > 0, "link rate must be positive")
        _require(self.one_way_delay >= 0, "negative propagation delay")
        _require(self.switch_buffer_bytes > 0, "switch buffer must be > 0")
        _require(self.ecn_threshold_bytes > 0,
                 "ecn threshold must be positive")


#: Fabric topologies the graph builder knows how to construct: the
#: historical one-hop star, a k-ary fat-tree (edge/agg/core tiers),
#: and a two-switch dumbbell with parallel trunk links.
TOPOLOGIES = ("star", "fattree", "dumbbell")


@dataclass(frozen=True)
class FabricConfig:
    """Multi-tier fabric shape and routing policy.

    The default (``star`` + ``static``) is the historical one-hop
    fabric; multi-tier topologies route every packet through real
    per-hop switch queues (:mod:`repro.net.fabric`).
    """

    #: One of :data:`TOPOLOGIES`.
    topology: str = "star"
    #: Any name in the routing registry ("static", "ecmp", "flowlet",
    #: plus anything registered from outside).  Ignored by ``star``,
    #: which has a single path by construction.
    routing: str = "static"
    #: Fat-tree arity (pods); must be even.  k=4 gives 8 edge and 8 agg
    #: switches plus 4 cores, with (k/2)^2 = 4 cross-pod paths.
    fattree_k: int = 4
    #: Parallel core links in the dumbbell trunk (the equal-cost set).
    trunk_links: int = 2
    #: Inter-switch link capacity as a fraction of the access-link
    #: rate: edge<->agg and agg<->core links in the fat-tree, trunk
    #: links in the dumbbell.  < 1 makes the fabric the bottleneck.
    uplink_scale: float = 1.0
    #: Per-port output buffer for multi-tier switches; ``None`` falls
    #: back to :attr:`LinkConfig.switch_buffer_bytes`.
    buffer_bytes: Optional[int] = None
    #: Flowlet gap threshold (seconds): an inter-packet gap larger than
    #: this ends the flowlet and rehashes the flow onto a (possibly)
    #: different equal-cost path.
    flowlet_gap: float = 100e-6

    def __post_init__(self) -> None:
        # Lazy edge to the routing registry, mirroring the transport
        # check below: the registry owns the set of policy names.
        from repro.net.routing import available

        _require(self.topology in TOPOLOGIES,
                 f"unknown topology {self.topology!r}; "
                 f"expected one of {TOPOLOGIES}")
        names = available()
        _require(self.routing in names,
                 f"unknown routing policy {self.routing!r}; "
                 f"expected one of {names}")
        _require(self.fattree_k >= 2 and self.fattree_k % 2 == 0,
                 "fattree_k must be an even integer >= 2")
        _require(self.trunk_links >= 1, "need at least one trunk link")
        _require(self.uplink_scale > 0, "uplink_scale must be positive")
        _require(self.buffer_bytes is None or self.buffer_bytes > 0,
                 "fabric buffer must be positive when set")
        _require(self.flowlet_gap > 0, "flowlet_gap must be positive")


@dataclass(frozen=True)
class SwiftConfig:
    """Swift congestion control (Kumar et al., SIGCOMM'20), as used by
    the paper: delay-AIMD with separate fabric and host (endpoint)
    target delays."""

    host_target: float = cal.SWIFT_HOST_TARGET
    fabric_target: float = cal.SWIFT_FABRIC_TARGET
    #: Packets of additive increase per RTT.  Small, as in production
    #: Swift at high fan-in (hundreds of flows share the receiver; the
    #: aggregate increase pressure is n_flows × this value).
    additive_increase: float = 0.15
    #: Flow scaling (Swift §3.2): the fabric target grows by
    #: ``alpha / sqrt(cwnd)`` (capped) so small-window flows tolerate
    #: more queueing — this is what keeps large incasts stable.
    flow_scaling_alpha: float = 80e-6
    flow_scaling_max: float = 600e-6
    #: Fraction of the target delay below which flows still increase;
    #: between this and 1.0 they hold (anti-oscillation hysteresis).
    hold_threshold: float = 0.85
    beta: float = 0.8                        # MD responsiveness
    max_mdf: float = 0.5                     # max multiplicative decrease
    min_cwnd: float = 0.01                   # packets (paced below 1)
    max_cwnd: float = 256.0                  # packets
    rto: float = 1e-3
    loss_retx_threshold: int = 3             # reorder threshold

    def __post_init__(self) -> None:
        _require(self.host_target > 0, "host target must be positive")
        _require(self.fabric_target > 0, "fabric target must be positive")
        _require(self.flow_scaling_alpha >= 0, "negative flow scaling")
        _require(self.flow_scaling_max >= 0, "negative flow scaling cap")
        _require(0 < self.hold_threshold <= 1.0,
                 "hold_threshold must be in (0, 1]")
        _require(0 < self.max_mdf < 1, "max_mdf must be in (0,1)")
        _require(0 < self.min_cwnd <= self.max_cwnd, "bad cwnd bounds")
        _require(self.rto > 0, "RTO must be positive")
        _require(self.loss_retx_threshold >= 1, "bad retx threshold")


@dataclass(frozen=True)
class WorkloadConfig:
    """The paper's minimal workload (§3): N senders, one connection per
    sender per receiver thread, continuous 16 KB remote reads."""

    senders: int = cal.DEFAULT_SENDERS
    #: Receiver hosts in the topology; each gets its own ``senders``-way
    #: incast, so the fabric carries ``senders × receivers`` flows per
    #: receiver thread.
    receivers: int = 1
    read_size_bytes: int = cal.REMOTE_READ_BYTES
    mtu_payload: int = cal.MTU_PAYLOAD_BYTES
    header_bytes: int = cal.HEADER_BYTES
    #: Open-loop offered load as a fraction of the access-link rate
    #: (reads arrive Poisson at this aggregate rate).  ``None`` means
    #: the paper's saturated closed loop: senders always backlogged.
    offered_load: float | None = None

    def __post_init__(self) -> None:
        _require(self.senders >= 1, "need at least one sender")
        _require(self.receivers >= 1, "need at least one receiver host")
        _require(self.read_size_bytes >= self.mtu_payload,
                 "read size smaller than one MTU")
        _require(self.mtu_payload > 0 and self.header_bytes >= 0,
                 "bad packet geometry")
        _require(self.offered_load is None or 0 < self.offered_load <= 2,
                 "offered_load must be in (0, 2] or None")

    @property
    def wire_bytes_per_packet(self) -> int:
        return self.mtu_payload + self.header_bytes

    @property
    def packets_per_read(self) -> int:
        return -(-self.read_size_bytes // self.mtu_payload)


@dataclass(frozen=True)
class SimConfig:
    """Run control."""

    warmup: float = 8e-3
    duration: float = 25e-3
    seed: int = 1
    trace: bool = False
    #: Flight-recorder capacity when tracing is on (oldest records are
    #: evicted and counted once the ring is full).
    trace_max_records: int = 1_000_000
    #: Sim-time seconds between live-telemetry polls of the metrics
    #: registry (see :mod:`repro.obs.telemetry`); ``None`` disables the
    #: sampler entirely — the default, costing the hot path nothing.
    sample_interval: Optional[float] = None

    def __post_init__(self) -> None:
        _require(self.warmup >= 0, "negative warmup")
        _require(self.duration > 0, "duration must be positive")
        _require(self.seed >= 0, "seed must be non-negative")
        _require(self.trace_max_records > 0,
                 "trace_max_records must be positive")
        _require(self.sample_interval is None or self.sample_interval > 0,
                 "sample_interval must be positive when set")

    @property
    def end_time(self) -> float:
        return self.warmup + self.duration


@dataclass(frozen=True)
class ExperimentConfig:
    """A complete experiment: host + network + transport + run control."""

    host: HostConfig = field(default_factory=HostConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    fabric: FabricConfig = field(default_factory=FabricConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    swift: SwiftConfig = field(default_factory=SwiftConfig)
    #: Any name in the transport registry ("swift", "dctcp", "cubic",
    #: "hostcc", "timely", plus anything registered from outside).
    transport: str = "swift"
    #: Simulation engine: ``"packet"`` (the discrete-event kernel) or
    #: ``"fluid"`` (the rate-based solver).  Part of the result-cache
    #: digest, so the two fidelities never share cached results.
    fidelity: str = "packet"
    sim: SimConfig = field(default_factory=SimConfig)

    def __post_init__(self) -> None:
        # Lazy edge up to the transport layer: the registry is the one
        # source of protocol names, and this kernel module must not
        # import it at module level (layering).
        from repro.transport.registry import available

        names = available()
        _require(self.transport in names,
                 f"unknown transport {self.transport!r}; "
                 f"expected one of {names}")
        _require(self.fidelity in FIDELITIES,
                 f"unknown fidelity {self.fidelity!r}; "
                 f"expected one of {FIDELITIES}")

    def describe(self) -> Dict[str, Any]:
        """Flat summary of the knobs that vary across paper figures."""
        return {
            "transport": self.transport,
            "topology": self.fabric.topology,
            "routing": self.fabric.routing,
            "cores": self.host.cpu.cores,
            "iommu": self.host.iommu.enabled,
            "hugepages": self.host.hugepages,
            "rx_region_mb": self.host.rx_region_bytes / 2**20,
            "antagonist_cores": self.host.antagonist_cores,
            "senders": self.workload.senders,
            "receivers": self.workload.receivers,
            "offered_load": self.workload.offered_load,
            "seed": self.sim.seed,
        }
