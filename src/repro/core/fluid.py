"""Fluid-fidelity experiment runner.

:class:`FluidExperiment` is the rate-based twin of
:class:`~repro.core.experiment.ExperimentHandle`: same construction
signature, same ``run_warmup`` / ``run_measurement`` / ``collect``
lifecycle, same metric names in :meth:`collect` and
:meth:`metrics_snapshot` — so the sweep runner, result cache, CSV
writers, ledger, and every figure binding work unchanged at either
fidelity.  ``run_experiment`` dispatches here when
``config.fidelity == "fluid"``.

The topologies this repo studies are symmetric incasts (every receiver
host serves an identical sender population), so one
:class:`~repro.sim.fluid.FluidSolver` models one host and multi-host
aggregation follows :meth:`repro.core.topology.Topology.snapshot`
analytically: sums for throughputs and bandwidths, traffic-weighted
ratios for rates, means for utilizations and latencies, max for peak
buffer occupancy.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.config import ExperimentConfig
from repro.core.results import ExperimentResult
from repro.sim.fluid import (FluidSolver, message_latency_summary,
                             weighted_percentile)

__all__ = ["FluidExperiment"]


class _FluidClock:
    """The ``handle.sim`` surface the sweep runner reads: simulated
    time and a work counter (solver steps stand in for events)."""

    def __init__(self, solver: FluidSolver):
        self._solver = solver

    @property
    def now(self) -> float:
        return self._solver.now

    @property
    def events_dispatched(self) -> int:
        return self._solver.steps


def _weighted_summary(pairs: List[Tuple[float, float]],
                      scale: float = 1.0) -> Dict[str, float]:
    """A histogram-style summary dict (count/mean/p50/p90/p99/min/max)
    of a weighted sample, matching ``Histogram.summary()``."""
    if not pairs:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                "p99": 0.0, "min": 0.0, "max": 0.0}
    total = sum(w for _, w in pairs)
    mean = (sum(v * w for v, w in pairs) / total) if total > 0 else 0.0
    return {
        "count": int(round(total)),
        "mean": mean * scale,
        "p50": weighted_percentile(pairs, 0.50) * scale,
        "p90": weighted_percentile(pairs, 0.90) * scale,
        "p99": weighted_percentile(pairs, 0.99) * scale,
        "min": min(v for v, _ in pairs) * scale,
        "max": max(v for v, _ in pairs) * scale,
    }


class FluidExperiment:
    """A built-but-not-finished fluid experiment (handle-compatible)."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self.n_receivers = config.workload.receivers
        self.solver = FluidSolver(config)
        self.sim = _FluidClock(self.solver)
        self._measuring = False

    def run_warmup(self) -> None:
        self.solver.run_until(self.config.sim.warmup)
        self.solver.reset_stats()
        self._measuring = True

    def run_measurement(self) -> None:
        if not self._measuring:
            self.run_warmup()
        self.solver.run_until(self.config.sim.end_time)

    # -- reporting ---------------------------------------------------------

    def _aggregate_snapshot(self) -> Dict[str, float]:
        """The topology-level headline dict: one symmetric host scaled
        to ``n_receivers`` per ``Topology.snapshot`` aggregation."""
        snap = self.solver.snapshot()
        m = self.n_receivers
        if m == 1:
            return snap
        summed = ("app_throughput_gbps", "wire_arrival_gbps",
                  "memory_total_GBps", "iommu_entries",
                  "remote_memory_GBps")
        return {key: (value * m if key in summed else value)
                for key, value in snap.items()}

    def collect(self) -> ExperimentResult:
        run = self.solver.run
        m = self.n_receivers
        metrics = self._aggregate_snapshot()
        messages = sum(w for _, w in run.latency_pairs)
        metrics.update(
            {
                "packets_sent":
                    (run.rx_packets + run.retransmissions) * m,
                "retransmissions": run.retransmissions * m,
                "timeouts": run.timeouts * m,
                "mean_cwnd": self.solver.mean_cwnd(),
                "fabric_drops": run.fabric_dropped_packets * m,
                "fabric_drop_rate":
                    (run.fabric_dropped_packets
                     / run.fabric_offered_packets
                     if run.fabric_offered_packets > 0 else 0.0),
                "messages_completed": messages * m,
                "link_utilization":
                    metrics["wire_arrival_gbps"] * 1e9
                    / (self.config.link.rate_bps * m),
            }
        )
        scaled = [(v * 1e6, w) for v, w in run.latency_pairs]
        return ExperimentResult(
            params=self.config.describe(),
            metrics=metrics,
            message_latency_us=message_latency_summary(scaled),
        )

    def metrics_snapshot(self) -> Dict[str, Dict]:
        """Registry-shaped snapshot (counters/gauges/histograms/meta)
        with the packet engine's metric names, so ``--metrics-out``
        payloads and ledger rows keep one schema across fidelities."""
        solver = self.solver
        run = solver.run
        snap = solver.snapshot()
        counters = {
            "nic.rx_packets": run.rx_packets,
            "nic.dropped_packets": run.dropped_packets,
            "nic.dma_completed_packets": run.dma_packets,
            "iommu.iotlb_misses":
                solver.misses_per_packet * run.dma_packets,
            "transport.retransmissions": run.retransmissions,
            "transport.timeouts": run.timeouts,
        }
        gauges = {
            "nic.drop_rate": snap["drop_rate"],
            "host.iotlb_misses_per_packet":
                snap["iotlb_misses_per_packet"],
            "host.app_throughput_gbps": snap["app_throughput_gbps"],
            "memory.bandwidth_GBps": snap["memory_total_GBps"],
            "memory.utilization": snap["memory_utilization"],
            "transport.mean_cwnd": self.solver.mean_cwnd(),
        }
        histograms = {
            "nic.host_delay_us": _weighted_summary(run.delay_pairs,
                                                   scale=1e6),
        }
        if self.n_receivers == 1:
            payload = {"counters": counters, "gauges": gauges,
                       "histograms": histograms}
        else:
            # Symmetric hosts: every host's subtree carries the same
            # per-host values, prefixed as the packet topology does.
            payload = {
                "counters": {f"host{i}/{k}": v
                             for i in range(self.n_receivers)
                             for k, v in counters.items()},
                "gauges": {f"host{i}/{k}": v
                           for i in range(self.n_receivers)
                           for k, v in gauges.items()},
                "histograms": {f"host{i}/{k}": dict(v)
                               for i in range(self.n_receivers)
                               for k, v in histograms.items()},
            }
        payload["meta"] = {
            "params": self.config.describe(),
            "sim_time_s": self.sim.now,
            "events_dispatched": self.sim.events_dispatched,
            "trace_records": 0,
            "trace_dropped": 0,
            "fidelity": "fluid",
        }
        return payload
