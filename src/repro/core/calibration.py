"""Calibrated constants and their provenance.

Every number here is either taken directly from the paper (Agarwal et
al., HotNets '22, §3), from a work it cites, or fitted so that the
analytical model in :mod:`repro.core.model` reproduces the paper's
operating points.  The DESIGN.md calibration table mirrors this module.

Unit conventions used throughout the package:

- time: seconds
- size: bytes
- rate: bits/second for network rates (``*_bps``),
  bytes/second for memory rates (``*_Bps``)
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Network (paper §3 testbed)
# --------------------------------------------------------------------------

#: Access link rate: "100Gbps NICs".
LINE_RATE_BPS = 100e9

#: MTU payload: "when using 4K MTUs".
MTU_PAYLOAD_BYTES = 4096

#: Per-packet protocol overhead, fitted so max application goodput is the
#: paper's "~92Gbps due to protocol header overheads":
#: 4096 / (4096 + 356) * 100 Gbps = 92.0 Gbps.
HEADER_BYTES = 356

#: Maximum application-level goodput on the 100 Gbps link.
MAX_APP_GOODPUT_BPS = LINE_RATE_BPS * MTU_PAYLOAD_BYTES / (
    MTU_PAYLOAD_BYTES + HEADER_BYTES
)

#: Base network round-trip (no queueing); paper §4 footnote 5 reasons
#: with "a 20µs RTT".
BASE_RTT_SECONDS = 20e-6

#: The paper's workload: "40 sender machines and one receiver machine".
DEFAULT_SENDERS = 40

#: "each receiver thread issues 16KB remote reads".
REMOTE_READ_BYTES = 16384

# --------------------------------------------------------------------------
# PCIe (paper §3.1; Neugebauer et al., SIGCOMM'18)
# --------------------------------------------------------------------------

#: "PCIe 3.0 x16 lanes per NIC ... maximum 128Gbps theoretical capacity".
PCIE_RAW_BPS = 128e9

#: "the achievable PCIe goodput is only ~110Gbps due to the PCIe
#: transaction and link layer header overheads".
PCIE_GOODPUT_BPS = 110e9

#: Credit-limited in-flight DMA bytes (five 4 KB-MTU wire packets).
#: Fitted: the Little's-law throughput bound C/T_base must sit just
#: above the line rate so that it binds only once IOTLB misses inflate
#: per-DMA latency: 22260 B / 1.47 µs ≈ 121 Gbps of wire rate.
PCIE_MAX_INFLIGHT_BYTES = 5 * (MTU_PAYLOAD_BYTES + HEADER_BYTES)

#: Fixed (memory-independent) part of per-DMA latency: PCIe transaction
#: issue + root-complex processing + completion handling.  Together with
#: one uncontended memory access this gives T_base ≈ 1.15 µs.
DMA_FIXED_LATENCY = 1.0e-6

# --------------------------------------------------------------------------
# IOMMU / IOTLB (paper §3.1)
# --------------------------------------------------------------------------

#: "128 size IOTLB per IOMMU".
IOTLB_ENTRIES = 128

#: IOTLB set-associativity (hardware IOTLBs are set-associative; the
#: exact organization is undocumented — 16 ways keeps conflict misses
#: modest while preserving the 8-thread capacity knee).
IOTLB_WAYS = 16

#: "an IOTLB hit typically takes a few nanoseconds".
IOTLB_HIT_LATENCY = 3e-9

#: Per-thread Rx data region: Fig. 5's baseline — "the baseline case of
#: 12MB memory region size".
RX_REGION_BYTES = 12 * 2**20

#: 4 KB control pages per receiver thread that the NIC touches each
#: packet (descriptor ring, completion ring, ACK staging).  Fitted so
#: the per-thread IOMMU footprint with hugepages is ~16 entries
#: (6 hugepages of data + 10 control pages), putting the IOTLB-capacity
#: crossover exactly at 8 threads: the paper observes a "sudden increase
#: of IOTLB misses per packet above 8 threads".
DESC_RING_PAGES = 3
COMPLETION_RING_PAGES = 2
TX_DESC_RING_PAGES = 2
TX_COMPLETION_RING_PAGES = 1
ACK_STAGING_PAGES = 2
#: Connection-state pages touched per packet: each receiver thread
#: serves one connection per sender (40 by default), whose descriptors
#: and state span several 4 KB pages accessed with little locality.
CONN_STATE_PAGES = 4

# --------------------------------------------------------------------------
# Memory subsystem (paper §3, §3.2)
# --------------------------------------------------------------------------

#: "theoretical maximum memory bus bandwidth of 115.2GBps per NUMA node".
MEMORY_BW_THEORETICAL_BPS = 115.2e9  # bytes/s

#: "maximum achievable bandwidth by Stream per NUMA node ... ~90GB/s".
MEMORY_BW_ACHIEVABLE_BPS = 90e9  # bytes/s

#: Uncontended DRAM access latency seen by a DMA write.
MEMORY_IDLE_LATENCY = 150e-9

#: Uncontended latency of one page-table-walk read.  Walks are
#: dependent pointer-chasing reads, slower than pipelined DMA writes;
#: the paper: a miss adds "few hundreds of nanoseconds to up to a
#: microsecond".
WALK_BASE_LATENCY = 300e-9

#: Maximum additional queueing latency per memory access at saturation.
#: Fitted to Fig. 6: IOMMU-OFF throughput at 15 antagonist cores drops
#: ~15 %, which requires per-DMA latency ≈ 1.5 µs → ~0.5 µs of queueing.
MEMORY_MAX_QUEUE_DELAY = 0.5e-6

#: Page-walk accesses observe a fraction of the DMA write queueing
#: inflation (reads bypass the write-combining path).  Fitted to Fig. 6
#: (center): IOMMU-ON at 15 antagonist cores lands near 60 Gbps.
WALK_CONTENTION_FRACTION = 0.5

#: Stream antagonist per-core demand; 15 cores saturate ~90 GB/s
#: (paper §3.2, "65GB/s for reads and 25GB/s for writes" combined).
STREAM_PER_CORE_BPS = 6.5e9  # bytes/s

#: Receiver-side copy traffic at full rate: paper measured ~11.8 GB/s of
#: writes (the PCIe payload writes) and ~3.3 GB/s of reads (copies out
#: of the LLC that miss).  3.3/11.5 ≈ 0.29 of payload bytes.
COPY_READ_FRACTION = 0.29

#: Copy destination writes mostly hit in LLC (app buffers are reused);
#: the measured write bandwidth is ≈ the PCIe write rate alone.
COPY_WRITE_FRACTION = 0.05

# --------------------------------------------------------------------------
# NIC and CPU (paper §3, §3.1)
# --------------------------------------------------------------------------

#: "~1MB NIC buffer size in our testbed".
NIC_BUFFER_BYTES = 1 * 2**20

#: Per-core receive processing rate: Fig. 3's CPU-bottlenecked region is
#: linear and reaches 92 Gbps at 8 cores → 11.5 Gbps/core.
CORE_PROCESSING_GBPS = 11.5

#: Rx descriptor ring size per receive queue (typical driver default).
RX_RING_DESCRIPTORS = 1024

# --------------------------------------------------------------------------
# Swift congestion control (paper §3.1; Kumar et al., SIGCOMM'20)
# --------------------------------------------------------------------------

#: "Our CC protocol uses a target host delay value of 100µs".
SWIFT_HOST_TARGET = 100e-6

#: Fabric delay target (base RTT plus a queueing allowance).  Generous
#: relative to the 20 µs base RTT so the *host* is the binding
#: constraint, as in the paper's testbed (fabric congestion is not the
#: phenomenon under study; Swift's per-hop scaling gives incast flows
#: substantial fabric allowances).
SWIFT_FABRIC_TARGET = 80e-6

#: The NIC-to-CPU rate below which the full NIC buffer exceeds the host
#: target delay, so Swift starts reacting: 1 MB / 100 µs ≈ 83.9 Gbps of
#: wire rate.  The paper quotes the same computation with 90 µs of
#: headroom: "1MB/90µs = 88.8Gbps (~81Gbps application-level
#: throughput)".
SWIFT_BLINDSPOT_WIRE_BPS = NIC_BUFFER_BYTES * 8 / SWIFT_HOST_TARGET
