"""Declarative scenario layer: one spec-driven pipeline from config
expansion to rendered figures.

A :class:`ScenarioSpec` describes an experiment *as data*:

- **base overrides** — dotted paths into the nested config dataclasses
  (``"host.iommu.enabled"``, ``"sim.warmup"``) applied to a base
  :class:`~repro.core.config.ExperimentConfig`;
- **sweep axes** — one or more ``(path, values)`` axes expanded as a
  cartesian product (first axis outermost) or zipped pairwise;
- **repeats** — each expanded point is run ``repeats`` times with a
  deterministically derived seed per repeat (repeat 0 keeps the
  configured seed, so single-repeat specs are byte-identical to the
  pre-scenario code path);
- **quality presets** — named bundles of overrides plus per-axis value
  grids (``quick`` vs ``full``), selected at run time;
- **output selectors** — panel/series/axes rendering metadata consumed
  by :mod:`repro.analysis.figures`, so a paper figure is a spec file,
  not code.

Specs load from TOML or JSON files with schema validation that names
the offending key and its location, or are built programmatically (the
``sweep_*`` helpers in :mod:`repro.core.sweep` are thin wrappers that
construct in-memory specs).  However a spec is built, execution flows
through :func:`run_configs` — the same parallel executor and on-disk
result cache as every other entry point, so ``workers=``, per-run
timeouts, ``FailedRun`` rows, and config-digest memoization come for
free.

Drivers other than the default config sweep expose the workload studies
as specs too: ``driver = "fleet"`` samples a heterogeneous fleet
(Fig. 1), ``driver = "day"`` runs one host through a diurnal schedule,
and ``driver = "isolation"`` runs the small-RPC victim study.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import types
import typing
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.cache import ResultCache
from repro.core.config import FIDELITIES, ExperimentConfig
from repro.core.parallel import Workers, run_many
from repro.core.results import ExperimentResult, ResultTable

try:  # Python >= 3.11
    import tomllib as _toml
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ModuleNotFoundError:
        _toml = None  # type: ignore[assignment]

__all__ = [
    "PanelSpec",
    "QualityPreset",
    "RenderSpec",
    "ScenarioError",
    "ScenarioSpec",
    "SeriesSpec",
    "SweepAxis",
    "apply_overrides",
    "bundled_scenarios",
    "derive_seed",
    "find_scenario",
    "load_scenario_dir",
    "load_scenario_file",
    "run_configs",
]

#: Drivers a spec may name and the study each one runs.
DRIVERS = ("sweep", "fleet", "day", "isolation")

#: Flat parameter keys every run reports (``ExperimentConfig.describe``)
#: — the vocabulary for render ``x`` keys and ``where`` filters.
PARAM_KEYS = tuple(ExperimentConfig().describe())


class ScenarioError(ValueError):
    """A spec failed validation; the message names the bad key and the
    file (or in-memory source) it came from."""


# ---------------------------------------------------------------------------
# Dotted-path overrides over the nested config dataclasses
# ---------------------------------------------------------------------------

def _field_types(cls) -> Dict[str, Any]:
    """Resolved annotation per dataclass field (PEP 563 strings undone)."""
    return typing.get_type_hints(cls)


def _unwrap_optional(leaf_type) -> Tuple[Any, bool]:
    """(concrete type, allows_none) for ``X | None`` annotations."""
    origin = typing.get_origin(leaf_type)
    if origin is typing.Union or origin is getattr(types, "UnionType", None):
        args = [a for a in typing.get_args(leaf_type)
                if a is not type(None)]
        if len(args) == 1:
            return args[0], True
    return leaf_type, False


def _resolve_leaf(path: str, *, source: str, context: str):
    """Walk ``path`` down from :class:`ExperimentConfig`.

    Returns the leaf field's resolved type.  Raises
    :class:`ScenarioError` naming the first missing segment, the class
    it was looked up on, and that class's actual fields.
    """
    parts = path.split(".")
    cls = ExperimentConfig
    for depth, part in enumerate(parts):
        if not dataclasses.is_dataclass(cls):
            prefix = ".".join(parts[:depth])
            raise ScenarioError(
                f"{source}: {context}{path!r}: {prefix!r} is a "
                f"{cls.__name__}, not a config section — the path ends "
                f"too deep")
        types_by_name = _field_types(cls)
        if part not in types_by_name:
            options = ", ".join(sorted(types_by_name))
            raise ScenarioError(
                f"{source}: {context}{path!r}: {cls.__name__} has no "
                f"field {part!r} (fields: {options})")
        cls = types_by_name[part]
    if dataclasses.is_dataclass(cls):
        raise ScenarioError(
            f"{source}: {context}{path!r} names the whole "
            f"{cls.__name__} section; give a full dotted path to one "
            f"of its fields")
    return cls


def _coerce_value(path: str, value: Any, leaf_type, *, source: str,
                  context: str) -> Any:
    """Type-check ``value`` against the leaf annotation.

    TOML integers are accepted for float fields (coerced, so digests
    and dataclass equality match Python-built configs exactly); bools
    are never accepted as ints and vice versa.
    """
    concrete, allows_none = _unwrap_optional(leaf_type)
    if value is None:
        if allows_none:
            return None
        raise ScenarioError(
            f"{source}: {context}{path!r}: null is not allowed "
            f"(expected {getattr(concrete, '__name__', concrete)})")
    if concrete is bool:
        if isinstance(value, bool):
            return value
    elif concrete is float:
        if isinstance(value, bool):
            pass  # fall through to the error
        elif isinstance(value, int):
            return float(value)
        elif isinstance(value, float):
            return value
    elif concrete is int:
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    elif concrete is str:
        if isinstance(value, str):
            return value
    else:  # exotic leaf: pass through untyped
        return value
    raise ScenarioError(
        f"{source}: {context}{path!r}: expected "
        f"{getattr(concrete, '__name__', concrete)}, got "
        f"{type(value).__name__} ({value!r})")


def _replace_path(config, parts: Sequence[str], value):
    name = parts[0]
    if len(parts) == 1:
        return dataclasses.replace(config, **{name: value})
    child = _replace_path(getattr(config, name), parts[1:], value)
    return dataclasses.replace(config, **{name: child})


def apply_overrides(
    config: ExperimentConfig,
    overrides: Mapping[str, Any],
    *,
    source: str = "<overrides>",
    context: str = "",
) -> ExperimentConfig:
    """Apply dotted-path overrides, validating each path and value.

    A value the target config itself rejects (``__post_init__``) is
    re-raised as a :class:`ScenarioError` naming the offending key.
    """
    for path, value in overrides.items():
        leaf_type = _resolve_leaf(path, source=source, context=context)
        value = _coerce_value(path, value, leaf_type, source=source,
                             context=context)
        try:
            config = _replace_path(config, path.split("."), value)
        except ValueError as exc:
            raise ScenarioError(
                f"{source}: {context}{path!r} = {value!r} rejected by "
                f"config validation: {exc}") from exc
    return config


def derive_seed(seed: int, repeat: int) -> int:
    """Seed for repeat ``repeat`` of a run configured with ``seed``.

    Repeat 0 keeps the configured seed (so ``repeats = 1`` expands to
    exactly the config it would without repeats); later repeats draw a
    disjoint, deterministic stream via SHA-256 of ``"seed:repeat"``.
    """
    if repeat == 0:
        return seed
    digest = hashlib.sha256(f"{seed}:{repeat}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


# ---------------------------------------------------------------------------
# Spec model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepAxis:
    """One sweep dimension: a dotted config path and its value grid."""

    path: str
    values: Tuple[Any, ...]
    #: Multiplier applied to numeric values before they hit the config
    #: (lets a spec say ``rx_region_bytes`` in MB: ``scale = 1048576``).
    scale: float = 1

    def scaled(self, values: Optional[Sequence[Any]] = None) -> Tuple:
        raw = self.values if values is None else tuple(values)
        if self.scale == 1:
            return raw
        return tuple(v * self.scale if isinstance(v, (int, float))
                     and not isinstance(v, bool) else v for v in raw)


@dataclass(frozen=True)
class QualityPreset:
    """A named run-time fidelity level: overrides + axis value grids."""

    overrides: Mapping[str, Any] = field(default_factory=dict)
    #: axis path -> replacement values (unscaled) for this preset.
    axis_values: Mapping[str, Tuple[Any, ...]] = field(
        default_factory=dict)


@dataclass(frozen=True)
class SeriesSpec:
    """One rendered curve.

    ``kind`` selects the y-value source:

    - ``"metric"`` — a result-table metric filtered by ``where``;
    - ``"model"`` — the Little's-law bound fed with measured misses
      (rows matching ``where`` with x >= ``min_x``; ``config_path``
      says which config field the panel x maps to);
    - ``"max_goodput"`` — the constant achievable-goodput line.
    """

    label: str
    kind: str = "metric"
    metric: Optional[str] = None
    where: Mapping[str, Any] = field(default_factory=dict)
    scale: float = 1
    min_x: Optional[float] = None
    config_path: Optional[str] = None


@dataclass(frozen=True)
class PanelSpec:
    """One figure panel: axes metadata plus its series."""

    name: str
    x: str
    x_label: str
    y_label: str
    series: Tuple[SeriesSpec, ...] = ()


@dataclass(frozen=True)
class RenderSpec:
    """How a scenario's results become a figure or table."""

    style: str = "table"            # "panels" | "scatter" | "table"
    panels: Tuple[PanelSpec, ...] = ()
    #: Param key for the x column of ``style = "table"`` output.
    x: Optional[str] = None


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative experiment description."""

    name: str
    title: str = ""
    description: str = ""
    driver: str = "sweep"
    #: Engine the spec runs on: "packet" (event-level kernel) or
    #: "fluid" (rate-based solver).  Applied to the base config before
    #: overrides, so a dotted-path ``fidelity`` override (or an
    #: explicit ``fidelity=`` at run time) still wins.
    fidelity: str = "packet"
    #: Dotted-path overrides applied to the base config first.
    base: Mapping[str, Any] = field(default_factory=dict)
    axes: Tuple[SweepAxis, ...] = ()
    expansion: str = "product"      # "product" | "zip"
    repeats: int = 1
    quality: Mapping[str, QualityPreset] = field(default_factory=dict)
    default_quality: Optional[str] = None
    #: Driver-specific knobs (fleet: n_hosts/seed; day: n_bins/...).
    driver_args: Mapping[str, Any] = field(default_factory=dict)
    render: Optional[RenderSpec] = None
    #: Provenance for error messages ("figure3.toml", "<sweep_cores>").
    source: str = "<memory>"

    # -- construction ------------------------------------------------------

    @classmethod
    def from_file(cls, path: str | Path) -> "ScenarioSpec":
        """Load and validate a ``.toml`` or ``.json`` spec file."""
        path = Path(path)
        return cls.from_text(path.read_text(), source=path.name,
                             fmt=path.suffix.lstrip("."))

    @classmethod
    def from_text(cls, text: str, *, source: str = "<string>",
                  fmt: str = "toml") -> "ScenarioSpec":
        if fmt == "json":
            try:
                data = json.loads(text)
            except ValueError as exc:
                raise ScenarioError(
                    f"{source}: JSON parse error: {exc}") from exc
        elif fmt == "toml":
            if _toml is None:  # pragma: no cover - 3.10 without tomli
                raise ScenarioError(
                    f"{source}: no TOML parser available on this "
                    f"Python (need tomllib >= 3.11 or the tomli "
                    f"package); use a .json spec instead")
            try:
                data = _toml.loads(text)
            except _toml.TOMLDecodeError as exc:
                raise ScenarioError(
                    f"{source}: TOML parse error: {exc}") from exc
        else:
            raise ScenarioError(
                f"{source}: unknown spec format {fmt!r} "
                f"(expected toml or json)")
        return cls.from_dict(data, source=source)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *,
                  source: str = "<dict>") -> "ScenarioSpec":
        """Validate a raw mapping into a spec.

        Every rejection is a :class:`ScenarioError` whose message
        contains the offending key and ``source``.
        """
        if not isinstance(data, Mapping):
            raise ScenarioError(f"{source}: spec must be a table, got "
                                f"{type(data).__name__}")
        _check_keys(data, {"scenario", "base", "quality", "axes",
                           "render", "driver_args"}, source, "")

        meta = data.get("scenario")
        if not isinstance(meta, Mapping):
            raise ScenarioError(
                f"{source}: missing [scenario] table (with at least "
                f"'name')")
        _check_keys(meta, {"name", "title", "description", "driver",
                           "fidelity", "expansion", "repeats",
                           "default_quality"},
                    source, "[scenario] ")
        name = meta.get("name")
        if not isinstance(name, str) or not name:
            raise ScenarioError(
                f"{source}: [scenario] 'name' must be a non-empty "
                f"string")
        driver = _str_choice(meta, "driver", DRIVERS, "sweep", source)
        fidelity = _str_choice(meta, "fidelity", FIDELITIES, "packet",
                               source)
        expansion = _str_choice(meta, "expansion", ("product", "zip"),
                                "product", source)
        repeats = meta.get("repeats", 1)
        if not isinstance(repeats, int) or isinstance(repeats, bool) \
                or repeats < 1:
            raise ScenarioError(
                f"{source}: [scenario] 'repeats' must be an integer "
                f">= 1, got {repeats!r}")

        base = _validate_overrides(data.get("base", {}), source,
                                   "[base] ")
        axes = _validate_axes(data.get("axes", []), source)
        if driver != "sweep" and axes:
            raise ScenarioError(
                f"{source}: 'axes' only apply to driver = \"sweep\" "
                f"(driver is {driver!r})")

        quality = _validate_quality(data.get("quality", {}), axes,
                                    source)
        default_quality = meta.get("default_quality")
        if default_quality is not None and default_quality not in quality:
            raise ScenarioError(
                f"{source}: [scenario] 'default_quality' "
                f"{default_quality!r} is not a defined [quality.*] "
                f"preset (have: {sorted(quality)})")

        driver_args = _validate_driver_args(
            data.get("driver_args", {}), driver, source)
        render = _validate_render(data.get("render"), source)

        return cls(name=name,
                   title=str(meta.get("title", "")),
                   description=str(meta.get("description", "")),
                   driver=driver, fidelity=fidelity, base=base,
                   axes=axes,
                   expansion=expansion, repeats=repeats,
                   quality=quality, default_quality=default_quality,
                   driver_args=driver_args, render=render,
                   source=source)

    # -- expansion ---------------------------------------------------------

    def _preset(self, quality: Optional[str]) -> Optional[QualityPreset]:
        name = quality if quality is not None else self.default_quality
        if name is None:
            return None
        try:
            return self.quality[name]
        except KeyError:
            raise ScenarioError(
                f"{self.source}: scenario {self.name!r} has no quality "
                f"preset {name!r} (have: {sorted(self.quality)})"
            ) from None

    def base_config(
        self,
        quality: Optional[str] = None,
        base: Optional[ExperimentConfig] = None,
        fidelity: Optional[str] = None,
    ) -> ExperimentConfig:
        """The config every expanded point starts from: ``base`` (or
        the defaults) + the spec's fidelity (or the ``fidelity``
        argument — the CLI's ``--fidelity``) + base overrides + the
        quality preset's."""
        config = base if base is not None else ExperimentConfig()
        chosen = fidelity if fidelity is not None else self.fidelity
        if chosen not in FIDELITIES:
            raise ScenarioError(
                f"{self.source}: 'fidelity' must be one of "
                f"{FIDELITIES}, got {chosen!r}")
        if config.fidelity != chosen:
            config = dataclasses.replace(config, fidelity=chosen)
        config = apply_overrides(config, self.base, source=self.source,
                                 context="[base] ")
        preset = self._preset(quality)
        if preset is not None:
            config = apply_overrides(config, preset.overrides,
                                     source=self.source,
                                     context="[quality] ")
        return config

    def axis_grid(self, quality: Optional[str] = None) -> List[Tuple]:
        """Scaled value grid per axis under the chosen preset."""
        preset = self._preset(quality)
        grids = []
        for axis in self.axes:
            values = None
            if preset is not None:
                values = preset.axis_values.get(axis.path)
            grids.append(axis.scaled(values))
        return grids

    def expand(
        self,
        quality: Optional[str] = None,
        base: Optional[ExperimentConfig] = None,
        fidelity: Optional[str] = None,
    ) -> List[ExperimentConfig]:
        """Every concrete :class:`ExperimentConfig` this spec names.

        Product expansion nests axes in declaration order (first axis
        outermost); zip expansion pairs them index by index.  Repeats
        are innermost, with seeds from :func:`derive_seed`.
        """
        if self.driver != "sweep":
            raise ScenarioError(
                f"{self.source}: scenario {self.name!r} uses driver "
                f"{self.driver!r}; only sweep scenarios expand to "
                f"config lists")
        config = self.base_config(quality, base, fidelity)
        grids = self.axis_grid(quality)
        if self.expansion == "zip":
            lengths = {axis.path: len(grid)
                       for axis, grid in zip(self.axes, grids)}
            if len(set(lengths.values())) > 1:
                detail = ", ".join(f"{path} has {n}"
                                   for path, n in lengths.items())
                raise ScenarioError(
                    f"{self.source}: zip expansion needs equal-length "
                    f"axes ({detail})")
            combos: Iterable[Tuple] = zip(*grids) if grids else [()]
        else:
            combos = itertools.product(*grids)

        leaf_types = [
            _resolve_leaf(axis.path, source=self.source,
                          context=f"axes[{i}] ")
            for i, axis in enumerate(self.axes)
        ]
        configs: List[ExperimentConfig] = []
        for combo in combos:
            point = config
            for axis, leaf_type, value in zip(self.axes, leaf_types,
                                              combo):
                value = _coerce_value(axis.path, value, leaf_type,
                                      source=self.source,
                                      context="axes ")
                point = _replace_path(point, axis.path.split("."),
                                      value)
            for repeat in range(self.repeats):
                if repeat == 0:
                    configs.append(point)
                else:
                    seed = derive_seed(point.sim.seed, repeat)
                    configs.append(_replace_path(
                        point, ("sim", "seed"), seed))
        return configs

    # -- execution ---------------------------------------------------------

    def run(
        self,
        quality: Optional[str] = None,
        base: Optional[ExperimentConfig] = None,
        progress: Optional[Callable[[int, ExperimentResult],
                                    None]] = None,
        snapshots_out: Optional[list] = None,
        *,
        fidelity: Optional[str] = None,
        workers: Workers = None,
        timeout: Optional[float] = None,
        cache: Optional[ResultCache] = None,
        events: Optional[Callable[[dict], None]] = None,
        failures: str = "raise",
    ):
        """Run the scenario through the shared execution pipeline.

        ``fidelity`` overrides the spec's engine choice at run time
        (the CLI's ``--fidelity``); results are cached under distinct
        keys per fidelity.

        Returns a :class:`ResultTable` for sweep scenarios, a list of
        :class:`~repro.workload.fleet.FleetSample` for fleet ones, a
        list of :class:`~repro.workload.day.DayBin` for day ones, and
        a dict of :class:`~repro.workload.isolation.IsolationResult`
        for isolation ones.  ``events``/``failures`` stream lifecycle
        telemetry and select crash semantics exactly as in
        :func:`repro.core.parallel.run_many` (sweep and fleet drivers
        only).
        """
        if self.driver == "sweep":
            return run_configs(self.expand(quality, base, fidelity),
                               progress=progress,
                               snapshots_out=snapshots_out,
                               workers=workers, timeout=timeout,
                               cache=cache, events=events,
                               failures=failures)
        if self.driver == "fleet":
            return self._run_fleet(quality, base, fidelity,
                                   workers=workers, events=events)
        if self.driver == "day":
            return self._run_day(quality, base, fidelity)
        if self.driver == "isolation":
            return self._run_isolation(quality, base, fidelity)
        raise ScenarioError(
            f"{self.source}: unknown driver {self.driver!r}")

    def fleet_sampler(self, quality=None, base=None, fidelity=None):
        """Build the spec's :class:`~repro.workload.fleet.FleetSampler`
        (fleet driver only) plus its configured host count."""
        from repro.workload.fleet import FleetSampler

        if self.driver != "fleet":
            raise ScenarioError(
                f"{self.source}: fleet_sampler() needs driver = "
                f"'fleet', got {self.driver!r}")
        config = self.base_config(quality, base, fidelity)
        sampler = FleetSampler(
            seed=int(self.driver_args.get("seed", 7)),
            warmup=config.sim.warmup,
            duration=config.sim.duration,
            fidelity=config.fidelity)
        return sampler, int(self.driver_args.get("n_hosts", 30))

    def _run_fleet(self, quality, base, fidelity=None, *,
                   workers: Workers = None, events=None):
        sampler, n_hosts = self.fleet_sampler(quality, base, fidelity)
        return sampler.run(n_hosts, workers=workers, events=events)

    def run_fleet_aggregate(self, quality=None, base=None,
                            fidelity=None, *,
                            workers: Workers = None, events=None,
                            progress=None, n_hosts=None, **stream_args):
        """Run the fleet driver through the constant-memory streaming
        pipeline, returning a merged
        :class:`~repro.workload.fleet_agg.FleetAggregate`.

        ``stream_args`` pass straight to
        :meth:`~repro.workload.fleet.FleetSampler.run_aggregate`
        (``shards=``, ``checkpoint=``, ``resume=``, ...); the spec's
        ``driver_args`` supply the default shard count, execution
        backend (``"auto"`` = cohort-batched for fluid fleets), and
        batch size.
        """
        sampler, spec_hosts = self.fleet_sampler(quality, base,
                                                 fidelity)
        stream_args.setdefault(
            "shards", int(self.driver_args.get("shards", 1)))
        stream_args.setdefault(
            "backend", str(self.driver_args.get("backend", "auto")))
        stream_args.setdefault(
            "batch_size", int(self.driver_args.get("batch_size", 4096)))
        return sampler.run_aggregate(
            spec_hosts if n_hosts is None else int(n_hosts),
            workers=workers, events=events, progress=progress,
            **stream_args)

    def _run_day(self, quality, base, fidelity=None):
        from repro.workload.day import diurnal_schedule, simulate_day

        config = self.base_config(quality, base, fidelity)
        args = self.driver_args
        schedule = diurnal_schedule(
            int(args.get("n_bins", 24)),
            seed=int(args.get("schedule_seed", 0)),
            base_load=float(args.get("base_load", 0.6)),
            swing=float(args.get("swing", 0.55)),
            antagonist_peak=int(args.get("antagonist_peak", 15)))
        return simulate_day(
            config, schedule,
            bin_duration=float(args.get("bin_duration", 5e-3)),
            warmup_per_bin=float(args.get("warmup_per_bin", 1e-3)))

    def _run_isolation(self, quality, base, fidelity=None):
        from repro.workload.isolation import congested_vs_uncongested

        config = self.base_config(quality, base, fidelity)
        return congested_vs_uncongested(config)


# ---------------------------------------------------------------------------
# Validation helpers
# ---------------------------------------------------------------------------

def _check_keys(table: Mapping[str, Any], allowed: set, source: str,
                context: str) -> None:
    for key in table:
        if key not in allowed:
            raise ScenarioError(
                f"{source}: {context}unknown key {key!r} "
                f"(allowed: {sorted(allowed)})")


def _str_choice(table: Mapping[str, Any], key: str,
                choices: Tuple[str, ...], default: str,
                source: str) -> str:
    value = table.get(key, default)
    if value not in choices:
        raise ScenarioError(
            f"{source}: [scenario] {key!r} must be one of {choices}, "
            f"got {value!r}")
    return value


def _validate_overrides(raw: Any, source: str,
                        context: str) -> Dict[str, Any]:
    if not isinstance(raw, Mapping):
        raise ScenarioError(
            f"{source}: {context.strip() or 'overrides'} must be a "
            f"table of dotted-path keys")
    overrides: Dict[str, Any] = {}
    for path, value in raw.items():
        leaf_type = _resolve_leaf(path, source=source, context=context)
        overrides[path] = _coerce_value(path, value, leaf_type,
                                        source=source, context=context)
    return overrides


def _validate_axes(raw: Any, source: str) -> Tuple[SweepAxis, ...]:
    if not isinstance(raw, (list, tuple)):
        raise ScenarioError(
            f"{source}: 'axes' must be an array of tables")
    axes: List[SweepAxis] = []
    seen_paths = set()
    for i, entry in enumerate(raw):
        context = f"axes[{i}] "
        if not isinstance(entry, Mapping):
            raise ScenarioError(
                f"{source}: {context}must be a table with 'path' and "
                f"'values'")
        _check_keys(entry, {"path", "values", "scale"}, source, context)
        path = entry.get("path")
        if not isinstance(path, str) or not path:
            raise ScenarioError(
                f"{source}: {context}'path' must be a dotted config "
                f"path string")
        if path in seen_paths:
            raise ScenarioError(
                f"{source}: {context}duplicate axis path {path!r}")
        seen_paths.add(path)
        leaf_type = _resolve_leaf(path, source=source, context=context)
        values = entry.get("values")
        if not isinstance(values, (list, tuple)) or not values:
            raise ScenarioError(
                f"{source}: {context}{path!r}: 'values' must be a "
                f"non-empty array")
        scale = entry.get("scale", 1)
        if not isinstance(scale, (int, float)) \
                or isinstance(scale, bool):
            raise ScenarioError(
                f"{source}: {context}{path!r}: 'scale' must be a "
                f"number, got {scale!r}")
        axis = SweepAxis(path=path, values=tuple(values), scale=scale)
        for value in axis.scaled():
            _coerce_value(path, value, leaf_type, source=source,
                          context=context)
        axes.append(axis)
    return tuple(axes)


def _validate_quality(raw: Any, axes: Tuple[SweepAxis, ...],
                      source: str) -> Dict[str, QualityPreset]:
    if not isinstance(raw, Mapping):
        raise ScenarioError(
            f"{source}: 'quality' must be a table of presets")
    axis_paths = {axis.path for axis in axes}
    presets: Dict[str, QualityPreset] = {}
    for name, body in raw.items():
        context = f"[quality.{name}] "
        if not isinstance(body, Mapping):
            raise ScenarioError(
                f"{source}: {context}must be a table of overrides")
        body = dict(body)
        axis_values_raw = body.pop("axes", {})
        overrides = _validate_overrides(body, source, context)
        if not isinstance(axis_values_raw, Mapping):
            raise ScenarioError(
                f"{source}: {context}'axes' must be a table of "
                f"axis-path -> values")
        axis_values: Dict[str, Tuple] = {}
        for path, values in axis_values_raw.items():
            if path not in axis_paths:
                raise ScenarioError(
                    f"{source}: {context}axes override for {path!r} "
                    f"does not match any declared axis "
                    f"(axes: {sorted(axis_paths)})")
            if not isinstance(values, (list, tuple)) or not values:
                raise ScenarioError(
                    f"{source}: {context}{path!r}: values must be a "
                    f"non-empty array")
            axis_values[path] = tuple(values)
        presets[name] = QualityPreset(overrides=overrides,
                                      axis_values=axis_values)
    return presets


_DRIVER_ARGS = {
    "sweep": set(),
    "fleet": {"n_hosts", "seed", "shards", "backend", "batch_size"},
    "day": {"n_bins", "schedule_seed", "base_load", "swing",
            "antagonist_peak", "bin_duration", "warmup_per_bin"},
    "isolation": set(),
}


def _validate_driver_args(raw: Any, driver: str,
                          source: str) -> Dict[str, Any]:
    if not isinstance(raw, Mapping):
        raise ScenarioError(
            f"{source}: 'driver_args' must be a table")
    allowed = _DRIVER_ARGS[driver]
    for key in raw:
        if key not in allowed:
            raise ScenarioError(
                f"{source}: [driver_args] unknown key {key!r} for "
                f"driver {driver!r} (allowed: {sorted(allowed) or '∅'})")
    return dict(raw)


_SERIES_KINDS = ("metric", "model", "max_goodput")


def _validate_render(raw: Any, source: str) -> Optional[RenderSpec]:
    if raw is None:
        return None
    if not isinstance(raw, Mapping):
        raise ScenarioError(f"{source}: 'render' must be a table")
    _check_keys(raw, {"style", "panels", "x"}, source, "[render] ")
    style = raw.get("style", "table")
    if style not in ("panels", "scatter", "table"):
        raise ScenarioError(
            f"{source}: [render] 'style' must be panels, scatter, or "
            f"table, got {style!r}")
    x = raw.get("x")
    if x is not None and x not in PARAM_KEYS:
        raise ScenarioError(
            f"{source}: [render] 'x' {x!r} is not a run parameter "
            f"(parameters: {PARAM_KEYS})")
    panels: List[PanelSpec] = []
    for i, entry in enumerate(raw.get("panels", [])):
        context = f"[render] panels[{i}] "
        if not isinstance(entry, Mapping):
            raise ScenarioError(f"{source}: {context}must be a table")
        _check_keys(entry, {"name", "x", "x_label", "y_label",
                            "series"}, source, context)
        for key in ("name", "x", "x_label", "y_label"):
            if not isinstance(entry.get(key), str):
                raise ScenarioError(
                    f"{source}: {context}missing or non-string "
                    f"{key!r}")
        if entry["x"] not in PARAM_KEYS:
            raise ScenarioError(
                f"{source}: {context}'x' {entry['x']!r} is not a run "
                f"parameter (parameters: {PARAM_KEYS})")
        series: List[SeriesSpec] = []
        for j, sentry in enumerate(entry.get("series", [])):
            scontext = f"{context}series[{j}] "
            if not isinstance(sentry, Mapping):
                raise ScenarioError(
                    f"{source}: {scontext}must be a table")
            _check_keys(sentry, {"label", "kind", "metric", "where",
                                 "scale", "min_x", "config_path"},
                        source, scontext)
            label = sentry.get("label")
            if not isinstance(label, str) or not label:
                raise ScenarioError(
                    f"{source}: {scontext}'label' must be a non-empty "
                    f"string")
            kind = sentry.get("kind", "metric")
            if kind not in _SERIES_KINDS:
                raise ScenarioError(
                    f"{source}: {scontext}'kind' must be one of "
                    f"{_SERIES_KINDS}, got {kind!r}")
            metric = sentry.get("metric")
            if kind == "metric" and not isinstance(metric, str):
                raise ScenarioError(
                    f"{source}: {scontext}kind \"metric\" requires a "
                    f"'metric' name")
            where = sentry.get("where", {})
            if not isinstance(where, Mapping):
                raise ScenarioError(
                    f"{source}: {scontext}'where' must be a table")
            for key in where:
                if key not in PARAM_KEYS:
                    raise ScenarioError(
                        f"{source}: {scontext}where key {key!r} is "
                        f"not a run parameter (parameters: "
                        f"{PARAM_KEYS})")
            config_path = sentry.get("config_path")
            if config_path is not None:
                _resolve_leaf(config_path, source=source,
                              context=scontext)
            series.append(SeriesSpec(
                label=label, kind=kind, metric=metric,
                where=dict(where),
                scale=sentry.get("scale", 1),
                min_x=sentry.get("min_x"),
                config_path=config_path))
        panels.append(PanelSpec(
            name=entry["name"], x=entry["x"],
            x_label=entry["x_label"], y_label=entry["y_label"],
            series=tuple(series)))
    return RenderSpec(style=style, panels=tuple(panels), x=x)


# ---------------------------------------------------------------------------
# Execution (the single path every entry point funnels through)
# ---------------------------------------------------------------------------

def run_configs(
    configs: Iterable[ExperimentConfig],
    progress: Optional[Callable[[int, ExperimentResult], None]] = None,
    snapshots_out: Optional[list] = None,
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
    events: Optional[Callable[[dict], None]] = None,
    failures: str = "raise",
) -> ResultTable:
    """Run every config and collect results, optionally in parallel.

    This is the one execution path behind ``run_sweep``, the
    ``sweep_*`` helpers, every figure, and ``repro scenario run``: the
    parallel executor (``workers=``), per-run ``timeout`` →
    :class:`~repro.core.results.FailedRun` rows, the on-disk result
    ``cache``, and the telemetry event stream (``events=`` /
    ``failures=``, see :func:`~repro.core.parallel.run_many`) all
    apply uniformly.
    """
    outcomes = run_many(configs, workers=workers, timeout=timeout,
                        want_snapshots=snapshots_out is not None,
                        cache=cache, progress=progress, events=events,
                        failures=failures)
    table = ResultTable()
    for outcome in outcomes:
        table.append(outcome.result)
        if snapshots_out is not None:
            snapshots_out.append(outcome.snapshot)
    return table


# ---------------------------------------------------------------------------
# Bundled and on-disk spec discovery
# ---------------------------------------------------------------------------

_SPEC_SUFFIXES = (".toml", ".json")


def load_scenario_file(path: str | Path) -> ScenarioSpec:
    """Load one spec file (TOML or JSON by suffix)."""
    return ScenarioSpec.from_file(path)


def _collect(entries, specs: Dict[str, ScenarioSpec],
             origin: Dict[str, str]) -> None:
    for entry in entries:
        spec = ScenarioSpec.from_text(
            entry.read_text(), source=entry.name,
            fmt=entry.name.rsplit(".", 1)[-1])
        if spec.name in specs:
            raise ScenarioError(
                f"duplicate scenario name {spec.name!r}: defined in "
                f"both {origin[spec.name]} and {entry.name}")
        specs[spec.name] = spec
        origin[spec.name] = entry.name


def load_scenario_dir(directory: str | Path) -> Dict[str, ScenarioSpec]:
    """All specs in a directory, keyed by scenario name.

    Two files declaring the same name is an error — names are the CLI
    handle, so they must be unambiguous.
    """
    directory = Path(directory)
    entries = sorted(p for p in directory.iterdir()
                     if p.suffix in _SPEC_SUFFIXES)
    specs: Dict[str, ScenarioSpec] = {}
    _collect(entries, specs, {})
    return specs


def bundled_scenarios() -> Dict[str, ScenarioSpec]:
    """The spec files shipped inside ``repro.scenarios``."""
    from importlib import resources

    root = resources.files("repro.scenarios")
    entries = sorted(
        (e for e in root.iterdir()
         if e.name.endswith(_SPEC_SUFFIXES)),
        key=lambda e: e.name)
    specs: Dict[str, ScenarioSpec] = {}
    _collect(entries, specs, {})
    return specs


def load_bundled(name: str) -> ScenarioSpec:
    """One bundled spec by scenario name."""
    specs = bundled_scenarios()
    try:
        return specs[name]
    except KeyError:
        raise ScenarioError(
            f"no bundled scenario named {name!r} "
            f"(bundled: {sorted(specs)})") from None


def find_scenario(name_or_path: str) -> ScenarioSpec:
    """Resolve a CLI argument: a spec file path, else a bundled name."""
    path = Path(name_or_path)
    if path.suffix in _SPEC_SUFFIXES and path.exists():
        return load_scenario_file(path)
    specs = bundled_scenarios()
    if name_or_path in specs:
        return specs[name_or_path]
    raise ScenarioError(
        f"no scenario named {name_or_path!r} and no such spec file; "
        f"bundled scenarios: {sorted(specs)}")
