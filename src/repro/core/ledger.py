"""Durable JSONL run ledger: what happened during a sweep, on disk.

Every sweep/fleet invocation with telemetry enabled appends its
lifecycle event stream (the dicts emitted by
:func:`repro.core.parallel.run_many`) to one append-only JSONL file —
one file per invocation, one event per line, flushed per line so a
crashed or killed run still leaves a readable prefix.  The ledger is
the durable half of the telemetry plane: ``repro runs show``
reconstructs a sweep's summary from the file alone, with no result
table in sight, by folding rows through
:class:`~repro.obs.telemetry.RunAggregate`.

Layout: ``$REPRO_LEDGER_DIR`` if set, else ``<cache dir>/ledger``
(which tests already isolate via ``REPRO_CACHE_DIR``).  File names are
``<label>-<utc timestamp>-<pid>.jsonl``; ``resolve_run("latest")``
picks the newest by modification time.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.core.cache import default_cache_dir
from repro.obs.telemetry import RunAggregate

__all__ = [
    "LedgerWriter",
    "RunInfo",
    "default_ledger_dir",
    "iter_run",
    "list_runs",
    "read_run",
    "resolve_run",
    "summarize_run",
]

LEDGER_VERSION = 1


def default_ledger_dir() -> Path:
    """``$REPRO_LEDGER_DIR`` > ``<default cache dir>/ledger``."""
    env = os.environ.get("REPRO_LEDGER_DIR")
    if env:
        return Path(env)
    return default_cache_dir() / "ledger"


class LedgerWriter:
    """Append-only JSONL sink for one invocation's event stream.

    Usable directly as the ``events=`` callable of ``run_many`` (it is
    callable), or composed with other sinks.  ``close(ok=...)`` writes
    the terminal ``end`` row; the context-manager form closes with
    ``ok=False`` on an exception, so an aborted sweep is visibly
    unfinished in the ledger.
    """

    def __init__(self, directory: str | Path | None = None,
                 label: str = "run",
                 meta: Optional[Dict] = None):
        self.directory = Path(directory) if directory is not None \
            else default_ledger_dir()
        self.directory.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        base = f"{label}-{stamp}-{os.getpid()}"
        path = self.directory / f"{base}.jsonl"
        serial = 1
        while path.exists():
            serial += 1
            path = self.directory / f"{base}-{serial}.jsonl"
        self.path = path
        self.run_id = path.stem
        self.label = label
        self.rows = 0
        self._fh = open(path, "w")
        self._closed = False
        begin = {"ev": "begin", "v": LEDGER_VERSION,
                 "run_id": self.run_id, "label": label,
                 "ts": time.time()}
        if meta:
            begin["meta"] = meta
        self.append(begin)

    def append(self, event: Dict) -> None:
        if self._closed:
            return
        if "ts" not in event:
            event = {**event, "ts": time.time()}
        self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._fh.flush()
        self.rows += 1

    #: ``run_many(events=ledger)`` works: the writer *is* a sink.
    __call__ = append

    def close(self, ok: bool = True) -> None:
        if self._closed:
            return
        self.append({"ev": "end", "ok": ok, "rows": self.rows,
                     "ts": time.time()})
        self._closed = True
        self._fh.close()

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(ok=exc_type is None)


# -- reading ---------------------------------------------------------------


@dataclass(frozen=True)
class RunInfo:
    """One ledger file's identity and coarse shape."""

    run_id: str
    path: Path
    label: str
    started_ts: Optional[float]
    rows: int
    finished: bool


def iter_run(path: str | Path) -> Iterator[Dict]:
    """Yield parsed rows; raises ``ValueError`` naming a corrupt line."""
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: corrupt ledger row: {exc}") from exc


def read_run(path: str | Path) -> List[Dict]:
    return list(iter_run(path))


def _info(path: Path) -> RunInfo:
    label = ""
    started = None
    rows = 0
    finished = False
    for event in iter_run(path):
        rows += 1
        kind = event.get("ev")
        if kind == "begin":
            label = event.get("label", "")
            started = event.get("ts")
        elif kind == "end":
            finished = True
    return RunInfo(run_id=path.stem, path=path, label=label,
                   started_ts=started, rows=rows, finished=finished)


def list_runs(directory: str | Path | None = None) -> List[RunInfo]:
    """Every ledger in ``directory``, oldest first (mtime order)."""
    base = Path(directory) if directory is not None \
        else default_ledger_dir()
    if not base.is_dir():
        return []
    paths = sorted(base.glob("*.jsonl"),
                   key=lambda p: (p.stat().st_mtime, p.name))
    return [_info(path) for path in paths]


def resolve_run(token: str = "latest",
                directory: str | Path | None = None) -> Path:
    """Map a CLI run token to a ledger path.

    ``latest`` (or empty) picks the newest file; anything else must be
    a run id, a unique run-id prefix, or a literal path.
    """
    base = Path(directory) if directory is not None \
        else default_ledger_dir()
    literal = Path(token)
    if literal.is_file():
        return literal
    runs = list_runs(base)
    if not runs:
        raise FileNotFoundError(f"no ledgers under {base}")
    if token in ("", "latest"):
        return runs[-1].path
    matches = [info for info in runs if info.run_id == token]
    if not matches:
        matches = [info for info in runs
                   if info.run_id.startswith(token)]
    if not matches:
        raise FileNotFoundError(
            f"no ledger matching {token!r} under {base}")
    if len(matches) > 1:
        names = ", ".join(info.run_id for info in matches)
        raise ValueError(f"ambiguous run {token!r}: {names}")
    return matches[0].path


def summarize_run(path: str | Path,
                  alpha: float = 0.01) -> RunAggregate:
    """Fold one ledger file into a :class:`RunAggregate` — the whole
    point of the ledger: a sweep summary with no result table needed."""
    return RunAggregate(alpha=alpha).fold_all(iter_run(path))
