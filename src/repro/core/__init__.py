"""The paper's contribution as a library: configuration, calibration,
analytical models, the experiment runner, sweeps, and metrics."""

from repro.core.config import (
    CpuConfig,
    DdioConfig,
    ExperimentConfig,
    HostConfig,
    IommuConfig,
    LinkConfig,
    MemoryConfig,
    NicConfig,
    PcieConfig,
    SimConfig,
    SwiftConfig,
    WorkloadConfig,
)

__all__ = [
    "CpuConfig",
    "DdioConfig",
    "ExperimentConfig",
    "HostConfig",
    "IommuConfig",
    "LinkConfig",
    "MemoryConfig",
    "NicConfig",
    "PcieConfig",
    "SimConfig",
    "SwiftConfig",
    "WorkloadConfig",
]
