"""Analytical models of host interconnect throughput.

The paper's central quantitative claim (§3.1) is a Little's-law bound:
PCIe credits allow at most :math:`C` bytes in flight, each DMA takes
:math:`T_{base} + M \\cdot T_{miss}`, so NIC-to-CPU throughput is
bounded by :math:`C / (T_{base} + M \\cdot T_{miss})`.  The "Modeled App
Throughput" line of Fig. 3 is exactly this bound evaluated with the
measured IOTLB miss rate.  This module implements that model plus the
working-set model that predicts the miss rate, and a combined
throughput predictor covering the CPU-bound region as well.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ExperimentConfig, HostConfig, MemoryConfig
from repro.host.addressing import PAGE_2M, PAGE_4K
from repro.host.memory import queue_delay_for

__all__ = [
    "ThroughputModel",
    "dma_base_latency",
    "iotlb_working_set",
    "littles_law_throughput_bps",
    "modeled_app_throughput_bps",
    "predicted_miss_ratio",
]


def littles_law_throughput_bps(inflight_bytes: int, latency: float) -> float:
    """Throughput bound for ``inflight_bytes`` of credits and a per-DMA
    ``latency`` (seconds): :math:`C \\cdot 8 / T` bits/s."""
    if latency <= 0:
        raise ValueError(f"latency must be positive, got {latency}")
    if inflight_bytes <= 0:
        raise ValueError(f"inflight must be positive, got {inflight_bytes}")
    return inflight_bytes * 8 / latency


def dma_base_latency(config: HostConfig, wire_bytes: int,
                     memory_utilization: float = 0.15) -> float:
    """Per-DMA latency with zero IOTLB misses (:math:`T_{base}`).

    Fixed PCIe/root-complex overhead + serialization at PCIe goodput +
    one (possibly contended) memory write.
    """
    serialization = wire_bytes * 8 / config.pcie.goodput_bps
    mem = config.memory.idle_latency + queue_delay_for(
        memory_utilization, config.memory)
    return config.pcie.dma_fixed_latency + serialization + mem


def miss_penalty(config: MemoryConfig, memory_utilization: float,
                 walk_accesses: float = 1.0) -> float:
    """Latency added per IOTLB miss (:math:`T_{miss}`)."""
    per_access = config.walk_base_latency + (
        config.walk_contention_fraction
        * queue_delay_for(memory_utilization, config)
    )
    return walk_accesses * per_access


@dataclass(frozen=True)
class WorkingSet:
    """IOMMU footprint of the configured receive layout."""

    pages_per_thread: int
    total_pages: int
    accesses_per_packet: int


def iotlb_working_set(config: HostConfig) -> WorkingSet:
    """The *active* IOMMU working set for the configured host.

    Counts the pages the NIC actually touches in steady state: the data
    pool, connection-state pool, ACK staging, and one hot page per ring.
    This is what determines whether the IOTLB thrashes, and predicts
    the paper's Fig. 3 knee (8 threads × 16 pages = 128 entries).
    """
    data_page = PAGE_2M if config.hugepages else PAGE_4K
    data_pages = -(-config.rx_region_bytes // data_page)
    nic = config.nic
    hot_ring_pages = 4  # rx desc, rx cq, tx desc, tx cq (one hot each)
    per_thread = (data_pages + nic.conn_state_pages
                  + nic.ack_staging_pages + hot_ring_pages)
    payload_pages = 1 if config.hugepages else 2
    accesses = payload_pages + 2 + 2 + 3  # payload, conn×2, rx×2, tx×3
    return WorkingSet(
        pages_per_thread=per_thread,
        total_pages=per_thread * config.cpu.cores,
        accesses_per_packet=accesses,
    )


def predicted_miss_ratio(config: HostConfig) -> float:
    """First-order IOTLB miss-ratio estimate: for an LRU cache under a
    working set ``W`` larger than its capacity ``K``, uniform reuse
    gives a miss ratio of ``1 - K/W`` (zero when everything fits)."""
    ws = iotlb_working_set(config)
    capacity = config.iommu.iotlb_entries
    if ws.total_pages <= capacity:
        return 0.0
    return 1.0 - capacity / ws.total_pages


class ThroughputModel:
    """Combined predictor for the paper's operating points.

    ``interconnect_bound`` is the Fig. 3 "Modeled App Throughput" line
    (fed with a *measured* miss rate); ``predict`` composes the CPU
    bound, line rate, PCIe goodput, and the interconnect bound.
    """

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self.wire_bytes = config.workload.wire_bytes_per_packet
        self.payload_fraction = (
            config.workload.mtu_payload / self.wire_bytes
        )

    def interconnect_bound_bps(
        self,
        misses_per_packet: float,
        memory_utilization: float = 0.15,
        walk_accesses: float = 1.0,
    ) -> float:
        """Little's-law app-level bound given a miss rate (bits/s)."""
        host = self.config.host
        t_base = dma_base_latency(host, self.wire_bytes,
                                  memory_utilization)
        t_total = t_base + misses_per_packet * miss_penalty(
            host.memory, memory_utilization, walk_accesses)
        wire_bps = littles_law_throughput_bps(
            host.pcie.max_inflight_bytes, t_total)
        return wire_bps * self.payload_fraction

    def cpu_bound_bps(self) -> float:
        """Receiver-processing bound (the linear region of Fig. 3)."""
        cpu = self.config.host.cpu
        return cpu.cores * cpu.core_rate_bps

    def line_rate_bound_bps(self) -> float:
        """Max app goodput through the access link."""
        return self.config.link.rate_bps * self.payload_fraction

    def pcie_bound_bps(self) -> float:
        """Max app goodput through the PCIe link."""
        return self.config.host.pcie.goodput_bps * self.payload_fraction

    def predict(self, misses_per_packet: float = 0.0,
                memory_utilization: float = 0.15) -> float:
        """App-level throughput prediction (bits/s): min of all bounds."""
        return min(
            self.cpu_bound_bps(),
            self.line_rate_bound_bps(),
            self.pcie_bound_bps(),
            self.interconnect_bound_bps(misses_per_packet,
                                        memory_utilization),
        )


def modeled_app_throughput_bps(
    config: ExperimentConfig,
    misses_per_packet: float,
    memory_utilization: float = 0.15,
) -> float:
    """Convenience wrapper: the Fig. 3 model line for one data point."""
    return ThroughputModel(config).predict(
        misses_per_packet, memory_utilization)
