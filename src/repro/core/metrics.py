"""Metric helpers: percentiles, summaries, and time-series probing."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.sim.engine import Simulator

__all__ = ["percentile", "summarize", "Summary", "TimeSeriesRecorder"]


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100) by linear interpolation.

    Raises ``ValueError`` on an empty input — silent zeros hide broken
    experiments.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * p / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics; empty inputs yield an all-zero summary."""
    if not values:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=len(values),
        mean=sum(values) / len(values),
        p50=percentile(values, 50),
        p90=percentile(values, 90),
        p99=percentile(values, 99),
        maximum=max(values),
    )


class TimeSeriesRecorder:
    """Samples a probe callable at a fixed simulated interval.

    ``probe()`` returns a dict of floats; each sample is stored with its
    timestamp.  Used for convergence plots and debugging.

    Ticks are scheduled at *absolute* times (``start + k * interval``)
    rather than by chaining relative delays, so floating-point error
    cannot accumulate into scheduling drift over long runs.
    """

    def __init__(self, sim: Simulator, interval: float,
                 probe: Callable[[], Dict[str, float]]):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.probe = probe
        self.times: List[float] = []
        self.samples: List[Dict[str, float]] = []
        self._running = False
        self._epoch = 0.0
        self._tick_index = 0

    def start(self) -> None:
        if not self._running:
            self._running = True
            self._epoch = self.sim.now
            self._tick_index = 0
            self.sim.at(self._next_tick_time(), self._tick)

    def stop(self) -> None:
        """Stop sampling.  The already-scheduled tick is disarmed: it
        fires once as a no-op (the engine has no event removal) and
        does not record or reschedule, so the heap drains."""
        self._running = False

    def _next_tick_time(self) -> float:
        return self._epoch + (self._tick_index + 1) * self.interval

    def _tick(self) -> None:
        if not self._running:
            return
        self._tick_index += 1
        self.times.append(self.sim.now)
        self.samples.append(self.probe())
        self.sim.at(self._next_tick_time(), self._tick)

    def series(self, key: str) -> List[float]:
        return [sample[key] for sample in self.samples]

    def __len__(self) -> int:
        return len(self.samples)
