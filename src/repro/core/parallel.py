"""Parallel experiment execution.

Every paper figure is a sweep of 8–20 *independent* ``run_experiment``
calls, so sweeps are embarrassingly parallel.  This module fans the
runs out to a :class:`~concurrent.futures.ProcessPoolExecutor` while
keeping the output bit-identical to a serial run:

- each run derives **all** randomness from its own ``config.sim.seed``
  (a fresh ``Simulator`` + ``RngRegistry`` per run, no module-level
  RNG), so results do not depend on which process executes them;
- results are reassembled in **submission order**, not completion
  order, so the :class:`~repro.core.results.ResultTable` layout matches
  the serial runner row for row;
- pickling is exact for floats, so worker → parent transport does not
  perturb a single bit.

Failure semantics: a worker exception aborts the sweep with a
:class:`SweepRunError` carrying the offending config — unless
``failures="keep"``, which instead yields a structured
:class:`~repro.core.results.FailedRun` (exception class + truncated
traceback attached) in the table.  A per-run *timeout* always yields a
``FailedRun`` placeholder, so one pathological operating point cannot
sink a 20-run figure sweep.

Live telemetry: pass ``events`` (any callable taking a dict) and the
runner streams lifecycle events — ``plan``, ``queued``, ``cached``,
``started``, ``finished``, ``failed`` — as they happen.  ``started``
originates *inside* the worker process and travels over a managed
multiprocessing queue that exists only while a sink is attached; with
``events=None`` (the default) no queue, no manager process, and no
per-run stats collection happen at all.  Event dicts are exactly the
rows of the JSONL run ledger (:mod:`repro.core.ledger`) and the input
to :class:`~repro.obs.telemetry.RunAggregate`.

Serial execution (``workers=1``) goes through the same single-run
worker function as the pool path — one code shape, one set of
semantics — and is the in-process fallback wherever a pool is not
worth its fork cost.

Streaming: :func:`run_stream` is the constant-memory sibling of
:func:`run_many`.  It consumes its config iterable *lazily*, keeps at
most a bounded window of runs in flight, and yields each
:class:`RunOutcome` in submission order as soon as its turn completes
— no config list, no result list, no O(n) parent state.  It is the
execution engine of the million-host fleet pipeline
(:meth:`repro.workload.fleet.FleetSampler.run_aggregate`), where the
parent folds every outcome into a mergeable aggregate and drops it.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.cache import ResultCache
from repro.core.config import ExperimentConfig
from repro.core.experiment import run_experiment
from repro.core.results import ExperimentResult, FailedRun

__all__ = [
    "RunOutcome",
    "SweepRunError",
    "map_stream",
    "resolve_workers",
    "run_many",
    "run_stream",
]

Workers = Union[int, str, None]
EventSink = Callable[[Dict], None]

#: result.metrics keys copied into ``finished``/``cached`` events for
#: live sketches — the headline observables of the paper.
_HEADLINE_METRICS = ("app_throughput_gbps", "drop_rate",
                     "link_utilization")


class SweepRunError(RuntimeError):
    """A sweep run raised: carries the offending config and its index."""

    def __init__(self, index: int, config: ExperimentConfig,
                 message: str, worker_traceback: str = ""):
        super().__init__(
            f"sweep run #{index} failed: {message} "
            f"(config: {config.describe()})")
        self.index = index
        self.config = config
        self.worker_traceback = worker_traceback


@dataclass(frozen=True)
class RunOutcome:
    """One finished run: its table position, result, and provenance."""

    index: int
    result: ExperimentResult
    #: Full metrics-registry snapshot, when requested (or cached).
    snapshot: Optional[dict]
    #: True when the result came from the on-disk cache, not a run.
    cached: bool = False


def resolve_workers(workers: Workers) -> int:
    """Normalize a ``workers`` argument to a concrete process count.

    ``None``/``0``/``1`` mean serial; ``"auto"`` resolves to
    ``os.cpu_count() - 1`` (never below 1) so a sweep leaves one core
    for the parent and the rest of the machine.
    """
    if workers is None or workers == 0:
        return 1
    if workers == "auto":
        return max(1, (os.cpu_count() or 2) - 1)
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1 or 'auto', got {workers!r}")
    return count


class _RunTimeout(Exception):
    """Internal: raised by the SIGALRM handler inside a worker."""


def _raise_timeout(signum, frame):
    raise _RunTimeout()


#: Worker-side event channel: a managed queue's ``put``, installed by
#: the pool initializer when (and only when) telemetry is on.  ``None``
#: means silent — the default, and the entire cost when disabled.
_EVENT_SINK: Optional[EventSink] = None


def _init_worker(queue) -> None:
    global _EVENT_SINK
    _EVENT_SINK = queue.put


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:
        return None


def _headline(result: ExperimentResult) -> Dict[str, float]:
    return {key: result.metrics[key] for key in _HEADLINE_METRICS
            if key in result.metrics}


def _execute(index: int, config: ExperimentConfig, want_snapshot: bool,
             timeout: Optional[float],
             emit: Optional[EventSink] = None) -> Tuple[int, tuple]:
    """Run one experiment (worker side — also the serial code path).

    Returns ``(index, payload)`` where payload is one of
    ``("ok", result, snapshot, stats)``,
    ``("timeout", failed_run, stats)``, or
    ``("error", message, traceback_text, exception_type, stats)``.
    Exceptions never escape: they are serialized so the parent can
    attach the config.  ``stats`` is ``None`` unless an event sink is
    attached (serial: ``emit``; pool: the initializer-installed queue)
    — telemetry off means zero extra work here.
    """
    sink = emit if emit is not None else _EVENT_SINK
    if sink is not None:
        sink({"ev": "started", "index": index, "pid": os.getpid(),
              "ts": time.time()})
    start = time.perf_counter()

    def stats_for(handles: list) -> Optional[dict]:
        if sink is None:
            return None
        stats = {"wall_s": time.perf_counter() - start,
                 "pid": os.getpid(), "ts": time.time(),
                 "peak_rss_kb": _peak_rss_kb()}
        if handles:
            stats["sim_s"] = handles[0].sim.now
            stats["engine_events"] = handles[0].sim.events_dispatched
        return stats

    # Enforce the per-run timeout with a real interval timer where the
    # platform has one (ProcessPoolExecutor workers are single-threaded
    # main threads, so SIGALRM is safe); elsewhere fall back to a
    # post-hoc wall-clock check.
    arm = timeout is not None and hasattr(signal, "SIGALRM")
    handles: list = []
    try:
        if arm:
            previous = signal.signal(signal.SIGALRM, _raise_timeout)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            result = run_experiment(config, handle_out=handles)
            snapshot = (handles[0].metrics_snapshot()
                        if want_snapshot else None)
        finally:
            if arm:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, previous)
    except _RunTimeout:
        elapsed = time.perf_counter() - start
        failed = FailedRun.from_config(
            config, kind="timeout",
            error=f"run exceeded {timeout:g}s timeout",
            elapsed_s=elapsed)
        return index, ("timeout", failed, stats_for(handles))
    except Exception as exc:  # serialized for the parent to attach config
        return index, ("error", repr(exc), traceback.format_exc(),
                       type(exc).__name__, stats_for(handles))
    elapsed = time.perf_counter() - start
    if timeout is not None and not arm and elapsed > timeout:
        failed = FailedRun.from_config(
            config, kind="timeout",
            error=f"run exceeded {timeout:g}s timeout", elapsed_s=elapsed)
        return index, ("timeout", failed, stats_for(handles))
    return index, ("ok", result, snapshot, stats_for(handles))


def _settle(
    index: int,
    config: ExperimentConfig,
    payload: tuple,
    events: Optional[EventSink],
    failures: str,
    *,
    cache: Optional[ResultCache] = None,
    want_snapshots: bool = False,
) -> RunOutcome:
    """Convert a worker payload into a :class:`RunOutcome`.

    Shared by :func:`run_many` and :func:`run_stream`: emits the
    ``finished``/``failed`` lifecycle event, stores successes in the
    cache, and — under ``failures="raise"`` — raises
    :class:`SweepRunError` with the offending config attached.
    """
    kind = payload[0]
    if kind == "error":
        _, message, tb_text, exc_type, stats = payload
        if events is not None:
            events({"ev": "failed", "index": index,
                    "failure_kind": "error", "error": message,
                    "exception_type": exc_type,
                    "traceback_tail":
                        tb_text[-FailedRun.TRACEBACK_LIMIT:],
                    **(stats or {"ts": time.time()})})
        if failures == "raise":
            raise SweepRunError(index, config, message,
                                worker_traceback=tb_text)
        failed = FailedRun.from_config(
            config, kind="error", error=message,
            elapsed_s=(stats or {}).get("wall_s", 0.0),
            exception_type=exc_type, traceback_text=tb_text)
        return RunOutcome(index=index, result=failed, snapshot=None)
    if kind == "timeout":
        _, failed, stats = payload
        if events is not None:
            events({"ev": "failed", "index": index,
                    "failure_kind": "timeout", "error": failed.error,
                    **(stats or {"ts": time.time()})})
        return RunOutcome(index=index, result=failed, snapshot=None)
    _, result, snapshot, stats = payload
    if cache is not None:
        cache.put(config, result, snapshot)
    if events is not None:
        events({"ev": "finished", "index": index,
                "params": config.describe(),
                "metrics": _headline(result),
                **(stats or {"ts": time.time()})})
    return RunOutcome(index=index, result=result,
                      snapshot=snapshot if want_snapshots else None)


def run_many(
    configs: Iterable[ExperimentConfig],
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    want_snapshots: bool = False,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, ExperimentResult], None]] = None,
    events: Optional[EventSink] = None,
    failures: str = "raise",
) -> List[RunOutcome]:
    """Run every config and return outcomes in input order.

    ``progress`` is invoked once per finished run with the run's table
    index and result — in completion order under a pool, which is table
    order only for serial execution.

    ``events`` receives lifecycle event dicts (see module docstring) as
    they happen; ``None`` disables all telemetry work.  ``failures``
    selects crash semantics: ``"raise"`` aborts the sweep with
    :class:`SweepRunError`; ``"keep"`` records a structured
    :class:`FailedRun` row and keeps sweeping.
    """
    if failures not in ("raise", "keep"):
        raise ValueError(
            f"failures must be 'raise' or 'keep', got {failures!r}")
    configs = list(configs)
    outcomes: List[Optional[RunOutcome]] = [None] * len(configs)

    pending: List[int] = []
    cached_hits: List[Tuple[int, RunOutcome]] = []
    for index, config in enumerate(configs):
        hit = (cache.get(config, want_snapshot=want_snapshots)
               if cache is not None else None)
        if hit is not None:
            outcomes[index] = RunOutcome(
                index=index, result=hit.result,
                snapshot=hit.snapshot if want_snapshots else None,
                cached=True)
            cached_hits.append((index, outcomes[index]))
        else:
            pending.append(index)

    if events is not None:
        events({"ev": "plan", "total": len(configs),
                "pending": len(pending), "cached": len(cached_hits),
                "ts": time.time()})
        for index in pending:
            events({"ev": "queued", "index": index,
                    "params": configs[index].describe(),
                    "ts": time.time()})
    for index, outcome in cached_hits:
        if events is not None:
            events({"ev": "cached", "index": index,
                    "params": configs[index].describe(),
                    "metrics": _headline(outcome.result),
                    "ts": time.time()})
        if progress is not None:
            progress(index, outcome.result)

    # Snapshots are computed in-worker whenever they are wanted *or*
    # cached, so a later `--metrics-out` rerun can hit the same entry.
    want = want_snapshots or cache is not None

    def finalize(index: int, payload: tuple) -> None:
        outcomes[index] = _settle(index, configs[index], payload,
                                  events, failures, cache=cache,
                                  want_snapshots=want_snapshots)
        if progress is not None:
            progress(index, outcomes[index].result)

    n_workers = min(resolve_workers(workers), max(1, len(pending)))
    if n_workers == 1:
        for index in pending:
            _, payload = _execute(index, configs[index], want, timeout,
                                  emit=events)
            finalize(index, payload)
    elif pending:
        _run_pool(configs, pending, want, timeout, n_workers, events,
                  finalize)

    return outcomes  # type: ignore[return-value]


def _run_pool(configs, pending, want, timeout, n_workers,
              events: Optional[EventSink], finalize) -> None:
    """Fan ``pending`` out to a process pool, streaming worker events.

    When ``events`` is set, a manager-hosted queue is handed to every
    worker via the pool initializer; the parent drains it between
    future completions (and once more at the end), so in-worker
    ``started`` events interleave with parent-side ``finished`` ones.
    Ordering across processes is best-effort — consumers must not
    assume ``started`` precedes its ``finished`` row.
    """
    manager = None
    queue = None
    pool_kwargs: dict = {}
    try:
        if events is not None:
            manager = multiprocessing.Manager()
            queue = manager.Queue()
            pool_kwargs = {"initializer": _init_worker,
                           "initargs": (queue,)}

        def drain() -> None:
            if queue is None:
                return
            while not queue.empty():
                events(queue.get_nowait())

        with ProcessPoolExecutor(max_workers=n_workers,
                                 **pool_kwargs) as pool:
            futures = {
                pool.submit(_execute, index, configs[index], want, timeout)
                for index in pending
            }
            try:
                while futures:
                    if queue is not None:
                        done, futures = wait(futures, timeout=0.2,
                                             return_when=FIRST_COMPLETED)
                        drain()
                    else:
                        done, futures = wait(futures,
                                             return_when=FIRST_COMPLETED)
                    for future in done:
                        index, payload = future.result()
                        finalize(index, payload)
            except BaseException:
                # A failed run (or Ctrl-C) aborts the sweep: drop the
                # queued work so shutdown does not run it to completion.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        drain()
    finally:
        if manager is not None:
            manager.shutdown()


def run_stream(
    configs: Iterable[ExperimentConfig],
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    events: Optional[EventSink] = None,
    failures: str = "keep",
    window: Optional[int] = None,
    start_index: int = 0,
) -> Iterator[RunOutcome]:
    """Stream outcomes for a lazily-drawn config sequence.

    The constant-memory sibling of :func:`run_many`: ``configs`` is
    consumed incrementally (never materialized), at most ``window``
    runs are in flight or buffered at any moment (default
    ``2 * workers``), and outcomes are yielded **in submission order**
    — the reorder buffer is bounded by the window, so parent memory is
    independent of the stream length.  Outcome indices count from
    ``start_index`` (a sharded caller passes its shard's global
    offset, so ledger rows carry fleet-wide host indices).

    ``failures`` defaults to ``"keep"`` — one pathological host in a
    million-host stream yields a structured :class:`FailedRun` outcome
    instead of sinking the run; pass ``"raise"`` for
    :func:`run_many`-style abort semantics.  There is no cache or
    snapshot plumbing here: a streaming consumer folds each outcome
    and drops it, so memoizing per-run payloads would defeat the
    point.

    Back-pressure note: submission pauses while the consumer holds an
    outcome, so a slow fold slows the pool instead of letting results
    pile up in the parent.
    """
    if failures not in ("raise", "keep"):
        raise ValueError(
            f"failures must be 'raise' or 'keep', got {failures!r}")
    numbered = iter(enumerate(configs, start=start_index))
    n_workers = resolve_workers(workers)

    if n_workers == 1:
        for index, config in numbered:
            _, payload = _execute(index, config, False, timeout,
                                  emit=events)
            yield _settle(index, config, payload, events, failures)
        return

    if window is None:
        window = 2 * n_workers
    window = max(int(window), n_workers)

    manager = None
    queue = None
    pool_kwargs: dict = {}
    try:
        if events is not None:
            manager = multiprocessing.Manager()
            queue = manager.Queue()
            pool_kwargs = {"initializer": _init_worker,
                           "initargs": (queue,)}

        def drain() -> None:
            if queue is None:
                return
            while not queue.empty():
                events(queue.get_nowait())

        with ProcessPoolExecutor(max_workers=n_workers,
                                 **pool_kwargs) as pool:
            in_flight: Dict = {}       # future -> (index, config)
            ready: Dict[int, tuple] = {}   # index -> (config, payload)
            next_yield = start_index
            exhausted = False

            def top_up() -> None:
                nonlocal exhausted
                while (not exhausted
                       and len(in_flight) + len(ready) < window):
                    try:
                        index, config = next(numbered)
                    except StopIteration:
                        exhausted = True
                        return
                    future = pool.submit(_execute, index, config,
                                         False, timeout)
                    in_flight[future] = (index, config)

            try:
                top_up()
                while in_flight or ready:
                    if in_flight:
                        if queue is not None:
                            done, _ = wait(in_flight, timeout=0.2,
                                           return_when=FIRST_COMPLETED)
                            drain()
                        else:
                            done, _ = wait(in_flight,
                                           return_when=FIRST_COMPLETED)
                        for future in done:
                            index, config = in_flight.pop(future)
                            _, payload = future.result()
                            ready[index] = (config, payload)
                    while next_yield in ready:
                        config, payload = ready.pop(next_yield)
                        outcome = _settle(next_yield, config, payload,
                                          events, failures)
                        next_yield += 1
                        top_up()
                        yield outcome
                    top_up()
            except BaseException:
                # Consumer abandoned the stream (GeneratorExit), a
                # run raised, or Ctrl-C: drop queued work so shutdown
                # does not run the remaining million hosts.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        drain()
    finally:
        if manager is not None:
            manager.shutdown()


def map_stream(
    fn: Callable,
    tasks: Iterable[tuple],
    *,
    workers: Workers = None,
    window: Optional[int] = None,
) -> Iterator[Tuple[int, object]]:
    """Stream ``fn(*args)`` results over a lazy task sequence, in order.

    The task-shaped sibling of :func:`run_stream`, for callers whose
    unit of work is *not* one experiment config — e.g. the batched
    fleet backend, whose tasks are whole index ranges.  ``fn`` must be
    a module-level (picklable) callable and ``tasks`` an iterable of
    argument tuples; yields ``(position, fn(*args))`` in submission
    order with at most ``window`` tasks in flight or buffered
    (default ``2 * workers``), so parent memory is bounded by the
    window, never the stream length.

    Failure semantics are the caller's: an exception raised by ``fn``
    propagates (aborting the pool and cancelling queued tasks), so a
    fault-tolerant caller catches inside ``fn`` and returns a
    structured failure value instead.
    """
    numbered = iter(enumerate(tasks))
    n_workers = resolve_workers(workers)

    if n_workers == 1:
        for position, args in numbered:
            yield position, fn(*args)
        return

    if window is None:
        window = 2 * n_workers
    window = max(int(window), n_workers)

    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        in_flight: Dict = {}          # future -> position
        ready: Dict[int, object] = {}  # position -> result
        next_yield = 0
        exhausted = False

        def top_up() -> None:
            nonlocal exhausted
            while (not exhausted
                   and len(in_flight) + len(ready) < window):
                try:
                    position, args = next(numbered)
                except StopIteration:
                    exhausted = True
                    return
                in_flight[pool.submit(fn, *args)] = position

        try:
            top_up()
            while in_flight or ready:
                if in_flight:
                    done, _ = wait(in_flight,
                                   return_when=FIRST_COMPLETED)
                    for future in done:
                        position = in_flight.pop(future)
                        ready[position] = future.result()
                while next_yield in ready:
                    result = ready.pop(next_yield)
                    position = next_yield
                    next_yield += 1
                    top_up()
                    yield position, result
                top_up()
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
