"""Parallel experiment execution.

Every paper figure is a sweep of 8–20 *independent* ``run_experiment``
calls, so sweeps are embarrassingly parallel.  This module fans the
runs out to a :class:`~concurrent.futures.ProcessPoolExecutor` while
keeping the output bit-identical to a serial run:

- each run derives **all** randomness from its own ``config.sim.seed``
  (a fresh ``Simulator`` + ``RngRegistry`` per run, no module-level
  RNG), so results do not depend on which process executes them;
- results are reassembled in **submission order**, not completion
  order, so the :class:`~repro.core.results.ResultTable` layout matches
  the serial runner row for row;
- pickling is exact for floats, so worker → parent transport does not
  perturb a single bit.

Failure semantics: a worker exception aborts the sweep with a
:class:`SweepRunError` carrying the offending config; a per-run
*timeout* instead yields a structured
:class:`~repro.core.results.FailedRun` placeholder in the table, so one
pathological operating point cannot sink a 20-run figure sweep.

Serial execution (``workers=1``) goes through the same single-run
worker function as the pool path — one code shape, one set of
semantics — and is the in-process fallback wherever a pool is not
worth its fork cost.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple, Union

from repro.core.cache import ResultCache
from repro.core.config import ExperimentConfig
from repro.core.experiment import run_experiment
from repro.core.results import ExperimentResult, FailedRun

__all__ = [
    "RunOutcome",
    "SweepRunError",
    "resolve_workers",
    "run_many",
]

Workers = Union[int, str, None]


class SweepRunError(RuntimeError):
    """A sweep run raised: carries the offending config and its index."""

    def __init__(self, index: int, config: ExperimentConfig,
                 message: str, worker_traceback: str = ""):
        super().__init__(
            f"sweep run #{index} failed: {message} "
            f"(config: {config.describe()})")
        self.index = index
        self.config = config
        self.worker_traceback = worker_traceback


@dataclass(frozen=True)
class RunOutcome:
    """One finished run: its table position, result, and provenance."""

    index: int
    result: ExperimentResult
    #: Full metrics-registry snapshot, when requested (or cached).
    snapshot: Optional[dict]
    #: True when the result came from the on-disk cache, not a run.
    cached: bool = False


def resolve_workers(workers: Workers) -> int:
    """Normalize a ``workers`` argument to a concrete process count.

    ``None``/``0``/``1`` mean serial; ``"auto"`` resolves to
    ``os.cpu_count() - 1`` (never below 1) so a sweep leaves one core
    for the parent and the rest of the machine.
    """
    if workers is None or workers == 0:
        return 1
    if workers == "auto":
        return max(1, (os.cpu_count() or 2) - 1)
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1 or 'auto', got {workers!r}")
    return count


class _RunTimeout(Exception):
    """Internal: raised by the SIGALRM handler inside a worker."""


def _raise_timeout(signum, frame):
    raise _RunTimeout()


def _execute(index: int, config: ExperimentConfig, want_snapshot: bool,
             timeout: Optional[float]) -> Tuple[int, tuple]:
    """Run one experiment (worker side — also the serial code path).

    Returns ``(index, payload)`` where payload is one of
    ``("ok", result, snapshot)``, ``("timeout", failed_run)``, or
    ``("error", message, traceback_text)``.  Exceptions never escape:
    they are serialized so the parent can attach the config.
    """
    start = time.perf_counter()
    # Enforce the per-run timeout with a real interval timer where the
    # platform has one (ProcessPoolExecutor workers are single-threaded
    # main threads, so SIGALRM is safe); elsewhere fall back to a
    # post-hoc wall-clock check.
    arm = timeout is not None and hasattr(signal, "SIGALRM")
    try:
        if arm:
            previous = signal.signal(signal.SIGALRM, _raise_timeout)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            handles: list = []
            result = run_experiment(config, handle_out=handles)
            snapshot = (handles[0].metrics_snapshot()
                        if want_snapshot else None)
        finally:
            if arm:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, previous)
    except _RunTimeout:
        elapsed = time.perf_counter() - start
        failed = FailedRun.from_config(
            config, kind="timeout",
            error=f"run exceeded {timeout:g}s timeout",
            elapsed_s=elapsed)
        return index, ("timeout", failed)
    except Exception as exc:  # serialized for the parent to re-raise
        return index, ("error", repr(exc), traceback.format_exc())
    elapsed = time.perf_counter() - start
    if timeout is not None and not arm and elapsed > timeout:
        failed = FailedRun.from_config(
            config, kind="timeout",
            error=f"run exceeded {timeout:g}s timeout", elapsed_s=elapsed)
        return index, ("timeout", failed)
    return index, ("ok", result, snapshot)


def run_many(
    configs: Iterable[ExperimentConfig],
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    want_snapshots: bool = False,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, ExperimentResult], None]] = None,
) -> List[RunOutcome]:
    """Run every config and return outcomes in input order.

    ``progress`` is invoked once per finished run with the run's table
    index and result — in completion order under a pool, which is table
    order only for serial execution.
    """
    configs = list(configs)
    outcomes: List[Optional[RunOutcome]] = [None] * len(configs)

    pending: List[int] = []
    for index, config in enumerate(configs):
        hit = (cache.get(config, want_snapshot=want_snapshots)
               if cache is not None else None)
        if hit is not None:
            outcomes[index] = RunOutcome(
                index=index, result=hit.result,
                snapshot=hit.snapshot if want_snapshots else None,
                cached=True)
            if progress is not None:
                progress(index, hit.result)
        else:
            pending.append(index)

    # Snapshots are computed in-worker whenever they are wanted *or*
    # cached, so a later `--metrics-out` rerun can hit the same entry.
    want = want_snapshots or cache is not None

    def finalize(index: int, payload: tuple) -> None:
        if payload[0] == "error":
            raise SweepRunError(index, configs[index], payload[1],
                                worker_traceback=payload[2])
        if payload[0] == "timeout":
            outcomes[index] = RunOutcome(index=index, result=payload[1],
                                         snapshot=None)
        else:
            _, result, snapshot = payload
            if cache is not None:
                cache.put(configs[index], result, snapshot)
            outcomes[index] = RunOutcome(
                index=index, result=result,
                snapshot=snapshot if want_snapshots else None)
        if progress is not None:
            progress(index, outcomes[index].result)

    n_workers = min(resolve_workers(workers), max(1, len(pending)))
    if n_workers == 1:
        for index in pending:
            _, payload = _execute(index, configs[index], want, timeout)
            finalize(index, payload)
    elif pending:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {
                pool.submit(_execute, index, configs[index], want, timeout)
                for index in pending
            }
            try:
                while futures:
                    done, futures = wait(futures,
                                         return_when=FIRST_COMPLETED)
                    for future in done:
                        index, payload = future.result()
                        finalize(index, payload)
            except BaseException:
                # A failed run (or Ctrl-C) aborts the sweep: drop the
                # queued work so shutdown does not run it to completion.
                pool.shutdown(wait=False, cancel_futures=True)
                raise

    return outcomes  # type: ignore[return-value]
