"""Parameter sweeps over experiment configurations.

Each paper figure is a sweep along one axis with everything else at the
baseline.  Since the scenario layer landed, these helpers are thin
wrappers: each one builds an in-memory
:class:`~repro.core.scenario.ScenarioSpec` (axes in the same
declaration order as the historical loops, so config lists — and
therefore results — are byte-identical) and runs it through the one
shared execution path, :func:`repro.core.scenario.run_configs`.

Prefer spec files (``repro scenario run``) for new studies; these
helpers remain for programmatic callers and the figure entry points.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.cache import ResultCache
from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
)
from repro.core.parallel import Workers
from repro.core.results import ExperimentResult, ResultTable
from repro.core.scenario import ScenarioSpec, SweepAxis, run_configs

__all__ = [
    "baseline_config",
    "run_sweep",
    "sweep_antagonist_cores",
    "sweep_receiver_cores",
    "sweep_receivers",
    "sweep_region_size",
]


def baseline_config(
    warmup: float = 6e-3,
    duration: float = 12e-3,
    seed: int = 1,
    fidelity: str = "packet",
    **host_overrides,
) -> ExperimentConfig:
    """The paper's §3 baseline: 40 senders, 12 receiver cores, IOMMU on,
    hugepages on, 12 MB regions, Swift."""
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=12), **host_overrides),
        sim=SimConfig(warmup=warmup, duration=duration, seed=seed),
        fidelity=fidelity,
    )


def run_sweep(
    configs: Iterable[ExperimentConfig],
    progress: Optional[Callable[[int, ExperimentResult], None]] = None,
    snapshots_out: Optional[list] = None,
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
    events: Optional[Callable[[dict], None]] = None,
    failures: str = "raise",
) -> ResultTable:
    """Run each config and collect results, optionally in parallel.

    Alias for :func:`repro.core.scenario.run_configs` — the single
    execution path behind sweeps, scenarios, and figures.

    ``snapshots_out``, if given, receives one full metrics-registry
    snapshot (``ExperimentHandle.metrics_snapshot``) per run, in table
    order — the payload behind ``sweep --metrics-out``.

    ``workers`` fans runs out to worker processes (``"auto"`` =
    ``cpu_count - 1``); the resulting table is bit-identical to a
    serial run because every run seeds its own RNGs from its config —
    see :mod:`repro.core.parallel`.  ``timeout`` bounds each run's wall
    clock, replacing over-budget runs with a
    :class:`~repro.core.results.FailedRun` placeholder.  ``cache``
    memoizes results on disk keyed by the config digest.
    """
    return run_configs(configs, progress=progress,
                       snapshots_out=snapshots_out, workers=workers,
                       timeout=timeout, cache=cache, events=events,
                       failures=failures)


def _sweep_spec(name: str, axes: List[SweepAxis],
                base_overrides: Optional[dict] = None) -> ScenarioSpec:
    return ScenarioSpec(name=name, base=base_overrides or {},
                        axes=tuple(axes), source=f"<{name}>")


def sweep_receiver_cores(
    cores: Sequence[int] = (2, 4, 6, 8, 10, 12, 14, 16),
    iommu_states: Sequence[bool] = (True, False),
    base: Optional[ExperimentConfig] = None,
    hugepages: Optional[bool] = None,
    progress=None,
    snapshots_out: Optional[list] = None,
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
    events: Optional[Callable[[dict], None]] = None,
    failures: str = "raise",
) -> ResultTable:
    """Figures 3 and 4: throughput/drops/misses vs receiver cores."""
    spec = _sweep_spec(
        "sweep_receiver_cores",
        [SweepAxis("host.iommu.enabled", tuple(iommu_states)),
         SweepAxis("host.cpu.cores", tuple(cores))],
        {} if hugepages is None else {"host.hugepages": hugepages})
    return spec.run(base=base or baseline_config(), progress=progress,
                    snapshots_out=snapshots_out, workers=workers,
                    timeout=timeout, cache=cache, events=events,
                    failures=failures)


def sweep_region_size(
    region_mb: Sequence[int] = (4, 8, 12, 16),
    iommu_states: Sequence[bool] = (True, False),
    base: Optional[ExperimentConfig] = None,
    progress=None,
    snapshots_out: Optional[list] = None,
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
    events: Optional[Callable[[dict], None]] = None,
    failures: str = "raise",
) -> ResultTable:
    """Figure 5: throughput/drops/misses vs Rx memory region size."""
    spec = _sweep_spec(
        "sweep_region_size",
        [SweepAxis("host.iommu.enabled", tuple(iommu_states)),
         SweepAxis("host.rx_region_bytes", tuple(region_mb),
                   scale=2**20)])
    return spec.run(base=base or baseline_config(), progress=progress,
                    snapshots_out=snapshots_out, workers=workers,
                    timeout=timeout, cache=cache, events=events,
                    failures=failures)


def sweep_receivers(
    receivers: Sequence[int] = (1, 2, 4),
    base: Optional[ExperimentConfig] = None,
    progress=None,
    snapshots_out: Optional[list] = None,
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
    events: Optional[Callable[[dict], None]] = None,
    failures: str = "raise",
) -> ResultTable:
    """Multi-receiver incast scale-out: M receiver hosts behind one
    fabric, each with its own ``senders``-way incast.

    Host interconnect congestion is per-host (the NIC buffer, IOMMU,
    and memory bus are not shared across machines), so per-host
    throughput and drop rate should be flat in M while aggregate
    throughput scales linearly — the sanity check that congestion in
    this model is a *host* phenomenon, not a fabric one.
    """
    spec = _sweep_spec(
        "sweep_receivers",
        [SweepAxis("workload.receivers", tuple(receivers))])
    return spec.run(base=base or baseline_config(), progress=progress,
                    snapshots_out=snapshots_out, workers=workers,
                    timeout=timeout, cache=cache, events=events,
                    failures=failures)


def sweep_antagonist_cores(
    antagonists: Sequence[int] = (0, 1, 2, 4, 6, 8, 10, 12, 14, 15),
    iommu_states: Sequence[bool] = (False, True),
    base: Optional[ExperimentConfig] = None,
    progress=None,
    snapshots_out: Optional[list] = None,
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
    events: Optional[Callable[[dict], None]] = None,
    failures: str = "raise",
) -> ResultTable:
    """Figure 6: throughput/memory bandwidth/drops vs STREAM cores."""
    spec = _sweep_spec(
        "sweep_antagonist_cores",
        [SweepAxis("host.iommu.enabled", tuple(iommu_states)),
         SweepAxis("host.antagonist_cores", tuple(antagonists))])
    return spec.run(base=base or baseline_config(), progress=progress,
                    snapshots_out=snapshots_out, workers=workers,
                    timeout=timeout, cache=cache, events=events,
                    failures=failures)
