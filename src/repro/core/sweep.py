"""Parameter sweeps over experiment configurations.

Each paper figure is a sweep along one axis with everything else at the
baseline; these helpers build the config lists and run them.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.cache import ResultCache
from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
)
from repro.core.parallel import Workers, run_many
from repro.core.results import ExperimentResult, ResultTable

__all__ = [
    "baseline_config",
    "run_sweep",
    "sweep_antagonist_cores",
    "sweep_receiver_cores",
    "sweep_receivers",
    "sweep_region_size",
]


def baseline_config(
    warmup: float = 6e-3,
    duration: float = 12e-3,
    seed: int = 1,
    **host_overrides,
) -> ExperimentConfig:
    """The paper's §3 baseline: 40 senders, 12 receiver cores, IOMMU on,
    hugepages on, 12 MB regions, Swift."""
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=12), **host_overrides),
        sim=SimConfig(warmup=warmup, duration=duration, seed=seed),
    )


def _with_host(config: ExperimentConfig, **changes) -> ExperimentConfig:
    return dataclasses.replace(
        config, host=dataclasses.replace(config.host, **changes))


def _with_cores(config: ExperimentConfig, cores: int) -> ExperimentConfig:
    return _with_host(
        config, cpu=dataclasses.replace(config.host.cpu, cores=cores))


def _with_iommu(config: ExperimentConfig, enabled: bool) -> ExperimentConfig:
    return _with_host(
        config,
        iommu=dataclasses.replace(config.host.iommu, enabled=enabled))


def run_sweep(
    configs: Iterable[ExperimentConfig],
    progress: Optional[Callable[[int, ExperimentResult], None]] = None,
    snapshots_out: Optional[list] = None,
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
) -> ResultTable:
    """Run each config and collect results, optionally in parallel.

    ``snapshots_out``, if given, receives one full metrics-registry
    snapshot (``ExperimentHandle.metrics_snapshot``) per run, in table
    order — the payload behind ``sweep --metrics-out``.

    ``workers`` fans runs out to worker processes (``"auto"`` =
    ``cpu_count - 1``); the resulting table is bit-identical to a
    serial run because every run seeds its own RNGs from its config —
    see :mod:`repro.core.parallel`.  ``timeout`` bounds each run's wall
    clock, replacing over-budget runs with a
    :class:`~repro.core.results.FailedRun` placeholder.  ``cache``
    memoizes results on disk keyed by the config digest.
    """
    outcomes = run_many(configs, workers=workers, timeout=timeout,
                        want_snapshots=snapshots_out is not None,
                        cache=cache, progress=progress)
    table = ResultTable()
    for outcome in outcomes:
        table.append(outcome.result)
        if snapshots_out is not None:
            snapshots_out.append(outcome.snapshot)
    return table


def sweep_receiver_cores(
    cores: Sequence[int] = (2, 4, 6, 8, 10, 12, 14, 16),
    iommu_states: Sequence[bool] = (True, False),
    base: Optional[ExperimentConfig] = None,
    hugepages: Optional[bool] = None,
    progress=None,
    snapshots_out: Optional[list] = None,
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
) -> ResultTable:
    """Figures 3 and 4: throughput/drops/misses vs receiver cores."""
    base = base or baseline_config()
    if hugepages is not None:
        base = _with_host(base, hugepages=hugepages)
    configs: List[ExperimentConfig] = []
    for enabled in iommu_states:
        for n in cores:
            configs.append(_with_cores(_with_iommu(base, enabled), n))
    return run_sweep(configs, progress, snapshots_out,
                     workers=workers, timeout=timeout, cache=cache)


def sweep_region_size(
    region_mb: Sequence[int] = (4, 8, 12, 16),
    iommu_states: Sequence[bool] = (True, False),
    base: Optional[ExperimentConfig] = None,
    progress=None,
    snapshots_out: Optional[list] = None,
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
) -> ResultTable:
    """Figure 5: throughput/drops/misses vs Rx memory region size."""
    base = base or baseline_config()
    configs = [
        _with_host(_with_iommu(base, enabled),
                   rx_region_bytes=mb * 2**20)
        for enabled in iommu_states
        for mb in region_mb
    ]
    return run_sweep(configs, progress, snapshots_out,
                     workers=workers, timeout=timeout, cache=cache)


def sweep_receivers(
    receivers: Sequence[int] = (1, 2, 4),
    base: Optional[ExperimentConfig] = None,
    progress=None,
    snapshots_out: Optional[list] = None,
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
) -> ResultTable:
    """Multi-receiver incast scale-out: M receiver hosts behind one
    fabric, each with its own ``senders``-way incast.

    Host interconnect congestion is per-host (the NIC buffer, IOMMU,
    and memory bus are not shared across machines), so per-host
    throughput and drop rate should be flat in M while aggregate
    throughput scales linearly — the sanity check that congestion in
    this model is a *host* phenomenon, not a fabric one.
    """
    base = base or baseline_config()
    configs = [
        dataclasses.replace(
            base,
            workload=dataclasses.replace(base.workload, receivers=m))
        for m in receivers
    ]
    return run_sweep(configs, progress, snapshots_out,
                     workers=workers, timeout=timeout, cache=cache)


def sweep_antagonist_cores(
    antagonists: Sequence[int] = (0, 1, 2, 4, 6, 8, 10, 12, 14, 15),
    iommu_states: Sequence[bool] = (False, True),
    base: Optional[ExperimentConfig] = None,
    progress=None,
    snapshots_out: Optional[list] = None,
    *,
    workers: Workers = None,
    timeout: Optional[float] = None,
    cache: Optional[ResultCache] = None,
) -> ResultTable:
    """Figure 6: throughput/memory bandwidth/drops vs STREAM cores."""
    base = base or baseline_config()
    configs = [
        _with_host(_with_iommu(base, enabled), antagonist_cores=n)
        for enabled in iommu_states
        for n in antagonists
    ]
    return run_sweep(configs, progress, snapshots_out,
                     workers=workers, timeout=timeout, cache=cache)
