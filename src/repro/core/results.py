"""Experiment result records and CSV/JSON serialization."""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Sequence

__all__ = ["ExperimentResult", "FailedRun", "ResultTable"]


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one experiment run produced.

    ``params`` is the flat description of varied knobs (from
    ``ExperimentConfig.describe``); ``metrics`` is the host snapshot
    plus transport-level aggregates.
    """

    params: Dict[str, Any]
    metrics: Dict[str, float]
    message_latency_us: Dict[str, float] = field(default_factory=dict)

    def value(self, key: str) -> Any:
        """Look up a metric or parameter by name (metrics win ties)."""
        if key in self.metrics:
            return self.metrics[key]
        if key in self.params:
            return self.params[key]
        if key in self.message_latency_us:
            return self.message_latency_us[key]
        raise KeyError(key)

    def as_flat_dict(self) -> Dict[str, Any]:
        row: Dict[str, Any] = dict(self.params)
        row.update(self.metrics)
        row.update(
            {f"msg_latency_{k}_us": v
             for k, v in self.message_latency_us.items()}
        )
        return row


@dataclass(frozen=True)
class FailedRun(ExperimentResult):
    """Structured placeholder for a run that produced no metrics.

    Parallel sweeps insert one of these (instead of aborting the whole
    sweep) when a run exceeds its timeout.  The ``params`` carry the
    offending config's description plus ``failed=True`` so table
    filters and CSV exports keep working; ``metrics`` is empty.
    """

    #: Human-readable cause ("run exceeded 2s timeout", exception repr).
    error: str = ""
    #: Failure class: ``"timeout"`` or ``"error"``.
    kind: str = "error"
    #: Wall-clock seconds spent before the run was abandoned.
    elapsed_s: float = 0.0
    #: Exception class name (``"ValueError"``); empty for timeouts.
    exception_type: str = ""
    #: Tail of the worker traceback, bounded so CSV cells stay sane.
    traceback_tail: str = ""

    #: Characters of traceback kept (the tail names the raise site).
    TRACEBACK_LIMIT = 1200

    @classmethod
    def from_config(cls, config, *, kind: str, error: str,
                    elapsed_s: float = 0.0, exception_type: str = "",
                    traceback_text: str = "") -> "FailedRun":
        params = dict(config.describe())
        params["failed"] = True
        tail = traceback_text[-cls.TRACEBACK_LIMIT:]
        return cls(params=params, metrics={}, message_latency_us={},
                   error=error, kind=kind, elapsed_s=elapsed_s,
                   exception_type=exception_type, traceback_tail=tail)

    def as_flat_dict(self) -> Dict[str, Any]:
        row = super().as_flat_dict()
        row["error"] = self.error
        row["failure_kind"] = self.kind
        row["exception_type"] = self.exception_type
        row["traceback_tail"] = self.traceback_tail
        return row


class ResultTable:
    """An ordered collection of results with CSV/JSON export."""

    def __init__(self, results: Sequence[ExperimentResult] = ()):
        self.results: List[ExperimentResult] = list(results)

    def append(self, result: ExperimentResult) -> None:
        self.results.append(result)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __eq__(self, other: object) -> bool:
        """Exact equality of the ordered result records — the property
        the parallel runner guarantees against the serial one."""
        if not isinstance(other, ResultTable):
            return NotImplemented
        return self.results == other.results

    def failures(self) -> List[FailedRun]:
        """The runs that timed out or crashed (parallel sweeps)."""
        return [r for r in self.results if isinstance(r, FailedRun)]

    def ok(self) -> "ResultTable":
        """A view with failed runs filtered out."""
        return ResultTable(
            [r for r in self.results if not isinstance(r, FailedRun)])

    def column(self, key: str) -> List[Any]:
        return [r.value(key) for r in self.results]

    def where(self, **conditions: Any) -> "ResultTable":
        """Results whose params match all of ``conditions``."""
        return ResultTable(
            [
                r for r in self.results
                if all(r.params.get(k) == v for k, v in conditions.items())
            ]
        )

    def to_csv(self, path: str | Path) -> None:
        rows = [r.as_flat_dict() for r in self.results]
        if not rows:
            raise ValueError("cannot write an empty result table")
        fieldnames: List[str] = []
        for row in rows:
            for key in row:
                if key not in fieldnames:
                    fieldnames.append(key)
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)

    def to_json(self, path: str | Path) -> None:
        payload = [
            {
                "params": r.params,
                "metrics": r.metrics,
                "message_latency_us": r.message_latency_us,
            }
            for r in self.results
        ]
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1)

    @classmethod
    def from_json(cls, path: str | Path) -> "ResultTable":
        with open(path) as fh:
            payload = json.load(fh)
        return cls(
            [
                ExperimentResult(
                    params=entry["params"],
                    metrics=entry["metrics"],
                    message_latency_us=entry.get("message_latency_us", {}),
                )
                for entry in payload
            ]
        )
