"""Experiment runner: config in, metrics out.

Builds the full simulation graph via
:class:`~repro.core.topology.GraphBuilder` (M receiver hosts behind one
fabric; M = ``config.workload.receivers``), runs the warmup, resets all
window counters through the component tree, runs the measurement
window, and collects every headline metric of the paper.

Every handle owns a :class:`~repro.obs.metrics.MetricsRegistry` with
every component's observables bound, and a
:class:`~repro.sim.tracing.Tracer` (enabled by ``config.sim.trace``)
whose records export to Perfetto via :mod:`repro.obs.perfetto`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import ExperimentConfig
from repro.core.metrics import summarize
from repro.core.results import ExperimentResult
from repro.core.topology import GraphBuilder
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import MetricsSampler, TelemetryBus
from repro.sim.engine import Simulator
from repro.sim.tracing import Tracer

__all__ = ["run_experiment", "ExperimentHandle"]


class ExperimentHandle:
    """A built-but-not-finished experiment, for callers that want to
    probe mid-run state (time series, convergence tests)."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self.sim = Simulator()
        self.tracer = Tracer(self.sim, enabled=config.sim.trace,
                             max_records=config.sim.trace_max_records)
        self.metrics = MetricsRegistry()
        self.topology = GraphBuilder(config,
                                     tracer=self.tracer).build(self.sim)
        #: Back-compat alias: the topology exposes the workload surface
        #: (connections, set_offered_load, fabric, ...).
        self.workload = self.topology
        self.host = self.topology.host
        self.topology.bind_metrics(self.metrics)
        # Opt-in live telemetry: a sampler polling the registry onto a
        # bus on a sim-time cadence.  Off (None) by default — building
        # it costs nothing on the normal path, and its reads cannot
        # perturb results (see obs.telemetry).
        self.telemetry: Optional[TelemetryBus] = None
        self.sampler: Optional[MetricsSampler] = None
        self._telemetry_capture = None
        if config.sim.sample_interval is not None:
            self.telemetry = TelemetryBus()
            self.sampler = MetricsSampler(
                self.sim, self.metrics, self.telemetry,
                interval=config.sim.sample_interval)
            self.sampler.bind_metrics(self.metrics)
            self._telemetry_capture = self.telemetry.subscribe(
                maxlen=262144)
        self._measuring = False

    def run_warmup(self) -> None:
        self.sim.run(until=self.config.sim.warmup)
        self.topology.reset_stats()
        self.metrics.reset_window()
        # The sampling epoch is the warmup boundary: ticks land at
        # warmup + k·interval, aligned with the measurement window.
        if self.sampler is not None:
            self.sampler.start()
        self._measuring = True

    def run_measurement(self) -> None:
        if not self._measuring:
            self.run_warmup()
        self.sim.run(until=self.config.sim.end_time)

    def metrics_snapshot(self) -> Dict[str, Dict]:
        """The full registry snapshot plus run metadata — the payload
        behind the CLI's ``--metrics-out`` flag."""
        snapshot = self.metrics.snapshot()
        snapshot["meta"] = {
            "params": self.config.describe(),
            "sim_time_s": self.sim.now,
            "events_dispatched": self.sim.events_dispatched,
            "trace_records": len(self.tracer),
            "trace_dropped": self.tracer.dropped,
        }
        if self._telemetry_capture is not None:
            snapshot["telemetry"] = {
                "interval": self.config.sim.sample_interval,
                "ticks": self.sampler.ticks,
                "dropped": self._telemetry_capture.dropped,
                "samples": [sample.as_list()
                            for sample in self._telemetry_capture],
            }
        return snapshot

    def telemetry_samples(self) -> list:
        """Samples captured so far (non-draining); empty when the
        sampler is disabled."""
        if self._telemetry_capture is None:
            return []
        return list(self._telemetry_capture)

    def collect(self) -> ExperimentResult:
        topology = self.topology
        metrics: Dict[str, float] = topology.snapshot()
        metrics.update(
            {
                "packets_sent": float(topology.total_packets_sent()),
                "retransmissions": float(topology.total_retransmissions()),
                "timeouts": float(topology.total_timeouts()),
                "mean_cwnd": topology.mean_cwnd(),
                "fabric_drops": float(topology.fabric.fabric_drops()),
                "fabric_drop_rate":
                    (float(topology.fabric.fabric_drops())
                     / float(topology.total_packets_sent())
                     if topology.total_packets_sent() else 0.0),
                "messages_completed": float(topology.messages_completed()),
                "link_utilization":
                    metrics["wire_arrival_gbps"] * 1e9
                    / (self.config.link.rate_bps
                       * topology.n_receivers),
            }
        )
        latencies = topology.all_message_latencies()
        latency_summary = summarize([v * 1e6 for v in latencies])
        return ExperimentResult(
            params=self.config.describe(),
            metrics=metrics,
            message_latency_us={
                "p50": latency_summary.p50,
                "p90": latency_summary.p90,
                "p99": latency_summary.p99,
                "mean": latency_summary.mean,
            },
        )


def run_experiment(
    config: ExperimentConfig,
    handle_out: Optional[list] = None,
) -> ExperimentResult:
    """Run one experiment end to end and return its result.

    ``handle_out``, if given, receives the :class:`ExperimentHandle`
    (for tests that want to inspect internal component state after the
    run).

    ``config.fidelity`` selects the engine: the packet-level kernel
    (default) or the rate-based fluid solver — same lifecycle, same
    result schema, so callers never branch on fidelity themselves.
    """
    if config.fidelity == "fluid":
        # Local import: the fluid runner is optional machinery this
        # module should not pay for (or circularly depend on) up front.
        from repro.core.fluid import FluidExperiment

        handle = FluidExperiment(config)
    else:
        handle = ExperimentHandle(config)
    if handle_out is not None:
        handle_out.append(handle)
    handle.run_warmup()
    handle.run_measurement()
    return handle.collect()
