"""Experiment runner: config in, metrics out.

Builds the full simulation graph (host + fabric + transport), runs the
warmup, resets all window counters, runs the measurement window, and
collects every headline metric of the paper.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import ExperimentConfig
from repro.core.metrics import summarize
from repro.core.results import ExperimentResult
from repro.sim.engine import Simulator
from repro.workload.remote_read import RemoteReadWorkload

__all__ = ["run_experiment", "ExperimentHandle"]


class ExperimentHandle:
    """A built-but-not-finished experiment, for callers that want to
    probe mid-run state (time series, convergence tests)."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self.sim = Simulator()
        self.workload = RemoteReadWorkload(self.sim, config)
        self.host = self.workload.host
        self._measuring = False

    def run_warmup(self) -> None:
        self.sim.run(until=self.config.sim.warmup)
        self.host.reset_stats()
        self.workload.reset_stats()
        self._measuring = True

    def run_measurement(self) -> None:
        if not self._measuring:
            self.run_warmup()
        self.sim.run(until=self.config.sim.end_time)

    def collect(self) -> ExperimentResult:
        host = self.host
        workload = self.workload
        metrics: Dict[str, float] = host.snapshot()
        metrics.update(
            {
                "packets_sent": float(workload.total_packets_sent()),
                "retransmissions": float(workload.total_retransmissions()),
                "timeouts": float(workload.total_timeouts()),
                "mean_cwnd": workload.mean_cwnd(),
                "fabric_drops": float(workload.fabric.fabric_drops()),
                "messages_completed": float(
                    workload.receiver.messages_completed()),
                "link_utilization":
                    metrics["wire_arrival_gbps"] * 1e9
                    / self.config.link.rate_bps,
            }
        )
        latencies = workload.receiver.all_message_latencies()
        latency_summary = summarize([v * 1e6 for v in latencies])
        return ExperimentResult(
            params=self.config.describe(),
            metrics=metrics,
            message_latency_us={
                "p50": latency_summary.p50,
                "p90": latency_summary.p90,
                "p99": latency_summary.p99,
                "mean": latency_summary.mean,
            },
        )


def run_experiment(
    config: ExperimentConfig,
    handle_out: Optional[list] = None,
) -> ExperimentResult:
    """Run one experiment end to end and return its result.

    ``handle_out``, if given, receives the :class:`ExperimentHandle`
    (for tests that want to inspect internal component state after the
    run).
    """
    handle = ExperimentHandle(config)
    if handle_out is not None:
        handle_out.append(handle)
    handle.run_warmup()
    handle.run_measurement()
    return handle.collect()
