"""Experiment runner: config in, metrics out.

Builds the full simulation graph (host + fabric + transport), runs the
warmup, resets all window counters, runs the measurement window, and
collects every headline metric of the paper.

Every handle owns a :class:`~repro.obs.metrics.MetricsRegistry` with
every component's observables bound, and a
:class:`~repro.sim.tracing.Tracer` (enabled by ``config.sim.trace``)
whose records export to Perfetto via :mod:`repro.obs.perfetto`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import ExperimentConfig
from repro.core.metrics import summarize
from repro.core.results import ExperimentResult
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.tracing import Tracer
from repro.workload.remote_read import RemoteReadWorkload

__all__ = ["run_experiment", "ExperimentHandle"]


class ExperimentHandle:
    """A built-but-not-finished experiment, for callers that want to
    probe mid-run state (time series, convergence tests)."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self.sim = Simulator()
        self.tracer = Tracer(self.sim, enabled=config.sim.trace,
                             max_records=config.sim.trace_max_records)
        self.metrics = MetricsRegistry()
        self.workload = RemoteReadWorkload(self.sim, config,
                                           tracer=self.tracer)
        self.host = self.workload.host
        self.workload.bind_metrics(self.metrics)
        self._measuring = False

    def run_warmup(self) -> None:
        self.sim.run(until=self.config.sim.warmup)
        self.host.reset_stats()
        self.workload.reset_stats()
        self.metrics.reset_window()
        self._measuring = True

    def run_measurement(self) -> None:
        if not self._measuring:
            self.run_warmup()
        self.sim.run(until=self.config.sim.end_time)

    def metrics_snapshot(self) -> Dict[str, Dict]:
        """The full registry snapshot plus run metadata — the payload
        behind the CLI's ``--metrics-out`` flag."""
        snapshot = self.metrics.snapshot()
        snapshot["meta"] = {
            "params": self.config.describe(),
            "sim_time_s": self.sim.now,
            "events_dispatched": self.sim.events_dispatched,
            "trace_records": len(self.tracer),
            "trace_dropped": self.tracer.dropped,
        }
        return snapshot

    def collect(self) -> ExperimentResult:
        host = self.host
        workload = self.workload
        metrics: Dict[str, float] = host.snapshot()
        metrics.update(
            {
                "packets_sent": float(workload.total_packets_sent()),
                "retransmissions": float(workload.total_retransmissions()),
                "timeouts": float(workload.total_timeouts()),
                "mean_cwnd": workload.mean_cwnd(),
                "fabric_drops": float(workload.fabric.fabric_drops()),
                "messages_completed": float(
                    workload.receiver.messages_completed()),
                "link_utilization":
                    metrics["wire_arrival_gbps"] * 1e9
                    / self.config.link.rate_bps,
            }
        )
        latencies = workload.receiver.all_message_latencies()
        latency_summary = summarize([v * 1e6 for v in latencies])
        return ExperimentResult(
            params=self.config.describe(),
            metrics=metrics,
            message_latency_us={
                "p50": latency_summary.p50,
                "p90": latency_summary.p90,
                "p99": latency_summary.p99,
                "mean": latency_summary.mean,
            },
        )


def run_experiment(
    config: ExperimentConfig,
    handle_out: Optional[list] = None,
) -> ExperimentResult:
    """Run one experiment end to end and return its result.

    ``handle_out``, if given, receives the :class:`ExperimentHandle`
    (for tests that want to inspect internal component state after the
    run).
    """
    handle = ExperimentHandle(config)
    if handle_out is not None:
        handle_out.append(handle)
    handle.run_warmup()
    handle.run_measurement()
    return handle.collect()
