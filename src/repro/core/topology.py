"""Topology: the composed simulation graph, built from config.

:class:`GraphBuilder` validates the requested shape and constructs
{N×M senders → fabric → M receiver hosts} on a simulator;
:class:`Topology` is the resulting root :class:`~repro.sim.component.Component`
— the one object :class:`~repro.core.experiment.ExperimentHandle` binds,
resets, and snapshots, whether the experiment has one receiver host (the
paper's setup) or many.

The fabric between senders and hosts is chosen by
``config.fabric.topology``: the historical one-hop ``star`` (built on
the exact historical code path, so star results stay byte-identical),
or a planned multi-tier graph — a k-ary ``fattree`` or a two-switch
``dumbbell`` — where every hop is a real switch port and a routing
policy (static/ECMP/flowlet) picks among equal-cost paths per packet
(see :mod:`repro.net.fabric` and :mod:`repro.net.routing`).

Metric namespacing follows the component tree: a single-host topology
keeps every historical flat name (``nic.rx_packets``,
``transport.mean_cwnd``), while a multi-host topology prefixes each
host's subtree (``host0/nic.rx_packets``, ``host1/transport.mean_cwnd``)
and keeps fabric-level metrics shared (``fabric.fabric_drops``).
Multi-tier fabrics additionally expose per-hop metrics
(``fabric/agg1/port2.dropped``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import ExperimentConfig
from repro.host.host import ReceiverHost
from repro.net.fabric import (
    Fabric,
    FabricPlan,
    MultiTierFabric,
    build_fabric_plan,
    dumbbell_plan,
    fattree_plan,
)
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.tracing import Tracer
from repro.transport.base import Connection
from repro.workload.remote_read import HostWorkload, build_remote_read_graph

__all__ = [
    "GraphBuilder",
    "Topology",
    "FabricPlan",
    "build_fabric_plan",
    "dumbbell_plan",
    "fattree_plan",
]


class GraphBuilder:
    """Validated recipe for one simulation graph.

    Separate from :class:`Topology` so shape errors (zero receivers,
    inconsistent overrides) surface before any simulator state exists.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        receivers: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.config = config
        self.receivers = (receivers if receivers is not None
                          else config.workload.receivers)
        self.tracer = tracer
        if self.receivers < 1:
            raise ValueError(
                f"need at least one receiver host, got {self.receivers}")
        #: The multi-tier plan, or None for the historical star.
        self.plan: Optional[FabricPlan] = None
        if config.fabric.topology != "star":
            self.plan = build_fabric_plan(
                config,
                n_senders=config.workload.senders * self.receivers,
                n_hosts=self.receivers)

    def build(self, sim: Simulator) -> "Topology":
        factory = None
        if self.plan is not None:
            plan = self.plan

            def factory(deliver):
                return MultiTierFabric(sim, self.config, plan, deliver)

        hosts, fabric, workloads = build_remote_read_graph(
            sim, self.config, receivers=self.receivers,
            tracer=self.tracer, fabric_factory=factory)
        return Topology(self.config, hosts, fabric, workloads)


class Topology(Component):
    """Root of the component tree for one experiment."""

    def __init__(
        self,
        config: ExperimentConfig,
        hosts: List[ReceiverHost],
        fabric: Fabric,
        workloads: List[HostWorkload],
    ):
        self.config = config
        self.hosts = hosts
        self.fabric = fabric
        self.workloads = workloads

    @property
    def n_receivers(self) -> int:
        return len(self.hosts)

    def children(self) -> Tuple[Tuple[str, Component], ...]:
        if self.n_receivers == 1:
            named = [("", self.workloads[0])]
        else:
            named = [(f"host{i}", hw)
                     for i, hw in enumerate(self.workloads)]
        return tuple(named + [("", self.fabric)])

    # -- single-host compatibility surface ----------------------------------

    @property
    def host(self) -> ReceiverHost:
        """The first receiver host (the whole story when M == 1)."""
        return self.hosts[0]

    @property
    def receiver(self):
        """The first host's transport endpoint."""
        return self.workloads[0].receiver

    @property
    def connections(self) -> List[Connection]:
        """Every sender connection, host-major order."""
        out: List[Connection] = []
        for hw in self.workloads:
            out.extend(hw.connections)
        return out

    def set_offered_load(self, fraction: float) -> None:
        for hw in self.workloads:
            hw.set_offered_load(fraction)

    # -- aggregate statistics ------------------------------------------------

    def total_packets_sent(self) -> int:
        return sum(hw.total_packets_sent() for hw in self.workloads)

    def total_retransmissions(self) -> int:
        return sum(hw.total_retransmissions() for hw in self.workloads)

    def total_timeouts(self) -> int:
        return sum(hw.total_timeouts() for hw in self.workloads)

    def mean_cwnd(self) -> float:
        conns = self.connections
        if not conns:
            return 0.0
        return sum(c.cc.cwnd() for c in conns) / len(conns)

    def messages_completed(self) -> int:
        return sum(hw.receiver.messages_completed()
                   for hw in self.workloads)

    def all_message_latencies(self) -> List[float]:
        out: List[float] = []
        for hw in self.workloads:
            out.extend(hw.receiver.all_message_latencies())
        return out

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """The flat headline dict the sweep CSVs are keyed by.

        Single host: the host's own snapshot, verbatim.  Multi host:
        the same keys, aggregated — sums for throughputs/bandwidths,
        traffic-weighted ratios for rates, means for utilizations and
        latencies, max for the peak-occupancy fraction.
        """
        if self.n_receivers == 1:
            return self.hosts[0].snapshot()
        snaps = [host.snapshot() for host in self.hosts]
        n = len(snaps)
        total_rx = sum(host.nic.rx_packets for host in self.hosts)
        total_drops = sum(host.nic.dropped_packets for host in self.hosts)
        total_dma = sum(host.nic.dma_completed_packets
                        for host in self.hosts)
        total_misses = sum(host.iommu.total_misses for host in self.hosts)
        return {
            "app_throughput_gbps":
                sum(s["app_throughput_gbps"] for s in snaps),
            "wire_arrival_gbps":
                sum(s["wire_arrival_gbps"] for s in snaps),
            "drop_rate": total_drops / total_rx if total_rx else 0.0,
            "iotlb_misses_per_packet":
                total_misses / total_dma if total_dma else 0.0,
            "memory_utilization":
                sum(s["memory_utilization"] for s in snaps) / n,
            "memory_total_GBps":
                sum(s["memory_total_GBps"] for s in snaps),
            "mean_dma_latency_us":
                sum(s["mean_dma_latency_us"] for s in snaps) / n,
            "mean_nic_delay_us":
                sum(s["mean_nic_delay_us"] for s in snaps) / n,
            "nic_buffer_peak_fraction":
                max(s["nic_buffer_peak_fraction"] for s in snaps),
            "iommu_entries": sum(s["iommu_entries"] for s in snaps),
            "remote_memory_GBps":
                sum(s["remote_memory_GBps"] for s in snaps),
        }
