"""Direct cache access (DDIO) and the copy-traffic model.

DDIO steers NIC DMA writes into the last-level cache.  Two consequences
(paper §2, footnote 2):

- DMA writes may evict existing lines "to the host memory over the same
  memory bus", so NIC *write* demand still crosses the bus in full.
- Receiver-thread copies read payload mostly from LLC, so copy *read*
  demand is a small fraction of payload rate (the paper measures
  3.3 GB/s of reads against 11.8 GB/s of writes at full rate); with
  DDIO off the copies miss and read demand is the full payload rate.
"""

from __future__ import annotations

from repro.core.config import DdioConfig
from repro.host.memory import MemoryController, TrafficCounter
from repro.sim.component import Component

__all__ = ["CopyTrafficModel"]


class CopyTrafficModel(Component):
    """Converts payload bytes processed by receiver threads into memory
    read/write demand."""

    label = "copy"

    def __init__(self, config: DdioConfig, memory: MemoryController):
        self.config = config
        read_fraction, write_fraction = config.copy_demand_fractions()
        self._read_fraction = read_fraction
        self._write_fraction = write_fraction
        self._reads: TrafficCounter = memory.register_counter(
            "cpu-copy-reads", "cpu")
        self._writes: TrafficCounter = memory.register_counter(
            "cpu-copy-writes", "cpu")
        self.payload_bytes_copied = 0

    def record_dma_write(self, pkt) -> None:
        """No-op: residency is implicit in the static fractions (the
        dynamic alternative is :class:`repro.host.llc.DynamicLlcModel`)."""

    def record_copy(self, pkt_or_bytes) -> None:
        """Account for one packet's payload copy to application buffers.

        Accepts a :class:`~repro.net.packet.Packet` or a byte count.
        """
        payload_bytes = (pkt_or_bytes.payload_bytes
                         if hasattr(pkt_or_bytes, "payload_bytes")
                         else int(pkt_or_bytes))
        self.payload_bytes_copied += payload_bytes
        read_bytes = int(payload_bytes * self._read_fraction)
        write_bytes = int(payload_bytes * self._write_fraction)
        if read_bytes:
            self._reads.add(read_bytes)
        if write_bytes:
            self._writes.add(write_bytes)

    # -- telemetry -----------------------------------------------------------

    def bind_own_metrics(self, registry, component: str) -> None:
        registry.counter("payload_bytes_copied", component, unit="bytes",
                         fn=lambda: self.payload_bytes_copied)

    def reset_own_stats(self) -> None:
        self.payload_bytes_copied = 0
