"""The NIC: input buffer, Rx descriptor rings, and the DMA engine.

This is the component where host congestion becomes visible (paper §2):

1. arriving packets enqueue in a small SRAM input buffer — the only
   place on the receive path where drops happen;
2. the DMA engine takes an Rx descriptor and PCIe credits, asks the
   IOMMU for translations, occupies the PCIe link, and pays the
   (possibly contended) memory-write latency;
3. credit release on completion is the backpressure loop: "any delays
   in the NIC-to-memory datapath result in a backpressure to the NIC
   input buffer, until the root complex can replenish the credits."
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.core.config import NicConfig
from repro.host.addressing import ThreadLayout
from repro.host.iommu import Iommu
from repro.host.memory import MemoryController, TrafficCounter
from repro.host.pcie import PcieLink
from repro.net.packet import Ack, Packet
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.queues import ByteQueue
from repro.sim.resources import CreditPool
from repro.sim.tracing import Tracer

__all__ = ["Nic", "RxRing"]

#: Descriptor + completion-entry bytes written to memory per packet.
_CONTROL_WRITE_BYTES = 96

#: Fixed NIC-side latency for transmitting one ACK (doorbell, DMA read
#: issue); the ACK's translation latency is added on top.
_ACK_TX_LATENCY = 0.3e-6


class RxRing:
    """Free-descriptor accounting for one receive queue."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.free = capacity
        self.exhaustions = 0

    def take(self) -> bool:
        """Consume one descriptor; False (and counted) when empty."""
        if self.free == 0:
            self.exhaustions += 1
            return False
        self.free -= 1
        return True

    def replenish(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"cannot replenish {n} descriptors")
        self.free = min(self.free + n, self.capacity)


class Nic(Component):
    """Receive-side NIC model."""

    label = "nic"

    def __init__(
        self,
        sim: Simulator,
        config: NicConfig,
        pcie: PcieLink,
        credits: CreditPool,
        iommu: Iommu,
        memory: MemoryController,
        layouts: List[ThreadLayout],
        rng: random.Random,
        deliver: Callable[[Packet], None],
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.config = config
        self.pcie = pcie
        self.credits = credits
        self.iommu = iommu
        self.memory = memory
        self.layouts = layouts
        self.rng = rng
        self.deliver = deliver
        self.tracer = tracer
        self.buffer = ByteQueue(sim, config.buffer_bytes, name="nic-input")
        self.rings = [RxRing(config.ring_descriptors) for _ in layouts]
        self._inflight_bytes = 0
        self._traffic: TrafficCounter = memory.register_counter(
            "nic-dma", "nic")
        self._ack_countdown = config.ack_coalescing
        # Window counters (reset at the warmup boundary).
        self.rx_packets = 0
        self.rx_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.dma_completed_packets = 0
        self.dma_completed_payload_bytes = 0
        self.acks_sent = 0
        self._nic_delay_sum = 0.0
        self._dma_latency_sum = 0.0
        # Bound by bind_metrics(); None keeps the hot path at one branch.
        # While bound, per-packet samples land in plain lists and drain
        # into the histograms only at registry flush points (snapshot /
        # warmup boundary) — an append is far cheaper than reservoir
        # bookkeeping per event, and replaying in order leaves the
        # reservoir RNG state identical to eager observation.
        self._m_host_delay = None
        self._m_dma_latency = None
        self._host_delay_pending: List[float] = []
        self._dma_latency_pending: List[float] = []

    def bind_own_metrics(self, registry, component: str) -> None:
        """Register every NIC observable in ``registry``.

        Counter/gauge readers pull the existing window counters at
        snapshot time (zero hot-path cost); the two latency histograms
        observe per-packet and cost one guarded append each.
        """
        for name, fn in (
            ("rx_packets", lambda: self.rx_packets),
            ("rx_bytes", lambda: self.rx_bytes),
            ("dropped_packets", lambda: self.dropped_packets),
            ("dropped_bytes", lambda: self.dropped_bytes),
            ("dma_completed_packets", lambda: self.dma_completed_packets),
            ("dma_completed_payload_bytes",
             lambda: self.dma_completed_payload_bytes),
            ("acks_sent", lambda: self.acks_sent),
            ("ring_exhaustions",
             lambda: sum(r.exhaustions for r in self.rings)),
        ):
            registry.counter(name, component, fn=fn)
        for name, unit, fn in (
            ("drop_rate", "fraction", self.drop_rate),
            ("buffer_fraction", "fraction", self.buffer_fraction),
            ("buffer_peak_fraction", "fraction",
             lambda: self.buffer.peak_bytes / self.config.buffer_bytes),
            ("mean_nic_delay_us", "us",
             lambda: self.mean_nic_delay() * 1e6),
            ("mean_dma_latency_us", "us",
             lambda: self.mean_dma_latency() * 1e6),
        ):
            registry.gauge(name, component, unit, fn=fn)
        self._m_host_delay = registry.histogram(
            "host_delay_us", component, unit="us")
        self._m_dma_latency = registry.histogram(
            "dma_latency_us", component, unit="us")
        registry.add_flush_callback(self.flush_metric_samples)

    def flush_metric_samples(self) -> None:
        """Drain buffered histogram samples (registry flush hook)."""
        pending = self._dma_latency_pending
        if pending:
            observe = self._m_dma_latency.observe
            for value in pending:
                observe(value)
            pending.clear()
        pending = self._host_delay_pending
        if pending:
            observe = self._m_host_delay.observe
            for value in pending:
                observe(value)
            pending.clear()

    # -- receive path -------------------------------------------------------

    def receive(self, pkt: Packet) -> None:
        """A packet arrives from the wire."""
        self.rx_packets += 1
        self.rx_bytes += pkt.wire_bytes
        pkt.nic_arrival_time = self.sim.now
        occupied = self.buffer.bytes_used + self._inflight_bytes
        if occupied + pkt.wire_bytes > self.config.buffer_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += pkt.wire_bytes
            if self.tracer:
                self.tracer.emit("nic", "drop", flow=pkt.flow_id,
                                 seq=pkt.seq, occupied=occupied)
            pkt.release()
            return
        self.buffer.offer(pkt, pkt.wire_bytes)
        self._pump()

    def _pump(self) -> None:
        """Start DMAs while the head packet has descriptors and credits."""
        buffer = self.buffer
        peek = buffer.peek
        pop = buffer.pop
        rings = self.rings
        try_acquire = self.credits.try_acquire
        start_dma = self._start_dma
        while True:
            head = peek()
            if head is None:
                return
            pkt: Packet = head[0]
            ring = rings[pkt.thread_id]
            if not ring.take():
                return  # head-of-line stall until CPU replenishes
            if not try_acquire(pkt.wire_bytes):
                ring.replenish(1)  # undo; retry when credits release
                return
            pop()
            self._inflight_bytes += pkt.wire_bytes
            start_dma(pkt)

    def _start_dma(self, pkt: Packet) -> None:
        layout = self.layouts[pkt.thread_id]
        pages = layout.payload_pages(self.rng, pkt.payload_bytes)
        # Connection state is touched twice per packet: the posted-WQE
        # read and the flow-state update live on independent pages.
        pages.append(layout.conn_state_page(self.rng))
        pages.append(layout.conn_state_page(self.rng))
        pages += layout.rx_control_pages()
        translation = self.iommu.translate(pages)
        pcie_delay = self.pcie.occupy(pkt.wire_bytes)
        mem_latency = self.memory.dma_write_latency()
        total = (self.pcie.config.dma_fixed_latency
                 + translation.latency + pcie_delay + mem_latency)
        self._dma_latency_sum += total
        if self._m_dma_latency is not None:
            self._dma_latency_pending.append(total * 1e6)
        span = 0
        if self.tracer is not None and self.tracer.enabled:
            tracer = self.tracer
            tracer.emit(
                "nic", "dma_start", flow=pkt.flow_id, seq=pkt.seq,
                misses=translation.iotlb_misses, latency=total)
            # One span per DMA, plus complete sub-spans for the stages
            # whose latency is known up front: descriptor fetch →
            # IOMMU translate → PCIe transfer → memory write.
            span = tracer.begin("nic", "dma", flow=pkt.flow_id,
                                seq=pkt.seq,
                                misses=translation.iotlb_misses)
            stage_start = self.sim.now
            for stage, owner, dur in (
                ("descriptor_fetch", "nic",
                 self.pcie.config.dma_fixed_latency),
                ("translate", "iommu", translation.latency),
                ("pcie_transfer", "pcie", pcie_delay),
                ("memory_write", "memory", mem_latency),
            ):
                if dur > 0:
                    tracer.complete(owner, stage, stage_start, dur,
                                    flow=pkt.flow_id, seq=pkt.seq)
                stage_start += dur
        self.sim.call(total, self._dma_done, pkt, span)

    def _dma_done(self, pkt: Packet, span: int = 0) -> None:
        self._inflight_bytes -= pkt.wire_bytes
        self.credits.release(pkt.wire_bytes)
        pkt.dma_done_time = self.sim.now
        self.dma_completed_packets += 1
        self.dma_completed_payload_bytes += pkt.payload_bytes
        nic_delay = pkt.dma_done_time - pkt.nic_arrival_time
        self._nic_delay_sum += nic_delay
        if self._m_host_delay is not None:
            self._host_delay_pending.append(nic_delay * 1e6)
        self._traffic.bytes_pending += (pkt.payload_bytes
                                        + _CONTROL_WRITE_BYTES)
        if self.tracer:
            self.tracer.emit("nic", "dma_done", flow=pkt.flow_id,
                             seq=pkt.seq)
            self.tracer.end(span)
        self.deliver(pkt)
        self._pump()

    # -- descriptor replenishment --------------------------------------------

    def replenish(self, thread_id: int, n: int) -> None:
        """CPU gives descriptors back to queue ``thread_id``."""
        self.rings[thread_id].replenish(n)
        self._pump()

    # -- transmit path (ACKs) --------------------------------------------------

    def transmit_ack(self, ack: Ack, thread_id: int,
                     on_wire: Callable[[Ack], None]) -> None:
        """Send an ACK: its descriptor/staging pages go through the same
        IOTLB (the paper's footnote 3 counts the ACK's transactions in
        the per-packet miss budget)."""
        self._ack_countdown -= ack.acked_count
        if self._ack_countdown > 0:
            # Coalesced away; a later ACK will carry this acknowledgment.
            return
        self._ack_countdown = self.config.ack_coalescing
        layout = self.layouts[thread_id]
        pages = layout.tx_control_pages(self.rng)
        translation = self.iommu.translate(pages)
        self.acks_sent += 1
        latency = _ACK_TX_LATENCY + translation.latency
        self.sim.call(latency, on_wire, ack)

    # -- telemetry ----------------------------------------------------------

    def buffer_fraction(self) -> float:
        """Current input-buffer occupancy (0..1), inflight included."""
        return (self.buffer.bytes_used + self._inflight_bytes) / (
            self.config.buffer_bytes
        )

    def mean_nic_delay(self) -> float:
        """Mean NIC-arrival → DMA-complete latency this window."""
        if self.dma_completed_packets == 0:
            return 0.0
        return self._nic_delay_sum / self.dma_completed_packets

    def mean_dma_latency(self) -> float:
        """Mean scheduled per-DMA latency this window."""
        if self.dma_completed_packets == 0:
            return 0.0
        return self._dma_latency_sum / self.dma_completed_packets

    def drop_rate(self) -> float:
        if self.rx_packets == 0:
            return 0.0
        return self.dropped_packets / self.rx_packets

    def reset_own_stats(self) -> None:
        """Zero window counters (warmup boundary)."""
        self.rx_packets = 0
        self.rx_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.dma_completed_packets = 0
        self.dma_completed_payload_bytes = 0
        self.acks_sent = 0
        self._nic_delay_sum = 0.0
        self._dma_latency_sum = 0.0
        self.buffer.peak_bytes = self.buffer.bytes_used

    def own_snapshot(self) -> dict:
        return {
            "rx_packets": self.rx_packets,
            "dropped_packets": self.dropped_packets,
            "drop_rate": self.drop_rate(),
            "mean_dma_latency_us": self.mean_dma_latency() * 1e6,
            "mean_nic_delay_us": self.mean_nic_delay() * 1e6,
            "buffer_peak_fraction":
                self.buffer.peak_bytes / self.config.buffer_bytes,
        }
