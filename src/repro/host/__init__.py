"""The host interconnect: every component on the NIC-to-CPU datapath.

This package is the simulated substitute for the paper's hardware
testbed (Fig. 2): NIC input buffer and Rx rings, PCIe link with
credit-based flow control, IOMMU with IOTLB and page-table walker,
the memory controller shared between CPU traffic and NIC DMA, DDIO,
receiver threads, and the STREAM memory antagonist.
"""

from repro.host.addressing import (
    PAGE_4K,
    PAGE_2M,
    AddressSpaceAllocator,
    Region,
    ThreadLayout,
    build_thread_layouts,
)
from repro.host.antagonist import StreamAntagonist
from repro.host.cpu import ReceiverThread
from repro.host.host import ReceiverHost
from repro.host.iommu import Iommu, TranslationResult
from repro.host.iotlb import Iotlb
from repro.host.memory import MemoryController, TrafficCounter
from repro.host.nic import Nic, RxRing
from repro.host.pagetable import PageTable
from repro.host.pcie import PcieLink

__all__ = [
    "AddressSpaceAllocator",
    "Iommu",
    "Iotlb",
    "MemoryController",
    "Nic",
    "PAGE_2M",
    "PAGE_4K",
    "PageTable",
    "PcieLink",
    "ReceiverHost",
    "ReceiverThread",
    "Region",
    "RxRing",
    "StreamAntagonist",
    "ThreadLayout",
    "TrafficCounter",
    "TranslationResult",
    "build_thread_layouts",
]
