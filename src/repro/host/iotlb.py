"""The I/O translation lookaside buffer (IOTLB).

A small cache of completed translations inside the IOMMU; the paper's
testbed has 128 entries.  Supports fully-associative LRU (default) and
set-associative organizations; both matter: capacity misses drive the
Fig. 3 knee, and real IOTLBs add conflict misses on top.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.sim.component import Component

__all__ = ["Iotlb"]


class Iotlb(Component):
    """LRU translation cache keyed by page start address."""

    label = "iotlb"

    def __init__(self, entries: int = 128, ways: Optional[int] = None):
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        if ways is not None:
            if ways <= 0 or entries % ways != 0:
                raise ValueError(
                    f"ways ({ways}) must divide entries ({entries})"
                )
        self.entries = entries
        self.ways = ways
        self._sets: List[OrderedDict] = [
            OrderedDict()
            for _ in range(entries // ways if ways else 1)
        ]
        self._way_capacity = ways if ways else entries
        #: Fully-associative fast path: the lone set, pre-resolved so
        #: ``access`` skips the hash-mix call on every lookup.
        self._single: Optional[OrderedDict] = (
            self._sets[0] if len(self._sets) == 1 else None)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_for(self, key: int) -> OrderedDict:
        if len(self._sets) == 1:
            return self._sets[0]
        # Hash-mix the page frame number before indexing: 2 MB pages are
        # 512-frame aligned and would otherwise collapse onto a handful
        # of sets (real IOTLBs hash their index for the same reason).
        frame = key >> 12
        frame ^= frame >> 7
        frame ^= frame >> 13
        return self._sets[frame % len(self._sets)]

    def access(self, key: int) -> bool:
        """Look up ``key``; inserts it on miss.  True on hit."""
        line = self._single
        if line is None:
            # Open-coded _set_for: this runs per page per packet.
            sets = self._sets
            frame = key >> 12
            frame ^= frame >> 7
            frame ^= frame >> 13
            line = sets[frame % len(sets)]
        if key in line:
            line.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        line[key] = True
        if len(line) > self._way_capacity:
            line.popitem(last=False)
            self.evictions += 1
        return False

    def bind_own_metrics(self, registry, component: str) -> None:
        """Register hit/miss/eviction counters in ``registry``."""
        for name, fn in (
            ("hits", lambda: self.hits),
            ("misses", lambda: self.misses),
            ("evictions", lambda: self.evictions),
        ):
            registry.counter(name, component, fn=fn)
        registry.gauge("occupancy", component, unit="entries",
                       fn=lambda: float(self.occupancy))
        registry.gauge("miss_ratio", component, unit="fraction",
                       fn=self.miss_ratio)

    def contains(self, key: int) -> bool:
        """Probe without touching LRU state or stats."""
        return key in self._set_for(key)

    def invalidate(self, key: int) -> bool:
        """Drop one entry (software IOTLB invalidation); True if present."""
        line = self._set_for(key)
        if key in line:
            del line[key]
            return True
        return False

    def invalidate_all(self) -> None:
        for line in self._sets:
            line.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(line) for line in self._sets)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_own_stats(self) -> None:
        """Zero counters without dropping cached entries (used at the
        warmup/measurement boundary)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
