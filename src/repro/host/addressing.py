"""IOMMU-visible address space: pages, regions, and per-thread layouts.

The network stack registers a fixed set of mappings with the IOMMU up
front ("loose mode", paper §3.1): per receiver thread, one data region
(2 MB hugepage or 4 KB mappings) plus a handful of 4 KB control pages
(Rx/Tx descriptor rings, completion rings, ACK staging buffers).  The
NIC touches a subset of these pages for every packet; which subset is
what drives IOTLB behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = [
    "PAGE_4K",
    "PAGE_2M",
    "AddressSpaceAllocator",
    "Region",
    "ThreadLayout",
    "build_thread_layouts",
]

PAGE_4K = 4096
PAGE_2M = 2 * 2**20

#: Rx descriptors per 4 KB ring page (32 B descriptors).
_DESCS_PER_PAGE = 128
#: Completion entries per 4 KB ring page (16 B entries).
_COMPLETIONS_PER_PAGE = 256


@dataclass(frozen=True)
class Region:
    """A contiguous IOMMU-mapped virtual region with uniform page size.

    A page is identified by its starting virtual address (regions are
    disjoint, so page start addresses are globally unique keys).
    """

    base: int
    size: int
    page_size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region size must be positive, got {self.size}")
        if self.page_size not in (PAGE_4K, PAGE_2M):
            raise ValueError(f"unsupported page size {self.page_size}")
        if self.base % self.page_size != 0:
            raise ValueError(
                f"base {self.base:#x} not aligned to page size {self.page_size}"
            )
        if self.size % self.page_size != 0:
            raise ValueError(
                f"size {self.size} not a multiple of page size {self.page_size}"
            )

    @property
    def num_pages(self) -> int:
        return self.size // self.page_size

    @property
    def end(self) -> int:
        return self.base + self.size

    def page_key(self, offset: int) -> int:
        """Page (start address) containing ``offset`` into the region."""
        if not 0 <= offset < self.size:
            raise ValueError(f"offset {offset} outside region of {self.size}")
        return self.base + (offset // self.page_size) * self.page_size

    def page_keys(self) -> List[int]:
        """All page start addresses in the region."""
        return [self.base + i * self.page_size for i in range(self.num_pages)]

    def span_keys(self, offset: int, length: int) -> List[int]:
        """Pages covering ``[offset, offset + length)``."""
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        first = self.page_key(offset)
        last = self.page_key(min(offset + length - 1, self.size - 1))
        return [
            addr for addr in range(first, last + 1, self.page_size)
        ]


class AddressSpaceAllocator:
    """Bump allocator of disjoint, hugepage-aligned virtual regions."""

    def __init__(self, base: int = 1 << 40):
        self._next = base

    def allocate(self, size: int, page_size: int) -> Region:
        # Round the size up to the page size; keep every region aligned
        # to 2 MB so 4 KB and 2 MB regions can never share a hugepage.
        size = -(-size // page_size) * page_size
        base = -(-self._next // PAGE_2M) * PAGE_2M
        self._next = base + size
        return Region(base=base, size=size, page_size=page_size)


@dataclass(frozen=True)
class ThreadLayout:
    """The IOMMU footprint of one receiver thread.

    ``data`` is the Rx buffer pool (payload DMA targets); the ring
    regions are the 4 KB control pages the NIC touches on every packet.
    """

    thread_id: int
    data: Region
    rx_desc_ring: Region
    rx_completion_ring: Region
    tx_desc_ring: Region
    tx_completion_ring: Region
    ack_staging: Region
    conn_state: Region
    #: Mutable cursor state for ring-page cycling (per 128/256 entries).
    _cursor: dict = field(default_factory=lambda: {"rx": 0, "tx": 0})

    def all_regions(self) -> Sequence[Region]:
        return (
            self.data,
            self.rx_desc_ring,
            self.rx_completion_ring,
            self.tx_desc_ring,
            self.tx_completion_ring,
            self.ack_staging,
            self.conn_state,
        )

    def total_pages(self) -> int:
        """Number of IOMMU entries this thread keeps registered."""
        return sum(region.num_pages for region in self.all_regions())

    def payload_pages(self, rng: random.Random, payload_bytes: int) -> List[int]:
        """Pages written by one packet's payload DMA.

        Buffers are drawn at random from the thread's pool: the paper
        attributes IOTLB misses to "lack of locality in IOMMU access
        patterns — subsequent packets do not necessarily lie in
        contiguous memory regions".  With 4 KB mappings a 4 KB-MTU
        packet (payload + metadata) straddles two pages (paper §3.1:
        "fetching two pages instead of just a single hugepage").
        """
        # rng._randbelow(n) is exactly what randrange(n) calls for a
        # positive stop — same draw sequence, minus argument plumbing.
        data = self.data
        if data.page_size == PAGE_2M:
            return [data.base + rng._randbelow(data.num_pages) * PAGE_2M]
        slots = data.num_pages  # one 4 KB slot per page
        slot = rng._randbelow(max(slots - 1, 1))
        offset = slot * PAGE_4K
        # payload plus headers/metadata spills into the next page
        # (open-coded span_keys: offset is always in range here)
        end = offset + payload_bytes + PAGE_4K - 1
        if end >= data.size:
            end = data.size - 1
        base = data.base
        return list(range(base + offset,
                          base + (end // PAGE_4K) * PAGE_4K + 1,
                          PAGE_4K))

    def conn_state_page(self, rng: random.Random) -> int:
        """Connection-state page touched for one packet.

        Each thread serves one connection per sender (40 by default);
        their descriptors and state span several pages with packet
        arrivals interleaved across connections, so the page accessed
        per packet is effectively random within the pool.
        """
        conn = self.conn_state
        return conn.base + rng._randbelow(conn.num_pages) * PAGE_4K

    def rx_control_pages(self) -> List[int]:
        """Descriptor-fetch and completion-write pages for one Rx packet.

        Rings advance sequentially, so the hot page changes every
        ``_DESCS_PER_PAGE`` packets — control pages have high but not
        perfect locality.
        """
        cursor = self._cursor
        index = cursor["rx"]
        cursor["rx"] = index + 1
        desc = self.rx_desc_ring
        comp = self.rx_completion_ring
        return [
            desc.base
            + (index // _DESCS_PER_PAGE) % desc.num_pages * PAGE_4K,
            comp.base
            + (index // _COMPLETIONS_PER_PAGE) % comp.num_pages * PAGE_4K,
        ]

    def tx_control_pages(self, rng: random.Random) -> List[int]:
        """Descriptor, completion, and payload-staging pages for one
        transmitted ACK (the paper's footnote 3 counts the ACK's PCIe
        transactions against the same IOTLB)."""
        index = self._cursor["tx"]
        self._cursor["tx"] = index + 1
        desc_page = (index // _DESCS_PER_PAGE) % self.tx_desc_ring.num_pages
        comp_page = (
            index // _COMPLETIONS_PER_PAGE
        ) % self.tx_completion_ring.num_pages
        staging = rng._randbelow(self.ack_staging.num_pages)
        return [
            self.tx_desc_ring.page_key(desc_page * PAGE_4K),
            self.tx_completion_ring.page_key(comp_page * PAGE_4K),
            self.ack_staging.page_key(staging * PAGE_4K),
        ]


def build_thread_layouts(
    n_threads: int,
    rx_region_bytes: int,
    hugepages: bool,
    desc_ring_pages: int = 3,
    completion_ring_pages: int = 2,
    tx_desc_ring_pages: int = 2,
    tx_completion_ring_pages: int = 1,
    ack_staging_pages: int = 2,
    conn_state_pages: int = 4,
    allocator: AddressSpaceAllocator | None = None,
) -> List[ThreadLayout]:
    """Allocate the full IOMMU footprint for ``n_threads`` threads.

    With the defaults and a 12 MB hugepage data region the *active*
    footprint is 6 data + 10 control/state = 16 IOMMU entries per
    thread, so 8 threads exactly fill a 128-entry IOTLB — the knee the
    paper observes in Fig. 3.
    """
    if n_threads < 1:
        raise ValueError(f"need at least one thread, got {n_threads}")
    alloc = allocator or AddressSpaceAllocator()
    data_page = PAGE_2M if hugepages else PAGE_4K
    layouts = []
    for tid in range(n_threads):
        layouts.append(
            ThreadLayout(
                thread_id=tid,
                data=alloc.allocate(rx_region_bytes, data_page),
                rx_desc_ring=alloc.allocate(
                    desc_ring_pages * PAGE_4K, PAGE_4K),
                rx_completion_ring=alloc.allocate(
                    completion_ring_pages * PAGE_4K, PAGE_4K),
                tx_desc_ring=alloc.allocate(
                    tx_desc_ring_pages * PAGE_4K, PAGE_4K),
                tx_completion_ring=alloc.allocate(
                    tx_completion_ring_pages * PAGE_4K, PAGE_4K),
                ack_staging=alloc.allocate(
                    ack_staging_pages * PAGE_4K, PAGE_4K),
                conn_state=alloc.allocate(
                    conn_state_pages * PAGE_4K, PAGE_4K),
            )
        )
    return layouts
