"""The memory controller and bus, shared by CPUs and NIC DMA.

The model is hybrid: NIC DMA requests are discrete (each asks for its
latency at issue time), while aggregate bandwidth is fluid — demand
sources (antagonist, CPU copies, NIC writes) are tracked as rates and a
periodic tick recomputes utilization and a weighted max-min bandwidth
allocation.

Two outputs drive everything in the paper:

- ``utilization`` feeds a load-latency curve: as offered load approaches
  the achievable bandwidth, per-access latency rises steeply — the
  paper: "similar to any load-latency curve for a closed-loop system,
  the service times for PCIe write requests will also increase".
- the allocation yields per-source achieved bandwidth, the quantity in
  Fig. 6's "Total Memory Bandwidth" bars.  Under saturation CPU-class
  sources out-compete the NIC (higher weight), matching §3.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import MemoryConfig
from repro.sim.component import Component
from repro.sim.engine import Simulator

__all__ = ["MemoryController", "TrafficCounter", "queue_delay_for",
           "weighted_water_fill"]

#: Utilization below which queueing delay is negligible.
QUEUE_KNEE = 0.55
#: Convexity of the load-latency curve above the knee.
QUEUE_GAMMA = 3.0


def queue_delay_for(rho: float, config: MemoryConfig) -> float:
    """Additional per-access queueing delay at utilization ``rho``.

    Zero below the knee, then a convex rise to ``max_queue_delay`` at
    (and beyond) saturation — the load-latency curve of §3.2.
    """
    if rho <= QUEUE_KNEE:
        return 0.0
    x = min((rho - QUEUE_KNEE) / (1.0 - QUEUE_KNEE), 1.0)
    return config.max_queue_delay * x ** QUEUE_GAMMA


class TrafficCounter:
    """A byte counter that the tick turns into a demand rate (EWMA)."""

    __slots__ = ("name", "weight", "source_class", "bytes_pending", "rate_Bps")

    def __init__(self, name: str, source_class: str, weight: float):
        self.name = name
        self.source_class = source_class
        self.weight = weight
        self.bytes_pending = 0
        self.rate_Bps = 0.0

    def add(self, n_bytes: int) -> None:
        self.bytes_pending += n_bytes


class _ConstantSource:
    """A fixed-rate demand source (the STREAM antagonist)."""

    __slots__ = ("name", "weight", "source_class", "rate_Bps")

    def __init__(self, name: str, source_class: str, weight: float,
                 rate_Bps: float):
        self.name = name
        self.source_class = source_class
        self.weight = weight
        self.rate_Bps = rate_Bps


def weighted_water_fill(
    demands: List[float], weights: List[float], capacity: float
) -> List[float]:
    """Weighted max-min allocation of ``capacity`` across sources.

    Each source receives at most its demand; leftover capacity is
    redistributed in proportion to weights until exhausted.
    """
    n = len(demands)
    if n == 0:
        return []
    alloc = [0.0] * n
    active = [i for i in range(n) if demands[i] > 0]
    remaining = capacity
    while active and remaining > 1e-9:
        total_weight = sum(weights[i] for i in active)
        satisfied = [
            i for i in active
            if demands[i] - alloc[i]
            <= remaining * weights[i] / total_weight + 1e-12
        ]
        if satisfied:
            for i in satisfied:
                remaining -= demands[i] - alloc[i]
                alloc[i] = demands[i]
            active = [i for i in active if i not in set(satisfied)]
        else:
            # No source fully satisfiable: split what is left by weight.
            for i in active:
                alloc[i] += remaining * weights[i] / total_weight
            remaining = 0.0
    return alloc


class MemoryController(Component):
    """Tracks demand, computes utilization/allocation, answers latency."""

    label = "memory"

    def __init__(self, sim: Simulator, config: Optional[MemoryConfig] = None):
        self.sim = sim
        self.config = config or MemoryConfig()
        self._counters: Dict[str, TrafficCounter] = {}
        self._constants: Dict[str, _ConstantSource] = {}
        self._utilization = 0.0
        self._queue_delay = 0.0
        self._allocation: Dict[str, float] = {}
        # Time-integrals of achieved bandwidth for reporting.
        self._achieved_integral: Dict[str, float] = {}
        self._integral_since = sim.now
        self._last_tick = sim.now
        self._tick_scheduled = False
        self.start()

    # -- source registration --------------------------------------------

    def register_counter(self, name: str, source_class: str,
                         weight: Optional[float] = None) -> TrafficCounter:
        """A byte-counter source ("nic" or "cpu" class)."""
        self._check_class(source_class)
        if name in self._counters or name in self._constants:
            raise ValueError(f"duplicate memory source {name!r}")
        counter = TrafficCounter(
            name, source_class, weight
            if weight is not None else self._default_weight(source_class))
        self._counters[name] = counter
        self._achieved_integral.setdefault(name, 0.0)
        return counter

    def register_constant(self, name: str, source_class: str,
                          rate_Bps: float,
                          weight: Optional[float] = None) -> None:
        """A fixed-rate source (antagonist)."""
        self._check_class(source_class)
        if rate_Bps < 0:
            raise ValueError(f"negative rate for {name!r}")
        if name in self._counters or name in self._constants:
            raise ValueError(f"duplicate memory source {name!r}")
        self._constants[name] = _ConstantSource(
            name, source_class, weight
            if weight is not None else self._default_weight(source_class),
            rate_Bps)
        self._achieved_integral.setdefault(name, 0.0)

    def set_constant_rate(self, name: str, rate_Bps: float) -> None:
        self._constants[name].rate_Bps = rate_Bps

    def _default_weight(self, source_class: str) -> float:
        return (self.config.nic_weight if source_class == "nic"
                else self.config.cpu_weight)

    @staticmethod
    def _check_class(source_class: str) -> None:
        if source_class not in ("nic", "cpu"):
            raise ValueError(
                f"source class must be 'nic' or 'cpu', got {source_class!r}"
            )

    def bind_own_metrics(self, registry, component: str) -> None:
        """Register bus-level gauges plus one achieved-bandwidth gauge
        per demand source known at bind time (all reader-backed)."""
        registry.gauge("utilization", component, unit="fraction",
                       fn=lambda: self._utilization)
        registry.gauge("queue_delay_us", component, unit="us",
                       fn=lambda: self._queue_delay * 1e6)
        registry.gauge("bandwidth_GBps", component, unit="GB/s",
                       fn=lambda: self.total_achieved_bandwidth() / 1e9)
        for source in [*self._counters, *self._constants]:
            registry.gauge(
                f"bw_{source}_GBps", component, unit="GB/s",
                fn=lambda s=source:
                    self.achieved_bandwidth().get(s, 0.0) / 1e9)

    # -- periodic tick ----------------------------------------------------

    def start(self) -> None:
        if not self._tick_scheduled:
            self._tick_scheduled = True
            self.sim.call(self.config.tick_interval, self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        interval = now - self._last_tick
        self._last_tick = now
        if interval > 0:
            alpha = min(interval / self.config.demand_tau, 1.0)
            for counter in self._counters.values():
                instant = counter.bytes_pending / interval
                counter.bytes_pending = 0
                counter.rate_Bps += alpha * (instant - counter.rate_Bps)
        self._recompute(interval)
        self.sim.call(self.config.tick_interval, self._tick)

    def _sources(self) -> List[Tuple[str, str, float, float]]:
        """(name, class, demand, weight) for all sources."""
        out = []
        for c in self._counters.values():
            out.append((c.name, c.source_class, c.rate_Bps, c.weight))
        for c in self._constants.values():
            out.append((c.name, c.source_class, c.rate_Bps, c.weight))
        return out

    def _recompute(self, elapsed: float) -> None:
        cfg = self.config
        sources = self._sources()
        capacity = cfg.achievable_Bps
        # MBA/MPAM-style QoS: cap aggregate CPU-class demand so the NIC
        # keeps a reserved slice of the bus (paper §4 extension).
        if cfg.nic_reserved_fraction > 0:
            cpu_cap = (1.0 - cfg.nic_reserved_fraction) * capacity
            cpu_total = sum(d for _, cls, d, _ in sources if cls == "cpu")
            if cpu_total > cpu_cap:
                scale = cpu_cap / cpu_total
                sources = [
                    (n, cls, d * scale if cls == "cpu" else d, w)
                    for n, cls, d, w in sources
                ]
        total_demand = sum(d for _, _, d, _ in sources)
        self._utilization = total_demand / capacity if capacity else 0.0
        self._queue_delay = queue_delay_for(self._utilization, cfg)
        alloc = weighted_water_fill(
            [d for _, _, d, _ in sources],
            [w for _, _, _, w in sources],
            capacity,
        )
        self._allocation = {
            name: a for (name, _, _, _), a in zip(sources, alloc)
        }
        if elapsed > 0:
            for name, achieved in self._allocation.items():
                self._achieved_integral[name] = (
                    self._achieved_integral.get(name, 0.0)
                    + achieved * elapsed
                )


    # -- latency queries ---------------------------------------------------

    @property
    def utilization(self) -> float:
        """Offered load / achievable bandwidth (may exceed 1)."""
        return self._utilization

    def dma_write_latency(self) -> float:
        """Memory-side latency of one DMA write (idle + bus queueing)."""
        return self.config.idle_latency + self._queue_delay

    def walk_access_latency(self) -> float:
        """Latency of one page-table-walk read.

        Walk reads observe only a fraction of the DMA-write queueing
        inflation (they bypass the write-combining path).
        """
        return (self.config.walk_base_latency
                + self.config.walk_contention_fraction * self._queue_delay)

    # -- reporting -----------------------------------------------------------

    def reset_accounting(self) -> None:
        """Restart achieved-bandwidth integrals (warmup boundary)."""
        for name in self._achieved_integral:
            self._achieved_integral[name] = 0.0
        self._integral_since = self.sim.now

    def reset_own_stats(self) -> None:
        self.reset_accounting()

    def achieved_bandwidth(self) -> Dict[str, float]:
        """Mean achieved bytes/s per source since the last reset."""
        elapsed = self.sim.now - self._integral_since
        if elapsed <= 0:
            return {name: 0.0 for name in self._achieved_integral}
        return {
            name: integral / elapsed
            for name, integral in self._achieved_integral.items()
        }

    def total_achieved_bandwidth(self) -> float:
        return sum(self.achieved_bandwidth().values())

    def current_demands(self) -> Dict[str, float]:
        return {name: d for name, _, d, _ in self._sources()}
