"""Last-level cache model for DDIO ("direct cache access").

DDIO steers NIC DMA writes into a small dedicated slice of the LLC
(2 of 11 ways on Intel servers — a few MB).  Two regimes matter:

- **Resident**: the CPU copies a packet's payload before newer DMA
  writes push it out of the DDIO slice → copy reads hit in LLC and
  generate no DRAM read traffic.
- **Leaky DMA** (Farshin et al., ATC'20; paper citation [10]): when the
  CPU falls behind, packets sit in memory longer than the DDIO slice's
  turnover time, get evicted, and every copy becomes a DRAM read —
  *adding* memory-bus pressure exactly when the host is already
  congested.

The default accounting (:class:`~repro.host.cache.CopyTrafficModel`)
uses the paper's measured static fractions; this module is the dynamic
alternative where residency is tracked per packet, so the leaky-DMA
feedback loop is emergent.  Select it with
``DdioConfig(dynamic_llc=True)``.
"""

from __future__ import annotations

from repro.core.config import DdioConfig
from repro.host.memory import MemoryController, TrafficCounter
from repro.net.packet import Packet
from repro.sim.component import Component

__all__ = ["DynamicLlcModel"]


class DynamicLlcModel(Component):
    """Tracks DDIO-slice residency per packet.

    The DDIO slice behaves FIFO-by-bytes: a packet written when the
    cumulative write cursor was at ``w`` has been evicted once the
    cursor passes ``w + slice_bytes``.
    """

    label = "llc"

    def __init__(self, config: DdioConfig, memory: MemoryController):
        self.config = config
        self._reads: TrafficCounter = memory.register_counter(
            "cpu-copy-reads", "cpu")
        self._writes: TrafficCounter = memory.register_counter(
            "cpu-copy-writes", "cpu")
        self._write_cursor = 0
        #: write-cursor stamp per (flow_id, seq); packets are copied
        #: exactly once, shortly after DMA, so this stays small.
        self._stamps: dict = {}
        self.payload_bytes_copied = 0
        self.llc_hits = 0
        self.llc_misses = 0

    @property
    def slice_bytes(self) -> int:
        return self.config.ddio_slice_bytes

    # -- datapath hooks ------------------------------------------------------

    def record_dma_write(self, pkt: Packet) -> None:
        """NIC wrote this packet's payload into the DDIO slice."""
        if not self.config.enabled:
            return
        self._write_cursor += pkt.payload_bytes
        self._stamps[(pkt.flow_id, pkt.seq)] = self._write_cursor

    def record_copy(self, pkt_or_bytes) -> None:
        """CPU copies a packet's payload to application buffers.

        Accepts a :class:`Packet` (dynamic residency check) for the
        datapath, or a plain byte count (treated as a miss) so the
        interface stays compatible with
        :class:`~repro.host.cache.CopyTrafficModel`.
        """
        if isinstance(pkt_or_bytes, Packet):
            pkt = pkt_or_bytes
            payload = pkt.payload_bytes
            stamp = self._stamps.pop((pkt.flow_id, pkt.seq), None)
            resident = (
                self.config.enabled
                and stamp is not None
                and self._write_cursor - stamp < self.slice_bytes
            )
        else:
            payload = int(pkt_or_bytes)
            resident = False
        self.payload_bytes_copied += payload
        if resident:
            self.llc_hits += 1
        else:
            self.llc_misses += 1
            self._reads.add(payload)
        write_bytes = int(payload * self.config.copy_write_fraction)
        if write_bytes:
            self._writes.add(write_bytes)

    # -- reporting -----------------------------------------------------------

    def hit_ratio(self) -> float:
        total = self.llc_hits + self.llc_misses
        if total == 0:
            return 0.0
        return self.llc_hits / total

    def bind_own_metrics(self, registry, component: str) -> None:
        for name, fn in (
            ("payload_bytes_copied", lambda: self.payload_bytes_copied),
            ("llc_hits", lambda: self.llc_hits),
            ("llc_misses", lambda: self.llc_misses),
        ):
            registry.counter(name, component, fn=fn)
        registry.gauge("hit_ratio", component, unit="fraction",
                       fn=self.hit_ratio)

    def reset_own_stats(self) -> None:
        """Zero window counters; residency state (cursor/stamps) is the
        cache's contents and survives the warmup boundary."""
        self.payload_bytes_copied = 0
        self.llc_hits = 0
        self.llc_misses = 0
