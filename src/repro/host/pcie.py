"""The PCIe link between NIC and root complex.

Two behaviours matter for the paper:

- **Serialization**: PCIe 3.0 x16 goodput is only nominally faster than
  the 100 Gbps line rate (~110 Gbps after TLP overheads), so the link is
  modelled as a serial resource with a busy-until pointer.
- **Credit-based flow control**: a fixed number of in-flight DMA bytes.
  When credits are exhausted, "requests are enqueued in the NIC input
  buffer ... until requisite number of credits become available"
  (paper §2, step 3).  The credits themselves live in the NIC
  (:class:`repro.sim.resources.CreditPool`); this class handles rates.
"""

from __future__ import annotations

from repro.core.config import PcieConfig
from repro.sim.component import Component
from repro.sim.engine import Simulator

__all__ = ["PcieLink", "pcie_goodput_bps", "pcie_raw_bps"]

#: Per-lane transfer rate (GT/s) and line-coding efficiency by PCIe
#: generation.
_GEN_RATES = {
    1: (2.5e9, 8 / 10),
    2: (5.0e9, 8 / 10),
    3: (8.0e9, 128 / 130),
    4: (16.0e9, 128 / 130),
    5: (32.0e9, 128 / 130),
}

#: Per-TLP overhead on gen3+: 2 B framing + 2 B sequence + 16 B header
#: (4 DW, 64-bit addressing) + 4 B LCRC.
_TLP_OVERHEAD_BYTES = 24

#: Bandwidth share consumed by DLLPs (flow-control credits, acks).
_DLLP_FRACTION = 0.05


def pcie_raw_bps(gen: int = 3, lanes: int = 16) -> float:
    """Raw PCIe bandwidth after line coding (bits/s)."""
    try:
        rate, coding = _GEN_RATES[gen]
    except KeyError:
        raise ValueError(f"unsupported PCIe generation {gen}") from None
    if lanes not in (1, 2, 4, 8, 16):
        raise ValueError(f"invalid lane count {lanes}")
    return rate * coding * lanes


def pcie_goodput_bps(gen: int = 3, lanes: int = 16,
                     max_payload: int = 256) -> float:
    """Achievable DMA goodput from first principles (bits/s).

    Matches the measurements of Neugebauer et al. (SIGCOMM'18), which
    the paper cites: gen3 x16 with 256 B TLPs lands near 110 Gbps.
    """
    if max_payload <= 0:
        raise ValueError(f"invalid max payload {max_payload}")
    raw = pcie_raw_bps(gen, lanes)
    tlp_efficiency = max_payload / (max_payload + _TLP_OVERHEAD_BYTES)
    return raw * tlp_efficiency * (1 - _DLLP_FRACTION)


class PcieLink(Component):
    """Serialization and utilization accounting for the PCIe link."""

    label = "pcie"

    def __init__(self, sim: Simulator, config: PcieConfig):
        self.sim = sim
        self.config = config
        self._busy_until = 0.0
        self.bytes_transferred = 0
        self._busy_integral = 0.0
        self._accounted_until = 0.0

    def bind_own_metrics(self, registry, component: str) -> None:
        """Register link counters in ``registry``."""
        registry.counter("bytes_transferred", component, unit="bytes",
                         fn=lambda: self.bytes_transferred)
        registry.gauge(
            "utilization", component, unit="fraction",
            fn=lambda: self.utilization(
                self.sim.now - self._accounted_until))

    def transfer_time(self, n_bytes: int) -> float:
        """Pure serialization time for ``n_bytes`` at goodput rate."""
        return n_bytes * 8 / self.config.goodput_bps

    def occupy(self, n_bytes: int) -> float:
        """Claim the link for a transfer of ``n_bytes``.

        Returns the total delay from *now* until the transfer is fully
        on the far side: any wait for the link to free up, plus
        serialization.  The caller schedules its completion with it.
        """
        if n_bytes <= 0:
            raise ValueError(f"transfer must be positive, got {n_bytes}")
        now = self.sim.now
        start = max(now, self._busy_until)
        tx = self.transfer_time(n_bytes)
        self._busy_integral += tx
        self._busy_until = start + tx
        self.bytes_transferred += n_bytes
        return (start - now) + tx

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the link spent transferring."""
        if elapsed <= 0:
            return 0.0
        return min(self._busy_integral / elapsed, 1.0)

    def reset_accounting(self) -> None:
        self.bytes_transferred = 0
        self._busy_integral = 0.0
        self._accounted_until = self.sim.now

    def reset_own_stats(self) -> None:
        self.reset_accounting()
