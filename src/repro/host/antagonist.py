"""STREAM-like memory antagonist.

The paper antagonizes the memory bus with one STREAM instance per
physical core (§3.2).  For the NIC, what matters is the aggregate
load the antagonist offers to the memory controller — so the model is
a constant-rate demand source per core.  Saturation (the sublinear
bandwidth growth the paper notes beyond ~6 cores) emerges from the
controller's capacity, not from the antagonist itself.
"""

from __future__ import annotations

from repro.host.memory import MemoryController

__all__ = ["StreamAntagonist"]


class StreamAntagonist:
    """``cores`` STREAM instances, each offering ``per_core_Bps``."""

    SOURCE_NAME = "stream-antagonist"

    def __init__(
        self,
        memory: MemoryController,
        cores: int,
        per_core_Bps: float,
    ):
        if cores < 0:
            raise ValueError(f"cores must be non-negative, got {cores}")
        if per_core_Bps < 0:
            raise ValueError(f"negative per-core demand {per_core_Bps}")
        self.memory = memory
        self.cores = cores
        self.per_core_Bps = per_core_Bps
        memory.register_constant(
            self.SOURCE_NAME, "cpu", cores * per_core_Bps)

    @property
    def demand_Bps(self) -> float:
        return self.cores * self.per_core_Bps

    def set_cores(self, cores: int) -> None:
        """Change the number of antagonist cores at run time."""
        if cores < 0:
            raise ValueError(f"cores must be non-negative, got {cores}")
        self.cores = cores
        self.memory.set_constant_rate(
            self.SOURCE_NAME, cores * self.per_core_Bps)

    def achieved_Bps(self) -> float:
        """Bandwidth the antagonist actually obtained (allocation)."""
        return self.memory.achieved_bandwidth().get(self.SOURCE_NAME, 0.0)
