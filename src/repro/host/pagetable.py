"""IOMMU page table and walk-cost model.

x86-style 4-level table: a 4 KB translation walks PML4 → PDPT → PD → PT
(4 entry reads); a 2 MB translation stops at the PD (3 reads).  Real
IOMMUs cache upper-level entries in small page-walk caches (PWCs), so
an IOTLB miss usually costs one leaf read and occasionally more — the
paper: "a miss ... can trigger one or more memory accesses (depending
on what page entry level was already cached)".
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Tuple

from repro.host.addressing import PAGE_4K, Region

__all__ = ["PageTable", "TranslationFault"]

# Address bits consumed per level, leaf-most first (x86-64 radix).
_LEVEL_SHIFTS_4K = (12, 21, 30, 39)   # PT, PD, PDPT, PML4
_LEVEL_SHIFTS_2M = (21, 30, 39)       # PD, PDPT, PML4


class TranslationFault(LookupError):
    """DMA to an address with no IOMMU mapping (would be an IOMMU fault
    and a dropped transaction on real hardware)."""


class _LruSet(OrderedDict):
    """Tiny LRU used for each page-walk-cache level."""

    def __init__(self, capacity: int):
        super().__init__()
        self.capacity = capacity

    def probe(self, key: int) -> bool:
        """True on hit; inserts/refreshes the entry either way."""
        if self.capacity == 0:
            return False
        if key in self:
            self.move_to_end(key)
            return True
        self[key] = True
        if len(self) > self.capacity:
            self.popitem(last=False)
        return False


class PageTable:
    """Registered IOMMU mappings plus per-level walk caches."""

    def __init__(self, walk_cache_entries: int = 32):
        if walk_cache_entries < 0:
            raise ValueError("walk_cache_entries must be non-negative")
        #: page start address -> page size
        self._entries: Dict[int, int] = {}
        # One PWC per non-leaf level (PD, PDPT, PML4 indices).
        self._walk_caches: Tuple[_LruSet, ...] = tuple(
            _LruSet(walk_cache_entries) for _ in range(3)
        )
        self.walks = 0
        self.walk_memory_accesses = 0

    # -- mapping management -------------------------------------------------

    def register_region(self, region: Region) -> None:
        for key in region.page_keys():
            self._entries[key] = region.page_size

    def unregister_region(self, region: Region) -> None:
        for key in region.page_keys():
            self._entries.pop(key, None)

    @property
    def entry_count(self) -> int:
        """Total pages currently registered (the paper's "number of
        active pages registered to IOMMU")."""
        return len(self._entries)

    def is_mapped(self, page_key: int) -> bool:
        return page_key in self._entries

    def page_size_of(self, page_key: int) -> int:
        try:
            return self._entries[page_key]
        except KeyError:
            raise TranslationFault(
                f"no IOMMU mapping for page {page_key:#x}"
            ) from None

    # -- walking ------------------------------------------------------------

    def walk(self, page_key: int) -> int:
        """Walk the table for ``page_key``; returns memory accesses needed.

        The leaf entry always costs one access; each upper level whose
        entry misses the corresponding walk cache costs one more.
        Raises :class:`TranslationFault` for unmapped pages.
        """
        page_size = self.page_size_of(page_key)
        shifts = _LEVEL_SHIFTS_4K if page_size == PAGE_4K else _LEVEL_SHIFTS_2M
        accesses = 1  # the leaf entry read
        # Upper levels, nearest first: PD(/PDPT/PML4) for 4 KB pages.
        for cache, shift in zip(self._walk_caches, shifts[1:]):
            if not cache.probe(page_key >> shift):
                accesses += 1
        self.walks += 1
        self.walk_memory_accesses += accesses
        return accesses

    # -- introspection ------------------------------------------------------

    def mean_walk_accesses(self) -> float:
        if self.walks == 0:
            return 0.0
        return self.walk_memory_accesses / self.walks

    def registered_regions_footprint(
        self, regions: Iterable[Region]
    ) -> List[int]:
        """Page keys of ``regions`` that are registered (test helper)."""
        return [
            key
            for region in regions
            for key in region.page_keys()
            if key in self._entries
        ]
