"""The assembled receiver host (paper Fig. 2).

Wires every interconnect component together and exposes the three
interfaces the rest of the system uses:

- the fabric delivers packets via :meth:`ReceiverHost.deliver_packet`;
- the transport receiver is attached with :meth:`attach_receiver` and
  gets each packet after CPU processing;
- ACKs flow back out through :meth:`send_ack`, stamped with the host
  signals (NIC buffer occupancy, memory utilization) that the §4
  extension transport consumes.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.core.config import HostConfig
from repro.host.addressing import ThreadLayout, build_thread_layouts
from repro.host.antagonist import StreamAntagonist
from repro.host.cache import CopyTrafficModel
from repro.host.cpu import ReceiverThread
from repro.host.iommu import Iommu
from repro.host.iotlb import Iotlb
from repro.host.memory import MemoryController
from repro.host.nic import Nic
from repro.host.pagetable import PageTable
from repro.host.pcie import PcieLink
from repro.net.packet import Ack, Packet
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.resources import CreditPool
from repro.sim.tracing import Tracer

__all__ = ["ReceiverHost"]


class ReceiverHost(Component):
    """One receiver machine: NIC, PCIe, IOMMU, memory, CPU threads."""

    label = "host"

    def __init__(
        self,
        sim: Simulator,
        config: HostConfig,
        rng: random.Random,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.config = config
        self.memory = MemoryController(sim, config.memory)
        self.pagetable = PageTable(config.iommu.walk_cache_entries)
        self.iotlb = Iotlb(config.iommu.iotlb_entries,
                           ways=config.iommu.iotlb_ways)
        self.iommu = Iommu(config.iommu, self.iotlb, self.pagetable,
                           self.memory)
        self.layouts: List[ThreadLayout] = build_thread_layouts(
            config.cpu.cores,
            config.rx_region_bytes,
            config.hugepages,
            desc_ring_pages=config.nic.desc_ring_pages,
            completion_ring_pages=config.nic.completion_ring_pages,
            tx_desc_ring_pages=config.nic.tx_desc_ring_pages,
            tx_completion_ring_pages=config.nic.tx_completion_ring_pages,
            ack_staging_pages=config.nic.ack_staging_pages,
            conn_state_pages=config.nic.conn_state_pages,
        )
        for layout in self.layouts:
            for region in layout.all_regions():
                self.pagetable.register_region(region)
        self.pcie = PcieLink(sim, config.pcie)
        self.credits = CreditPool(sim, config.pcie.max_inflight_bytes)
        self.nic = Nic(
            sim,
            config.nic,
            self.pcie,
            self.credits,
            self.iommu,
            self.memory,
            self.layouts,
            rng,
            deliver=self._on_dma_complete,
            tracer=tracer,
        )
        if config.ddio.dynamic_llc:
            from repro.host.llc import DynamicLlcModel

            self.copy_model = DynamicLlcModel(config.ddio, self.memory)
        else:
            self.copy_model = CopyTrafficModel(config.ddio, self.memory)
        self.threads: List[ReceiverThread] = [
            ReceiverThread(
                sim,
                thread_id=tid,
                config=config.cpu,
                nic=self.nic,
                memory=self.memory,
                copy_model=self.copy_model,
                on_processed=self._on_processed,
                replenish_batch=config.nic.replenish_batch,
                tracer=tracer,
            )
            for tid in range(config.cpu.cores)
        ]
        self.antagonist = StreamAntagonist(
            self.memory, config.antagonist_cores,
            config.antagonist_per_core_Bps)
        # The second NUMA node: its own memory controller, populated
        # only by antagonists that were scheduled away from the NIC
        # (paper §4's coordinated congestion response).
        self.remote_memory = MemoryController(sim, config.memory)
        self.remote_antagonist = StreamAntagonist(
            self.remote_memory, config.remote_antagonist_cores,
            config.antagonist_per_core_Bps)
        self._receiver: Optional[Callable[[Packet], None]] = None
        self._ack_egress: Optional[Callable[[Ack], None]] = None
        self._stats_since = sim.now
        sim.call(config.cpu.descriptor_flush_interval, self._flush_tick)

    # -- wiring ---------------------------------------------------------------

    def children(self):
        """Every stats-bearing part, named by its historical metric
        namespace (relative to this host's own prefix)."""
        return (
            [("nic", self.nic),
             ("iommu", self.iommu),
             ("iotlb", self.iotlb),
             ("pcie", self.pcie),
             ("memory", self.memory),
             ("remote_memory", self.remote_memory),
             ("copy", self.copy_model)]
            + [(f"cpu{t.thread_id}", t) for t in self.threads]
        )

    def bind_own_metrics(self, registry, component: str) -> None:
        """Host-level derived gauges (component parts register their
        own observables through the :class:`Component` recursion)."""
        for name, unit, fn in (
            ("app_throughput_gbps", "Gbps",
             lambda: self.app_throughput_bps() / 1e9),
            ("wire_arrival_gbps", "Gbps",
             lambda: self.wire_arrival_bps() / 1e9),
            ("iotlb_misses_per_packet", "misses/pkt",
             self.iotlb_misses_per_packet),
            ("iommu_entries", "entries",
             lambda: float(self.pagetable.entry_count)),
        ):
            registry.gauge(name, component, unit, fn=fn)

    def attach_receiver(self, receiver: Callable[[Packet], None]) -> None:
        """Transport-layer hook, called once per processed packet."""
        self._receiver = receiver

    def attach_ack_egress(self, egress: Callable[[Ack], None]) -> None:
        """Fabric hook for ACKs leaving the host."""
        self._ack_egress = egress

    # -- datapath -------------------------------------------------------------

    def deliver_packet(self, pkt: Packet) -> None:
        """Entry point from the access link."""
        self.nic.receive(pkt)

    def _on_dma_complete(self, pkt: Packet) -> None:
        self.copy_model.record_dma_write(pkt)
        self.threads[pkt.thread_id].enqueue(pkt)

    def _on_processed(self, pkt: Packet) -> None:
        if self._receiver is not None:
            self._receiver(pkt)

    def send_ack(self, ack: Ack, thread_id: int) -> None:
        """Transport receiver sends an ACK back to a sender."""
        if self._ack_egress is None:
            raise RuntimeError("no ACK egress attached to host")
        ack.nic_buffer_fraction = self.nic.buffer_fraction()
        ack.memory_utilization = min(self.memory.utilization, 1.0)
        self.nic.transmit_ack(ack, thread_id, self._ack_egress)

    def _flush_tick(self) -> None:
        for thread in self.threads:
            thread.flush_descriptors()
        self.sim.call(self.config.cpu.descriptor_flush_interval,
                      self._flush_tick)

    # -- telemetry ------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        return self.sim.now - self._stats_since

    def app_throughput_bps(self) -> float:
        """Application-level goodput (processed payload bits/s)."""
        if self.elapsed <= 0:
            return 0.0
        payload = sum(t.processed_payload_bytes for t in self.threads)
        return payload * 8 / self.elapsed

    def wire_arrival_bps(self) -> float:
        """Offered load on the access link, including drops."""
        if self.elapsed <= 0:
            return 0.0
        return self.nic.rx_bytes * 8 / self.elapsed

    def drop_rate(self) -> float:
        return self.nic.drop_rate()

    def iotlb_misses_per_packet(self) -> float:
        """All IOTLB misses (Rx and ACK-Tx translations) per received
        data packet — the paper's Fig. 3/4/5 right-hand metric."""
        if self.nic.dma_completed_packets == 0:
            return 0.0
        return self.iommu.total_misses / self.nic.dma_completed_packets

    def registered_iommu_entries(self) -> int:
        return self.pagetable.entry_count

    def snapshot(self) -> Dict[str, float]:
        """All headline metrics for the current measurement window.

        Deliberately overrides the :class:`Component` recursion: this
        flat dict is the stable reporting surface that
        ``ExperimentHandle.collect()`` and the sweep CSVs are built on.
        """
        return {
            "app_throughput_gbps": self.app_throughput_bps() / 1e9,
            "wire_arrival_gbps": self.wire_arrival_bps() / 1e9,
            "drop_rate": self.drop_rate(),
            "iotlb_misses_per_packet": self.iotlb_misses_per_packet(),
            "memory_utilization": self.memory.utilization,
            "memory_total_GBps": self.memory.total_achieved_bandwidth() / 1e9,
            "mean_dma_latency_us": self.nic.mean_dma_latency() * 1e6,
            "mean_nic_delay_us": self.nic.mean_nic_delay() * 1e6,
            "nic_buffer_peak_fraction":
                self.nic.buffer.peak_bytes / self.config.nic.buffer_bytes,
            "iommu_entries": float(self.pagetable.entry_count),
            "remote_memory_GBps":
                self.remote_memory.total_achieved_bandwidth() / 1e9,
        }

    def reset_own_stats(self) -> None:
        """Warmup boundary: restart the host's rate clock (component
        counters are zeroed by the :class:`Component` recursion)."""
        self._stats_since = self.sim.now
