"""The IOMMU: translation orchestration for DMA requests.

For each page a DMA touches: probe the NIC-side device TLB if ATS is
configured (paper §4 extension), then the IOTLB; on miss, walk the page
table — each walk step is a memory access whose latency comes from the
(possibly contended) memory controller.  This is where the paper's two
root causes compound: IOTLB misses add memory accesses, and memory-bus
contention makes each of those accesses slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.config import IommuConfig
from repro.host.iotlb import Iotlb
from repro.host.memory import MemoryController
from repro.host.pagetable import PageTable
from repro.sim.component import Component

__all__ = ["Iommu", "TranslationResult", "ZERO_TRANSLATION"]


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of translating all pages of one DMA."""

    latency: float
    accesses: int           # pages looked up
    iotlb_misses: int
    walk_memory_accesses: int


#: Translation outcome when the IOMMU is disabled (free passthrough).
ZERO_TRANSLATION = TranslationResult(0.0, 0, 0, 0)


class Iommu(Component):
    """Translates NIC-visible virtual addresses to physical addresses."""

    label = "iommu"

    def __init__(
        self,
        config: IommuConfig,
        iotlb: Iotlb,
        pagetable: PageTable,
        memory: MemoryController,
    ):
        self.config = config
        self.iotlb = iotlb
        self.pagetable = pagetable
        self.memory = memory
        self.device_tlb: Optional[Iotlb] = (
            Iotlb(config.device_tlb_entries)
            if config.device_tlb_entries > 0 else None
        )
        # Counters (per measurement window; reset with reset_stats()).
        self.translations = 0
        self.page_accesses = 0
        self.total_misses = 0
        self.total_walk_accesses = 0

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def children(self):
        """The NIC-side device TLB (when ATS is configured).

        The host-side IOTLB is deliberately *not* a child: the host owns
        and resets it directly, and its historical flat metric namespace
        (``iotlb.*``) lives beside — not under — ``iommu.*``.
        """
        if self.device_tlb is not None:
            return (("device_tlb", self.device_tlb),)
        return ()

    def bind_own_metrics(self, registry, component: str) -> None:
        """Register translation counters (reader-backed, zero hot-path
        cost) in ``registry``."""
        for name, fn in (
            ("translations", lambda: self.translations),
            ("page_accesses", lambda: self.page_accesses),
            ("iotlb_misses", lambda: self.total_misses),
            ("walk_memory_accesses", lambda: self.total_walk_accesses),
        ):
            registry.counter(name, component, fn=fn)
        registry.gauge("misses_per_translation", component,
                       fn=self.misses_per_translation)

    def translate(self, page_keys: Iterable[int]) -> TranslationResult:
        """Translate every page in ``page_keys`` for one DMA.

        With memory protection disabled this is free: "if memory
        protection is not enabled, no address translation is needed"
        (paper §2).
        """
        if not self.config.enabled:
            return ZERO_TRANSLATION
        latency = 0.0
        accesses = 0
        misses = 0
        walk_accesses = 0
        hit_latency = self.config.iotlb_hit_latency
        iotlb_access = self.iotlb.access
        walk = self.pagetable.walk
        walk_access_latency = self.memory.walk_access_latency
        device_tlb = self.device_tlb
        if device_tlb is None:
            for key in page_keys:
                accesses += 1
                if iotlb_access(key):
                    latency += hit_latency
                    continue
                misses += 1
                steps = walk(key)
                walk_accesses += steps
                latency += steps * walk_access_latency()
        else:
            device_access = device_tlb.access
            for key in page_keys:
                accesses += 1
                if device_access(key):
                    # ATS hit on the NIC: no IOMMU traffic at all.
                    latency += hit_latency
                    continue
                if iotlb_access(key):
                    latency += hit_latency
                    continue
                misses += 1
                steps = walk(key)
                walk_accesses += steps
                latency += steps * walk_access_latency()
        self.translations += 1
        self.page_accesses += accesses
        self.total_misses += misses
        self.total_walk_accesses += walk_accesses
        return TranslationResult(latency, accesses, misses, walk_accesses)

    def misses_per_translation(self) -> float:
        """Mean IOTLB misses per DMA (the paper's "IOTLB misses per
        packet" when one translation covers one packet)."""
        if self.translations == 0:
            return 0.0
        return self.total_misses / self.translations

    def reset_stats(self) -> None:
        """Zero window counters (warmup boundary); cache state is kept.

        Also cascades to the host-side IOTLB for callers that treat the
        IOMMU as the translation unit's front door (the device TLB is a
        child, so the :class:`Component` recursion covers it).
        """
        super().reset_stats()
        self.iotlb.reset_stats()

    def reset_own_stats(self) -> None:
        self.translations = 0
        self.page_accesses = 0
        self.total_misses = 0
        self.total_walk_accesses = 0
