"""Receiver threads: per-packet processing and descriptor replenishment.

Each thread runs on a dedicated core (paper §3 setup) and serves its
queue of DMA-completed packets at a fixed per-core rate (the paper's
CPU-bottlenecked region: throughput linear in cores up to 8 × 11.5 Gbps
≈ 92 Gbps).  Processing a packet copies its payload to application
buffers — memory traffic accounted through
:class:`~repro.host.cache.CopyTrafficModel` — and returns descriptors
to the NIC in batches.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.core.config import CpuConfig
from repro.host.cache import CopyTrafficModel
from repro.host.memory import MemoryController
from repro.host.nic import Nic
from repro.net.packet import Packet
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.tracing import Tracer

__all__ = ["ReceiverThread"]


class ReceiverThread(Component):
    """One receive-processing thread pinned to one core."""

    def __init__(
        self,
        sim: Simulator,
        thread_id: int,
        config: CpuConfig,
        nic: Nic,
        memory: MemoryController,
        copy_model: CopyTrafficModel,
        on_processed: Callable[[Packet], None],
        replenish_batch: int = 32,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.thread_id = thread_id
        self.label = f"cpu{thread_id}"
        self.config = config
        self.nic = nic
        self.memory = memory
        self.copy_model = copy_model
        self.on_processed = on_processed
        self.replenish_batch = replenish_batch
        self.tracer = tracer
        # Hot-path hoists (config is immutable after construction).
        self._core_rate_bps = config.core_rate_bps
        self._contention_slowdown = config.contention_slowdown
        self._queue: Deque[Packet] = deque()
        self._busy = False
        self._pending_descriptors = 0
        # Window counters.
        self.processed_packets = 0
        self.processed_payload_bytes = 0
        self._busy_time = 0.0
        self._queue_delay_sum = 0.0

    def __len__(self) -> int:
        return len(self._queue)

    # -- packet intake --------------------------------------------------------

    def enqueue(self, pkt: Packet) -> None:
        """Called by the host when the NIC finishes a packet's DMA."""
        self._queue.append(pkt)
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        pkt = self._queue.popleft()
        service = self._service_time(pkt)
        self._busy_time += service
        span = 0
        if self.tracer is not None and self.tracer.enabled:
            span = self.tracer.begin(f"cpu{self.thread_id}", "process",
                                     flow=pkt.flow_id, seq=pkt.seq)
        self.sim.call(service, self._finish, pkt, span)

    def _service_time(self, pkt: Packet) -> float:
        """Per-packet processing time; copies stall when the memory bus
        is saturated, inflating service time by up to
        ``contention_slowdown``."""
        base = pkt.payload_bytes * 8 / self._core_rate_bps
        contention = self.memory.utilization
        if contention > 1.0:
            contention = 1.0
        return base * (1.0 + self._contention_slowdown * contention)

    def _finish(self, pkt: Packet, span: int = 0) -> None:
        if span and self.tracer is not None:
            self.tracer.end(span)
        pkt.cpu_done_time = self.sim.now
        self.processed_packets += 1
        self.processed_payload_bytes += pkt.payload_bytes
        if pkt.dma_done_time is not None:
            self._queue_delay_sum += self.sim.now - pkt.dma_done_time
        self.copy_model.record_copy(pkt)
        self._pending_descriptors += 1
        if self._pending_descriptors >= self.replenish_batch:
            self.nic.replenish(self.thread_id, self._pending_descriptors)
            self._pending_descriptors = 0
        self.on_processed(pkt)
        self._start_next()

    def flush_descriptors(self) -> None:
        """Return any batched descriptors immediately (idle housekeeping,
        so a quiet thread cannot strand descriptors)."""
        if self._pending_descriptors:
            self.nic.replenish(self.thread_id, self._pending_descriptors)
            self._pending_descriptors = 0

    # -- telemetry -------------------------------------------------------------

    def bind_own_metrics(self, registry, component: str) -> None:
        """Register per-thread counters (reader-backed) in ``registry``.

        The default component label is ``cpu<thread_id>`` so every
        thread instance enumerates separately.
        """
        registry.counter("processed_packets", component,
                         fn=lambda: self.processed_packets)
        registry.counter("processed_payload_bytes", component, unit="bytes",
                         fn=lambda: self.processed_payload_bytes)
        registry.gauge("queue_depth", component, unit="packets",
                       fn=lambda: float(len(self._queue)))
        registry.gauge("mean_queue_delay_us", component, unit="us",
                       fn=lambda: self.mean_queue_delay() * 1e6)

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(self._busy_time / elapsed, 1.0)

    def mean_queue_delay(self) -> float:
        """Mean DMA-done → processing-complete delay this window."""
        if self.processed_packets == 0:
            return 0.0
        return self._queue_delay_sum / self.processed_packets

    def reset_own_stats(self) -> None:
        self.processed_packets = 0
        self.processed_payload_bytes = 0
        self._busy_time = 0.0
        self._queue_delay_sum = 0.0
