"""Swift congestion control (Kumar et al., SIGCOMM'20).

The protocol the paper's production cluster runs.  Delay-based AIMD
with two separately-targeted delay components:

- *fabric delay* (RTT minus time spent at the receiver host) against a
  fabric target;
- *host (endpoint) delay* — NIC queueing + DMA + CPU processing at the
  receiver, echoed in each ACK — against the 100 µs host target the
  paper discusses at length.

Additive increase while both delays are under target; multiplicative
decrease proportional to the excess, at most once per RTT.  Windows
below one packet are enforced by pacing in the connection layer.
"""

from __future__ import annotations

from repro.core.config import SwiftConfig
from repro.net.packet import Ack
from repro.transport.registry import register

__all__ = ["SwiftCC", "make_cc"]


@register("swift")
class SwiftCC:
    """One flow's Swift state."""

    def __init__(self, config: SwiftConfig, initial_cwnd: float = 2.0):
        self.config = config
        self._cwnd = min(max(initial_cwnd, config.min_cwnd),
                         config.max_cwnd)
        self._last_decrease = -1e9
        self._srtt = 25e-6
        # Introspection counters.
        self.increases = 0
        self.decreases = 0
        self.host_triggered_decreases = 0

    def cwnd(self) -> float:
        return self._cwnd

    def _clamp(self) -> None:
        cfg = self.config
        self._cwnd = min(max(self._cwnd, cfg.min_cwnd), cfg.max_cwnd)

    def _can_decrease(self, now: float) -> bool:
        return now - self._last_decrease >= self._srtt

    def fabric_target(self) -> float:
        """Flow-scaled fabric delay target (Swift §3.2).

        Small-cwnd flows get a larger target: with hundreds of incast
        flows each holding a fraction of a packet, a fixed target makes
        every flow cut in the same RTT and the fleet oscillates;
        the ``alpha/sqrt(cwnd)`` term staggers the cuts.
        """
        cfg = self.config
        scaling = min(
            cfg.flow_scaling_alpha / max(self._cwnd, cfg.min_cwnd) ** 0.5,
            cfg.flow_scaling_max,
        )
        return cfg.fabric_target + scaling

    def on_ack(self, rtt: float, ack: Ack, now: float) -> None:
        cfg = self.config
        self._srtt += 0.125 * (rtt - self._srtt)
        host_delay = ack.host_delay
        fabric_delay = max(rtt - host_delay, 0.0)
        # Normalized excess over the binding target.
        host_ratio = host_delay / cfg.host_target
        fabric_ratio = fabric_delay / self.fabric_target()
        ratio = max(host_ratio, fabric_ratio)
        if host_ratio <= 1.0 and fabric_ratio <= cfg.hold_threshold:
            # Additive increase, spread across the acks of one window.
            # Note the asymmetry: the fabric loop has a hold band just
            # below target (damps synchronized incast oscillation), but
            # the host loop increases right up to its target — which is
            # precisely why Swift is blind to host congestion whose
            # queueing delay is capped below the host target by the
            # small NIC buffer (paper §3.1).
            self._cwnd += cfg.additive_increase / max(self._cwnd, 1.0)
            self.increases += 1
        elif ratio <= 1.0:
            pass  # fabric hold band: neither grow nor cut
        elif self._can_decrease(now):
            excess = (ratio - 1.0) / ratio
            factor = max(1.0 - cfg.beta * excess, 1.0 - cfg.max_mdf)
            self._cwnd *= factor
            self._last_decrease = now
            self.decreases += 1
            if host_ratio >= fabric_ratio:
                self.host_triggered_decreases += 1
        self._clamp()

    def on_loss(self, now: float) -> None:
        if self._can_decrease(now):
            self._cwnd *= 1.0 - self.config.max_mdf
            self._last_decrease = now
            self.decreases += 1
            self._clamp()

    def on_timeout(self, now: float) -> None:
        self._cwnd = self.config.min_cwnd
        self._last_decrease = now
        self.decreases += 1


def make_cc(name: str, swift_config: SwiftConfig, initial_cwnd: float = 2.0):
    """Back-compat alias for :func:`repro.transport.registry.create`.

    The factory now lives in the registry so protocols register
    themselves instead of being enumerated here.
    """
    from repro.transport.registry import create

    return create(name, swift_config, initial_cwnd)
