"""Congestion-control registry: name → factory, one entry per protocol.

Every CC module registers its class at import time with
:func:`register`; config validation, scenario specs, and the CLI read
:func:`available` instead of a hard-coded tuple, so adding a protocol
is one new module that registers itself — no edits elsewhere.

The registry is a *leaf* module (it imports nothing from ``repro``):
``repro.core.config`` reaches it through a function-scope import, and
the built-in protocol modules are imported lazily on first lookup so
the names are present no matter which module the process touched first.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, Tuple, Type

__all__ = ["available", "create", "register"]

#: name -> CC class; every class takes ``(swift_config, initial_cwnd)``.
_FACTORIES: Dict[str, Callable] = {}

#: Modules shipped with the package that self-register on import, in
#: the order their names are reported (the paper's protocol first).
_BUILTIN_MODULES = (
    "repro.transport.swift",
    "repro.transport.dctcp",
    "repro.transport.cubic",
    "repro.transport.hostcc",
    "repro.transport.timely",
)

#: Canonical reporting order: the paper's protocol first, then the
#: baselines; protocols registered from outside sort after them.
_BUILTIN_ORDER = ("swift", "dctcp", "cubic", "hostcc", "timely")

_builtins_loaded = False


def register(name: str) -> Callable[[Type], Type]:
    """Class decorator registering a congestion-control factory.

    The decorated class must be constructible as
    ``cls(swift_config, initial_cwnd)``.  Re-registering a name with a
    different factory raises — two protocols cannot share a name.
    """

    def decorate(cls: Type) -> Type:
        existing = _FACTORIES.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"congestion control {name!r} is already registered "
                f"to {existing!r}")
        _FACTORIES[name] = cls
        return cls

    return decorate


def _ensure_builtins() -> None:
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)


def available() -> Tuple[str, ...]:
    """All registered protocol names (built-ins first, stable order)."""
    _ensure_builtins()
    builtins = tuple(n for n in _BUILTIN_ORDER if n in _FACTORIES)
    extras = tuple(sorted(n for n in _FACTORIES
                          if n not in _BUILTIN_ORDER))
    return builtins + extras


def create(name: str, swift_config, initial_cwnd: float = 2.0):
    """Instantiate the congestion control registered under ``name``."""
    _ensure_builtins()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {name!r}; "
            f"expected one of {available()}") from None
    return factory(swift_config, initial_cwnd)
