"""Transport layer: congestion control protocols and endpoints.

- :mod:`repro.transport.swift` — Swift (the paper's protocol): delay
  AIMD with separate fabric and host target delays.
- :mod:`repro.transport.dctcp` — DCTCP baseline (ECN-fraction AIMD).
- :mod:`repro.transport.cubic` — CUBIC baseline (loss-based).
- :mod:`repro.transport.hostcc` — the paper-§4 extension: sub-RTT
  response to explicit host congestion signals.
- :mod:`repro.transport.base` — sender connection state machine (loss
  detection, RTO, pacing) shared by all protocols.
- :mod:`repro.transport.receiver` — receiver endpoint generating ACKs
  with host-delay echo.
- :mod:`repro.transport.registry` — name → factory map every protocol
  registers into; config validation and scenario specs read it.
"""

from repro.transport.base import Connection, CongestionControl
from repro.transport.cubic import CubicCC
from repro.transport.dctcp import DctcpCC
from repro.transport.hostcc import HostSignalCC
from repro.transport.receiver import ReceiverEndpoint
from repro.transport.registry import available, create, register
from repro.transport.swift import SwiftCC, make_cc
from repro.transport.timely import TimelyCC

__all__ = [
    "CongestionControl",
    "Connection",
    "CubicCC",
    "DctcpCC",
    "HostSignalCC",
    "ReceiverEndpoint",
    "SwiftCC",
    "TimelyCC",
    "available",
    "create",
    "make_cc",
    "register",
]
