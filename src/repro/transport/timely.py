"""TIMELY (Mittal et al., SIGCOMM'15) — RTT-gradient baseline.

An additional delay-based point of comparison: where Swift compares
delay against absolute targets, TIMELY reacts to the *gradient* of the
RTT signal, with absolute guard thresholds (T_low, T_high).  Like
Swift, it consumes end-to-end RTT and therefore shares the structural
blind spot the paper describes — the NIC buffer saturates the signal
below any useful threshold.
"""

from __future__ import annotations

from repro.core.config import SwiftConfig
from repro.net.packet import Ack
from repro.transport.registry import register

__all__ = ["TimelyCC"]


@register("timely")
class TimelyCC:
    """One flow's TIMELY state (window-based adaptation)."""

    #: Guard thresholds on absolute RTT.
    T_LOW = 50e-6
    T_HIGH = 500e-6
    #: EWMA gain for the RTT-difference filter.
    ALPHA = 0.46
    #: Multiplicative-decrease sensitivity to the normalized gradient.
    BETA = 0.26
    #: Additive step (packets) and HAI multiplier.
    DELTA = 0.15
    HAI_THRESHOLD = 5
    #: Gradient normalization (minimum RTT scale).
    MIN_RTT = 20e-6

    def __init__(self, config: SwiftConfig, initial_cwnd: float = 2.0):
        self.config = config
        self._cwnd = min(max(initial_cwnd, config.min_cwnd),
                         config.max_cwnd)
        self._prev_rtt: float | None = None
        self._rtt_diff = 0.0
        self._negative_gradients = 0
        self._last_decrease = -1e9
        self._srtt = 25e-6

    def cwnd(self) -> float:
        return self._cwnd

    def _clamp(self) -> None:
        cfg = self.config
        self._cwnd = min(max(self._cwnd, cfg.min_cwnd), cfg.max_cwnd)

    def on_ack(self, rtt: float, ack: Ack, now: float) -> None:
        self._srtt += 0.125 * (rtt - self._srtt)
        if self._prev_rtt is None:
            self._prev_rtt = rtt
            return
        new_diff = rtt - self._prev_rtt
        self._prev_rtt = rtt
        self._rtt_diff += self.ALPHA * (new_diff - self._rtt_diff)
        gradient = self._rtt_diff / self.MIN_RTT

        if rtt < self.T_LOW:
            self._increase(hai=False)
        elif rtt > self.T_HIGH:
            # Absolute guard: cut hard, bounded per RTT.
            if now - self._last_decrease >= self._srtt:
                self._cwnd *= max(1 - self.BETA * (1 - self.T_HIGH / rtt),
                                  1 - self.config.max_mdf)
                self._last_decrease = now
        elif gradient <= 0:
            self._negative_gradients += 1
            self._increase(
                hai=self._negative_gradients >= self.HAI_THRESHOLD)
        else:
            self._negative_gradients = 0
            if now - self._last_decrease >= self._srtt:
                factor = max(1.0 - self.BETA * min(gradient, 1.0),
                             1.0 - self.config.max_mdf)
                self._cwnd *= factor
                self._last_decrease = now
        self._clamp()

    def _increase(self, hai: bool) -> None:
        step = self.DELTA * (5 if hai else 1)
        self._cwnd += step / max(self._cwnd, 1.0)
        self._clamp()

    def on_loss(self, now: float) -> None:
        if now - self._last_decrease >= self._srtt:
            self._cwnd *= 1.0 - self.config.max_mdf
            self._last_decrease = now
            self._clamp()

    def on_timeout(self, now: float) -> None:
        self._cwnd = self.config.min_cwnd
        self._last_decrease = now
