"""Receiver transport endpoint.

Gets each packet after CPU processing, generates an ACK carrying the
echoed send timestamp and the measured host delay (Swift's endpoint
signal), and tracks remote-read (message) completion latency — the
application-level metric the paper's intro cares about ("hundreds of
microseconds of tail latency").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.net.packet import Ack, Packet
from repro.sim.component import Component

__all__ = ["ReceiverEndpoint"]


class _FlowState:
    __slots__ = ("received", "messages_done", "message_latencies",
                 "read_counts")

    def __init__(self):
        self.received: Set[int] = set()
        self.messages_done = 0
        self.message_latencies: List[float] = []
        #: read_id -> distinct packets seen; a read completes when its
        #: count reaches packets-per-read (each distinct seq maps to
        #: exactly one read, so this equals the full-range membership
        #: scan it replaces, without the O(packets_per_read) probe).
        self.read_counts: Dict[int, int] = {}


class ReceiverEndpoint(Component):
    """Per-host receiver transport: ACK generation + read accounting."""

    label = "receiver"

    def __init__(
        self,
        send_ack: Callable[[Ack, int], None],
        packets_per_read: int,
        now: Callable[[], float],
        max_latency_samples: int = 200_000,
        per_flow_packets: Optional[Dict[int, int]] = None,
    ):
        if packets_per_read < 1:
            raise ValueError("packets_per_read must be >= 1")
        self.send_ack = send_ack
        self.packets_per_read = packets_per_read
        self.now = now
        self.max_latency_samples = max_latency_samples
        #: per-flow override of packets-per-read (isolation studies mix
        #: small-RPC victims with elephant reads on one host).
        self.per_flow_packets = per_flow_packets or {}
        if any(v < 1 for v in self.per_flow_packets.values()):
            raise ValueError("per-flow packets_per_read must be >= 1")
        self._flows: Dict[int, _FlowState] = {}
        #: first-packet send time per (flow, read) for latency accounting
        self._read_start: Dict[tuple, float] = {}
        self.packets_received = 0
        self.duplicates = 0

    def flow(self, flow_id: int) -> _FlowState:
        state = self._flows.get(flow_id)
        if state is None:
            state = _FlowState()
            self._flows[flow_id] = state
        return state

    def on_packet(self, pkt: Packet) -> None:
        """Host calls this after CPU processing of each packet."""
        state = self.flow(pkt.flow_id)
        self.packets_received += 1
        is_dup = pkt.seq in state.received
        if is_dup:
            self.duplicates += 1
        else:
            state.received.add(pkt.seq)
            self._track_read(state, pkt)
        ack = Ack(
            flow_id=pkt.flow_id,
            seq=pkt.seq,
            sent_time_echo=pkt.sent_time,
            host_delay=pkt.host_delay(),
            ecn_echo=pkt.ecn_marked,
        )
        thread_id = pkt.thread_id
        # The endpoint is the packet's final consumer; everything the
        # ACK needs has been copied out, so the buffer can be recycled.
        pkt.release()
        self.send_ack(ack, thread_id)

    def packets_per_read_for(self, flow_id: int) -> int:
        return self.per_flow_packets.get(flow_id, self.packets_per_read)

    def _track_read(self, state: _FlowState, pkt: Packet) -> None:
        ppr = self.packets_per_read_for(pkt.flow_id)
        read_id = pkt.seq // ppr
        key = (pkt.flow_id, read_id)
        start = self._read_start.get(key)
        if start is None or pkt.sent_time < start:
            self._read_start[key] = pkt.sent_time
        count = state.read_counts.get(read_id, 0) + 1
        if count < ppr:
            state.read_counts[read_id] = count
        else:
            state.read_counts.pop(read_id, None)
            latency = self.now() - self._read_start.pop(key)
            state.messages_done += 1
            if len(state.message_latencies) < self.max_latency_samples:
                state.message_latencies.append(latency)

    # -- reporting ---------------------------------------------------------

    def all_message_latencies(self) -> List[float]:
        out: List[float] = []
        for state in self._flows.values():
            out.extend(state.message_latencies)
        return out

    def message_latencies_for(self, flow_ids) -> List[float]:
        """Latencies restricted to ``flow_ids`` (isolation analysis)."""
        wanted = set(flow_ids)
        out: List[float] = []
        for flow_id, state in self._flows.items():
            if flow_id in wanted:
                out.extend(state.message_latencies)
        return out

    def messages_completed(self) -> int:
        return sum(s.messages_done for s in self._flows.values())

    def bind_own_metrics(self, registry, component: str) -> None:
        registry.counter("messages_completed", component,
                         fn=lambda: float(self.messages_completed()))
        registry.counter("packets_received", component,
                         fn=lambda: self.packets_received)
        registry.counter("duplicates", component,
                         fn=lambda: self.duplicates)

    def reset_own_stats(self) -> None:
        self.packets_received = 0
        self.duplicates = 0
        for state in self._flows.values():
            state.messages_done = 0
            state.message_latencies.clear()
