"""Host-signal congestion control — the paper's §4 proposal, realized.

The paper argues future protocols need (a) congestion signals from
"outside the network" and (b) sub-RTT response, because with ~1 MB of
NIC buffer and a 100 µs host-delay target, Swift cannot see host
interconnect congestion before drops happen.

This transport extends Swift with two mechanisms:

- every ACK carries the receiver's *current* NIC-buffer occupancy and
  memory-bus utilization (stamped at ACK generation, so the signal is
  fresher than an RTT-old delay sample);
- when the buffer occupancy crosses a threshold, the sender decreases
  immediately and proportionally, without the once-per-RTT limit —
  the sub-RTT response.
"""

from __future__ import annotations

from repro.core.config import SwiftConfig
from repro.net.packet import Ack
from repro.transport.registry import register
from repro.transport.swift import SwiftCC

__all__ = ["HostSignalCC"]


@register("hostcc")
class HostSignalCC(SwiftCC):
    """Swift plus explicit, sub-RTT host-congestion signals."""

    #: NIC buffer occupancy beyond which senders back off immediately.
    BUFFER_THRESHOLD = 0.5
    #: Strength of the proportional response to buffer occupancy.
    BUFFER_GAIN = 0.3
    #: Minimum spacing between signal-driven decreases (well below an
    #: RTT: this is the "sub-RTT response" knob).
    HOLDOFF = 10e-6
    #: Memory-bus utilization beyond which increase is suppressed.
    MEMORY_THRESHOLD = 0.95

    def __init__(self, config: SwiftConfig, initial_cwnd: float = 2.0):
        super().__init__(config, initial_cwnd)
        self._last_signal_decrease = -1e9
        self.signal_decreases = 0

    def on_ack(self, rtt: float, ack: Ack, now: float) -> None:
        buffer_fraction = ack.nic_buffer_fraction
        if buffer_fraction > self.BUFFER_THRESHOLD:
            # Buffer filling: never grow, and cut proportionally every
            # HOLDOFF (well below an RTT).
            if now - self._last_signal_decrease >= self.HOLDOFF:
                excess = (buffer_fraction - self.BUFFER_THRESHOLD) / (
                    1.0 - self.BUFFER_THRESHOLD
                )
                factor = max(1.0 - self.BUFFER_GAIN * excess,
                             1.0 - self.config.max_mdf)
                self._cwnd *= factor
                self._clamp()
                self._last_signal_decrease = now
                self.signal_decreases += 1
            # Still feed Swift's delay machinery its RTT sample.
            self._srtt += 0.125 * (rtt - self._srtt)
            return
        if ack.memory_utilization > self.MEMORY_THRESHOLD:
            # Bus saturated: hold the window, let Swift decrease if
            # delay says so, but never grow into a saturated bus.
            before = self._cwnd
            super().on_ack(rtt, ack, now)
            self._cwnd = min(self._cwnd, before)
            self._clamp()
            return
        super().on_ack(rtt, ack, now)
