"""Sender-side connection state machine.

Window management, pacing (Swift supports cwnd < 1), SACK-style loss
detection by transmission-order reordering, and an RTO backstop.  The
congestion-control algorithm itself is pluggable
(:class:`CongestionControl`), so Swift, DCTCP, CUBIC, and the host-
signal extension all share this machinery.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Protocol

from repro.net.packet import Ack, Packet
from repro.sim.component import Component
from repro.sim.engine import Simulator

__all__ = ["CongestionControl", "Connection"]


class CongestionControl(Protocol):
    """The decision core of a transport protocol."""

    def on_ack(self, rtt: float, ack: Ack, now: float) -> None:
        """Process one acknowledgment."""

    def on_loss(self, now: float) -> None:
        """A packet was declared lost (fast retransmit)."""

    def on_timeout(self, now: float) -> None:
        """The retransmission timer fired."""

    def cwnd(self) -> float:
        """Current congestion window in packets (may be fractional)."""


class _SentRecord:
    __slots__ = ("seq", "tx_index", "sent_time", "retransmitted")

    def __init__(self, seq: int, tx_index: int, sent_time: float):
        self.seq = seq
        self.tx_index = tx_index
        self.sent_time = sent_time
        self.retransmitted = False


class Connection(Component):
    """One always-backlogged sender → receiver flow.

    The paper's workload is closed-loop 16 KB remote reads issued
    continuously; at saturation that is an always-backlogged windowed
    stream, which is how the sender is modelled.  Message (read)
    latency accounting happens at the receiver endpoint.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        sender_id: int,
        thread_id: int,
        cc: CongestionControl,
        send: Callable[[Packet], None],
        payload_bytes: int,
        wire_bytes: int,
        rto: float = 1e-3,
        reorder_threshold: int = 3,
        initial_rtt: float = 25e-6,
        max_inflight: int = 1024,
        always_backlogged: bool = True,
    ):
        self.sim = sim
        self.flow_id = flow_id
        self.label = f"flow{flow_id}"
        self.sender_id = sender_id
        self.thread_id = thread_id
        self.cc = cc
        self._send = send
        self.payload_bytes = payload_bytes
        self.wire_bytes = wire_bytes
        self.rto = rto
        self.reorder_threshold = reorder_threshold
        self.max_inflight = max_inflight

        self.always_backlogged = always_backlogged
        #: Packets of application data awaiting first transmission
        #: (ignored when ``always_backlogged``).
        self._backlog_packets = 0
        self._next_seq = 0
        self._tx_counter = 0
        self._highest_acked_tx = -1
        #: seq -> _SentRecord, in transmission order.
        self._inflight: "OrderedDict[int, _SentRecord]" = OrderedDict()
        self._retx_queue: Deque[int] = deque()
        self.srtt = initial_rtt
        self._next_send_time = 0.0
        self._send_scheduled = False
        self._send_timer = None
        self._last_ack_time = sim.now
        # Statistics.
        self.packets_sent = 0
        self.retransmissions = 0
        self.acks_received = 0
        self.losses_detected = 0
        self.timeouts = 0

        #: True iff an _rto_check timer is pending (armed on transmit,
        #: disarmed when nothing is in flight — keeps idle flows off the
        #: event heap in large-N sweeps).  The timer itself lives in the
        #: engine's timer wheel, not the dispatch heap.
        self._rto_armed = False
        self._rto_timer = None

        sim.call(0.0, self._maybe_send)

    # -- sending ---------------------------------------------------------------

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    @property
    def backlog_packets(self) -> int:
        return self._backlog_packets

    def add_backlog(self, packets: int) -> None:
        """Open-loop mode: application data arrives to be sent."""
        if packets <= 0:
            raise ValueError(f"backlog must be positive, got {packets}")
        self._backlog_packets += packets
        self._maybe_send()

    def _has_data(self) -> bool:
        return self.always_backlogged or self._backlog_packets > 0

    def _pacing_interval(self) -> float:
        """Inter-send gap; enforces sub-packet windows by pacing."""
        cwnd = self.cc.cwnd()
        if cwnd >= 1.0:
            return 0.0
        return self.srtt / max(cwnd, 1e-3)

    def _maybe_send(self) -> None:
        self._send_scheduled = False
        self._send_timer = None
        now = self.sim.now
        # Fast retransmit: a lost packet's window slot is already
        # accounted for, so retransmissions bypass the window check
        # (and pacing) — they replace in-flight data, not add to it.
        while self._retx_queue:
            self._transmit_next()
        while True:
            if not self._has_data():
                return
            cwnd = self.cc.cwnd()
            window = max(int(cwnd), 1) if cwnd >= 1.0 else 1
            if self.inflight_count >= min(window, self.max_inflight):
                return
            if now < self._next_send_time:
                self._schedule_send(self._next_send_time - now)
                return
            self._transmit_next()
            gap = self._pacing_interval()
            if gap > 0:
                self._next_send_time = self.sim.now + gap
                self._schedule_send(gap)
                return

    def _schedule_send(self, delay: float) -> None:
        if not self._send_scheduled:
            self._send_scheduled = True
            self._send_timer = self.sim.schedule_timer(
                delay, self._maybe_send)

    def _transmit_next(self) -> None:
        if self._retx_queue:
            seq = self._retx_queue.popleft()
            retx = True
        else:
            seq = self._next_seq
            self._next_seq += 1
            retx = False
            if not self.always_backlogged:
                self._backlog_packets -= 1
        record = _SentRecord(seq, self._tx_counter, self.sim.now)
        record.retransmitted = retx
        self._tx_counter += 1
        # Re-insert at the tail so _inflight stays in tx order.
        self._inflight.pop(seq, None)
        self._inflight[seq] = record
        pkt = Packet.acquire(
            flow_id=self.flow_id,
            seq=seq,
            payload_bytes=self.payload_bytes,
            wire_bytes=self.wire_bytes,
            sent_time=self.sim.now,
            thread_id=self.thread_id,
            is_retransmission=retx,
        )
        self.packets_sent += 1
        if retx:
            self.retransmissions += 1
        self._arm_rto()
        self._send(pkt)

    # -- receiving acks ----------------------------------------------------------

    def on_ack(self, ack: Ack) -> None:
        now = self.sim.now
        self._last_ack_time = now
        record = self._inflight.pop(ack.seq, None)
        if record is None:
            return  # duplicate/late ack for a retransmitted packet
        self.acks_received += 1
        self._highest_acked_tx = max(self._highest_acked_tx, record.tx_index)
        rtt = now - ack.sent_time_echo
        self.srtt += 0.125 * (rtt - self.srtt)
        self.cc.on_ack(rtt, ack, now)
        self._detect_losses()
        self._maybe_send()

    def _detect_losses(self) -> None:
        """Transmission-order reordering: a packet is lost once
        ``reorder_threshold`` later transmissions have been acked."""
        lost = []
        for seq, record in self._inflight.items():
            if record.tx_index <= self._highest_acked_tx - self.reorder_threshold:
                lost.append(seq)
            else:
                break  # _inflight is in tx order
        for seq in lost:
            del self._inflight[seq]
            self.losses_detected += 1
            self._retx_queue.append(seq)
        if lost:
            self.cc.on_loss(self.sim.now)

    # -- timeout backstop ---------------------------------------------------------

    def _arm_rto(self) -> None:
        if not self._rto_armed:
            self._rto_armed = True
            self._rto_timer = self.sim.schedule_timer(
                self.rto, self._rto_check)

    def _rto_check(self) -> None:
        now = self.sim.now
        self._rto_timer = None
        if not self._inflight:
            # Nothing to back-stop: disarm until the next transmission.
            # (The check itself stays on the rto/2 grid while armed —
            # cancelling it early would shift the polling phase and
            # change timeout detection times.)
            self._rto_armed = False
            return
        oldest = next(iter(self._inflight.values()))
        if now - oldest.sent_time > self.rto:
            seq = oldest.seq
            del self._inflight[seq]
            self._retx_queue.append(seq)
            self.timeouts += 1
            self.cc.on_timeout(now)
            self._maybe_send()
        self._rto_timer = self.sim.schedule_timer(
            self.rto / 2, self._rto_check)

    def cancel_timers(self) -> None:
        """Tear down pending timers (flow shutdown): O(1) cancels, and
        the dead entries never reach the dispatch heap."""
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
            self._rto_armed = False
        if self._send_timer is not None:
            self._send_timer.cancel()
            self._send_timer = None
            self._send_scheduled = False

    # -- telemetry ----------------------------------------------------------

    def bind_own_metrics(self, registry, component: str) -> None:
        """Per-flow observables.

        Not bound automatically by the workload composites — one
        registry entry per flow × counter would swamp snapshots at
        cores × senders flows — but available for focused studies.
        """
        for name, fn in (
            ("packets_sent", lambda: self.packets_sent),
            ("retransmissions", lambda: self.retransmissions),
            ("acks_received", lambda: self.acks_received),
            ("losses_detected", lambda: self.losses_detected),
            ("timeouts", lambda: self.timeouts),
        ):
            registry.counter(name, component, fn=fn)
        registry.gauge("cwnd", component, unit="packets",
                       fn=lambda: self.cc.cwnd())

    def reset_own_stats(self) -> None:
        self.packets_sent = 0
        self.retransmissions = 0
        self.acks_received = 0
        self.losses_detected = 0
        self.timeouts = 0
