"""CUBIC (Ha et al., 2008) — loss-based baseline.

Stands in for the kernel-TCP population of the paper's Fig. 1 fleet:
a protocol that only learns about host congestion from drops, after
the NIC buffer has already overflowed.
"""

from __future__ import annotations

from repro.core.config import SwiftConfig
from repro.net.packet import Ack
from repro.transport.registry import register

__all__ = ["CubicCC"]


@register("cubic")
class CubicCC:
    """One flow's CUBIC state."""

    #: CUBIC scaling constant (packets/s^3) and beta, per the paper.
    C = 0.4
    BETA = 0.7  # multiplicative decrease factor (cwnd *= BETA)

    def __init__(self, config: SwiftConfig, initial_cwnd: float = 2.0):
        self.config = config
        self._cwnd = min(max(initial_cwnd, config.min_cwnd),
                         config.max_cwnd)
        self._w_max = self._cwnd
        self._epoch_start: float | None = None
        self._k = 0.0
        self._last_decrease = -1e9
        self._srtt = 25e-6

    def cwnd(self) -> float:
        return self._cwnd

    def _clamp(self) -> None:
        cfg = self.config
        self._cwnd = min(max(self._cwnd, cfg.min_cwnd), cfg.max_cwnd)

    def on_ack(self, rtt: float, ack: Ack, now: float) -> None:
        self._srtt += 0.125 * (rtt - self._srtt)
        if self._epoch_start is None:
            self._epoch_start = now
            self._k = ((self._w_max * (1 - self.BETA)) / self.C) ** (1 / 3)
        t = now - self._epoch_start
        target = self.C * (t - self._k) ** 3 + self._w_max
        if target > self._cwnd:
            # Approach the cubic target over roughly one RTT of acks.
            self._cwnd += (target - self._cwnd) / max(self._cwnd, 1.0)
        else:
            # TCP-friendly floor: slow additive growth.
            self._cwnd += 0.01 / max(self._cwnd, 1.0)
        self._clamp()

    def on_loss(self, now: float) -> None:
        if now - self._last_decrease < self._srtt:
            return
        self._w_max = self._cwnd
        self._cwnd *= self.BETA
        self._epoch_start = None
        self._last_decrease = now
        self._clamp()

    def on_timeout(self, now: float) -> None:
        self._w_max = self._cwnd
        self._cwnd = self.config.min_cwnd
        self._epoch_start = None
        self._last_decrease = now
