"""DCTCP (Alizadeh et al., SIGCOMM'10) — ECN-fraction AIMD baseline.

DCTCP reacts to switch ECN marks only: it is completely blind to host
congestion (NIC-buffer queueing produces no ECN), which is exactly why
it is a useful baseline against Swift in the fleet experiment.
"""

from __future__ import annotations

from repro.core.config import SwiftConfig
from repro.net.packet import Ack
from repro.transport.registry import register

__all__ = ["DctcpCC"]


@register("dctcp")
class DctcpCC:
    """One flow's DCTCP state."""

    #: EWMA gain for the marked fraction.
    G = 1.0 / 16.0

    def __init__(self, config: SwiftConfig, initial_cwnd: float = 2.0):
        self.config = config
        self._cwnd = min(max(initial_cwnd, config.min_cwnd),
                         config.max_cwnd)
        self.alpha = 0.0
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._window_acks_target = max(int(self._cwnd), 1)
        self._last_decrease = -1e9
        self._srtt = 25e-6

    def cwnd(self) -> float:
        return self._cwnd

    def _clamp(self) -> None:
        cfg = self.config
        self._cwnd = min(max(self._cwnd, cfg.min_cwnd), cfg.max_cwnd)

    def on_ack(self, rtt: float, ack: Ack, now: float) -> None:
        self._srtt += 0.125 * (rtt - self._srtt)
        self._acked_in_window += 1
        if ack.ecn_echo:
            self._marked_in_window += 1
        if self._acked_in_window >= self._window_acks_target:
            fraction = self._marked_in_window / self._acked_in_window
            self.alpha += self.G * (fraction - self.alpha)
            if self._marked_in_window > 0:
                self._cwnd *= 1.0 - self.alpha / 2.0
            self._acked_in_window = 0
            self._marked_in_window = 0
            self._window_acks_target = max(int(self._cwnd), 1)
        if not ack.ecn_echo:
            self._cwnd += 1.0 / max(self._cwnd, 1.0)
        self._clamp()

    def on_loss(self, now: float) -> None:
        if now - self._last_decrease >= self._srtt:
            self._cwnd *= 0.5
            self._last_decrease = now
            self._clamp()

    def on_timeout(self, now: float) -> None:
        self._cwnd = self.config.min_cwnd
        self._last_decrease = now
