"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``      — one experiment at a chosen operating point, print gauges
- ``sweep``    — sweep cores / region size / antagonists / receiver
  hosts, print a table
- ``scenario`` — list, validate, or run declarative scenario specs
  (bundled ``repro.scenarios`` or ``.toml``/``.json`` files)
- ``figure``   — regenerate one paper figure (ASCII + CSV + shape checks)
- ``fleet``    — stream a sampled fleet (Fig. 1) through the
  constant-memory aggregate pipeline: ``--shards/--shard-index``,
  atomic ``--checkpoint``/``--resume``, and ``fleet merge`` to
  combine shard summaries (multi-machine joins)
- ``model``    — evaluate the analytical model at a grid of miss rates
- ``trace``    — run one experiment traced, export Perfetto JSON
  (``--sample-interval-us`` adds counter tracks from the telemetry
  sampler)
- ``profile``  — run one experiment under the simulation profiler
- ``cache``    — inspect or clear the on-disk result cache
- ``runs``     — list/show/tail the JSONL run ledgers written by
  ``--ledger``
- ``top``      — dashboard view of a ledger (replay, or follow a
  sweep running in another terminal)

``sweep``, ``figure``, and ``scenario run`` all route through the same
pipeline: scenario-spec expansion into config lists, the parallel
executor, and the on-disk result cache.

``run`` and ``sweep`` accept ``--metrics-out metrics.json`` to dump the
full metrics-registry snapshot (every component counter/gauge/histogram).

``sweep``, ``figure``, and ``fleet`` accept ``--workers N|auto`` to fan
independent runs out to worker processes (results are bit-identical to
serial execution); ``sweep`` and ``figure`` memoize results in the
on-disk cache by default (``--no-cache`` / ``--cache-dir`` to control).

``sweep``, ``fleet``, and ``scenario run`` accept ``--live`` (a
redraw-in-place dashboard) and ``--ledger`` (a durable JSONL event
log, inspected later with ``repro runs`` / ``repro top``); sweeps also
accept ``--keep-failed`` to record crashes as structured FAILED rows
instead of aborting.

Every command prints to stdout and returns a process exit code, so the
CLI composes with shell pipelines and CI.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    FabricConfig,
    HostConfig,
    IommuConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.core.experiment import run_experiment
from repro.core.model import ThroughputModel
from repro.core.results import FailedRun
from repro.core.sweep import (
    baseline_config,
    sweep_antagonist_cores,
    sweep_receiver_cores,
    sweep_receivers,
    sweep_region_size,
)

__all__ = ["build_parser", "main"]


def _workers_arg(value: str):
    """``--workers`` parser: a positive int or the string ``auto``."""
    if value == "auto":
        return value
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError("workers must be >= 1 or 'auto'")
    return count


def _parallel_args(parser: argparse.ArgumentParser,
                   cache_flags: bool = True) -> None:
    parser.add_argument("--workers", type=_workers_arg, default=None,
                        metavar="N|auto",
                        help="run experiments in N worker processes "
                             "('auto' = cpu_count - 1; default serial)")
    if cache_flags:
        parser.add_argument("--no-cache", action="store_true",
                            help="disable the on-disk result cache")
        parser.add_argument("--cache-dir", default=None,
                            help="result cache directory (default "
                                 "$REPRO_CACHE_DIR or ~/.cache/repro)")


def _cache_from_args(args: argparse.Namespace):
    from repro.core.cache import ResultCache

    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir)


def _telemetry_args(parser: argparse.ArgumentParser,
                    keep_failed: bool = True) -> None:
    parser.add_argument("--live", action="store_true",
                        help="redraw-in-place live dashboard "
                             "(progress, workers, sketches, ETA)")
    parser.add_argument("--ledger", action="store_true",
                        help="append lifecycle events to a JSONL run "
                             "ledger (see 'repro runs')")
    parser.add_argument("--ledger-dir", default=None,
                        help="ledger directory (default "
                             "$REPRO_LEDGER_DIR or <cache dir>/ledger)")
    if keep_failed:
        parser.add_argument("--keep-failed", action="store_true",
                            help="record crashed runs as FAILED rows "
                                 "(with exception info) instead of "
                                 "aborting the sweep")


class _Telemetry:
    """CLI-side composition of the optional event sinks.

    ``sink`` is the ``events=`` callable for the runner (``None`` when
    neither ``--live`` nor ``--ledger`` was given — the runner then
    does zero telemetry work); ``finish(ok)`` seals the ledger and
    paints the dashboard's final frame.
    """

    def __init__(self, args: argparse.Namespace, label: str):
        self.ledger = None
        self.dashboard = None
        if getattr(args, "ledger", False):
            from repro.core.ledger import LedgerWriter

            self.ledger = LedgerWriter(directory=args.ledger_dir,
                                       label=label)
        if getattr(args, "live", False):
            from repro.obs.live import LiveDashboard

            self.dashboard = LiveDashboard()
        self.sink = None
        if self.ledger is not None or self.dashboard is not None:
            def sink(event: dict) -> None:
                if self.ledger is not None:
                    self.ledger.append(event)
                if self.dashboard is not None:
                    self.dashboard.update(event)
            self.sink = sink

    def finish(self, ok: bool = True) -> None:
        if self.dashboard is not None:
            self.dashboard.close()
        if self.ledger is not None:
            self.ledger.close(ok=ok)
            print(f"ledger: {self.ledger.path}")


def _transport_choices() -> tuple:
    from repro.transport.registry import available

    return tuple(available())


def _fidelity_choices() -> tuple:
    from repro.core.config import FIDELITIES

    return FIDELITIES


def _topology_choices() -> tuple:
    from repro.core.config import TOPOLOGIES

    return TOPOLOGIES


def _routing_choices() -> tuple:
    from repro.net.routing import available

    return tuple(available())


def _host_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cores", type=int, default=12,
                        help="receiver threads/cores (default 12)")
    parser.add_argument("--no-iommu", action="store_true",
                        help="disable the IOMMU (no translation)")
    parser.add_argument("--no-hugepages", action="store_true",
                        help="4 KB data mappings instead of 2 MB")
    parser.add_argument("--antagonists", type=int, default=0,
                        help="STREAM antagonist cores (default 0)")
    parser.add_argument("--region-mb", type=int, default=12,
                        help="Rx region per thread, MB (default 12)")
    parser.add_argument("--senders", type=int, default=40,
                        help="sender machines per receiver (default 40)")
    parser.add_argument("--receivers", type=int, default=1,
                        help="receiver hosts, each with its own incast "
                             "(default 1)")
    parser.add_argument("--transport", default="swift",
                        choices=_transport_choices())
    parser.add_argument("--topology", default="star",
                        choices=_topology_choices(),
                        help="fabric between senders and hosts: the "
                             "one-hop star, a k-ary fat tree, or a "
                             "two-switch dumbbell (default star)")
    parser.add_argument("--routing", default="static",
                        choices=_routing_choices(),
                        help="multipath routing policy for multi-tier "
                             "fabrics (default static)")
    parser.add_argument("--fattree-k", type=int, default=4,
                        help="fat-tree arity, even (default 4)")
    parser.add_argument("--trunk-links", type=int, default=2,
                        help="dumbbell trunk link count (default 2)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--warmup-ms", type=float, default=5.0)
    parser.add_argument("--duration-ms", type=float, default=10.0)


def _config_from_args(args: argparse.Namespace,
                      trace: bool = False,
                      trace_max_records: int = 1_000_000,
                      ) -> ExperimentConfig:
    return ExperimentConfig(
        host=HostConfig(
            cpu=CpuConfig(cores=args.cores),
            iommu=IommuConfig(enabled=not args.no_iommu),
            hugepages=not args.no_hugepages,
            antagonist_cores=args.antagonists,
            rx_region_bytes=args.region_mb * 2**20,
        ),
        workload=WorkloadConfig(senders=args.senders,
                                receivers=getattr(args, "receivers", 1)),
        transport=args.transport,
        fabric=FabricConfig(
            topology=getattr(args, "topology", "star"),
            routing=getattr(args, "routing", "static"),
            fattree_k=getattr(args, "fattree_k", 4),
            trunk_links=getattr(args, "trunk_links", 2),
        ),
        fidelity=getattr(args, "fidelity", "packet"),
        sim=SimConfig(warmup=args.warmup_ms * 1e-3,
                      duration=args.duration_ms * 1e-3,
                      seed=args.seed,
                      trace=trace,
                      trace_max_records=trace_max_records),
    )


def _print_result(result) -> None:
    m = result.metrics
    rows = [
        ("app throughput (Gbps)", f"{m['app_throughput_gbps']:.1f}"),
        ("link utilization", f"{m['link_utilization'] * 100:.1f} %"),
        ("drop rate", f"{m['drop_rate'] * 100:.2f} %"),
        ("IOTLB misses/packet", f"{m['iotlb_misses_per_packet']:.2f}"),
        ("mean DMA latency (us)", f"{m['mean_dma_latency_us']:.2f}"),
        ("mean NIC delay (us)", f"{m['mean_nic_delay_us']:.1f}"),
        ("memory bandwidth (GB/s)", f"{m['memory_total_GBps']:.1f}"),
        ("memory utilization", f"{m['memory_utilization']:.2f}"),
        ("retransmissions", f"{m['retransmissions']:.0f}"),
        ("read p99 latency (us)",
         f"{result.message_latency_us['p99']:.1f}"),
    ]
    width = max(len(k) for k, _ in rows)
    for key, value in rows:
        print(f"  {key:<{width}} : {value}")


def _write_metrics(path: str, payload) -> None:
    Path(path).write_text(json.dumps(payload, indent=1))
    print(f"wrote metrics snapshot to {path}")


def cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    print(f"running: {config.describe()}")
    handles: list = []
    result = run_experiment(config, handle_out=handles)
    _print_result(result)
    # The fluid handle has no packet topology; its hosts are symmetric
    # by construction, so there is no per-host detail to print.
    topology = getattr(handles[0], "topology", None)
    if topology is not None and topology.n_receivers > 1:
        print("\nper-host:")
        for i, host in enumerate(topology.hosts):
            snap = host.snapshot()
            print(f"  host{i}: "
                  f"tput {snap['app_throughput_gbps']:.1f} Gbps, "
                  f"drops {snap['drop_rate'] * 100:.2f} %, "
                  f"misses/pkt {snap['iotlb_misses_per_packet']:.2f}")
    if args.metrics_out:
        _write_metrics(args.metrics_out, handles[0].metrics_snapshot())
    return 0


def _print_sweep_table(table, x_key: str) -> None:
    header = (f"{x_key:>16} {'iommu':>6} {'tput Gbps':>10} "
              f"{'drop %':>7} {'misses/pkt':>11} {'mem GB/s':>9}")
    print(header)
    print("-" * len(header))
    for result in table:
        m = result.metrics
        if isinstance(result, FailedRun):
            print(f"{result.params[x_key]:>16} "
                  f"{str(result.params['iommu']):>6} "
                  f"  FAILED ({result.kind}): {result.error}")
            continue
        print(f"{result.params[x_key]:>16} "
              f"{str(result.params['iommu']):>6} "
              f"{m['app_throughput_gbps']:>10.1f} "
              f"{m['drop_rate'] * 100:>7.2f} "
              f"{m['iotlb_misses_per_packet']:>11.2f} "
              f"{m['memory_total_GBps']:>9.1f}")


def cmd_sweep(args: argparse.Namespace) -> int:
    base = baseline_config(
        warmup=args.warmup_ms * 1e-3,
        duration=args.duration_ms * 1e-3,
        seed=args.seed,
        fidelity=args.fidelity,
    )
    snapshots: Optional[list] = [] if args.metrics_out else None
    cache = _cache_from_args(args)
    telemetry = _Telemetry(args, label=f"sweep-{args.axis}")
    run_opts = dict(base=base, snapshots_out=snapshots,
                    workers=args.workers, timeout=args.timeout_s,
                    cache=cache, events=telemetry.sink,
                    failures="keep" if args.keep_failed else "raise")
    try:
        if args.axis == "cores":
            table = sweep_receiver_cores(cores=tuple(args.values),
                                         **run_opts)
            x_key = "cores"
        elif args.axis == "region":
            table = sweep_region_size(
                region_mb=tuple(int(v) for v in args.values), **run_opts)
            x_key = "rx_region_mb"
        elif args.axis == "receivers":
            table = sweep_receivers(
                receivers=tuple(int(v) for v in args.values), **run_opts)
            x_key = "receivers"
        else:
            table = sweep_antagonist_cores(
                antagonists=tuple(int(v) for v in args.values),
                **run_opts)
            x_key = "antagonist_cores"
    except BaseException:
        telemetry.finish(ok=False)
        raise
    telemetry.finish()
    _print_sweep_table(table, x_key)
    if cache is not None and cache.hits:
        print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es)")
    if args.csv:
        table.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.metrics_out:
        _write_metrics(args.metrics_out, snapshots)
    return 0


def _scenario_specs(args: argparse.Namespace):
    from repro.core.scenario import bundled_scenarios, load_scenario_dir

    if getattr(args, "dir", None):
        return load_scenario_dir(args.dir)
    return bundled_scenarios()


def cmd_scenario(args: argparse.Namespace) -> int:
    from repro.core.scenario import ScenarioError, find_scenario

    try:
        if args.scenario_command == "list":
            specs = _scenario_specs(args)
            width = max(len(name) for name in specs)
            tags = {name: f"{spec.driver}/{spec.fidelity}"
                    for name, spec in specs.items()}
            tag_width = max(len(tag) for tag in tags.values())
            for name, spec in sorted(specs.items()):
                print(f"{name:<{width}}  [{tags[name]:<{tag_width}}]  "
                      f"{spec.title}")
            return 0

        if args.scenario_command == "validate":
            from repro.core.scenario import load_scenario_file

            known = _scenario_specs(args)
            targets = args.names or sorted(known)
            failures = 0
            for target in targets:
                try:
                    if target in known:
                        spec = known[target]
                    elif Path(target).exists():
                        spec = load_scenario_file(target)
                    else:
                        spec = find_scenario(target)
                except ScenarioError as exc:
                    print(f"FAIL {target}: {exc}")
                    failures += 1
                    continue
                if spec.driver == "sweep":
                    n = len(spec.expand())
                    grids = ", ".join(
                        f"{q}: {len(spec.expand(quality=q))}"
                        for q in sorted(spec.quality))
                    detail = f"{n} config(s)" + (
                        f" ({grids})" if grids else "")
                else:
                    spec.base_config()
                    detail = f"driver {spec.driver}"
                print(f"OK   {spec.name} ({spec.source}): {detail}")
            return 1 if failures else 0

        # run
        spec = find_scenario(args.name)
        return _run_scenario(spec, args)
    except ScenarioError as exc:
        print(f"error: {exc}")
        return 1


def _run_scenario(spec, args: argparse.Namespace) -> int:
    from repro.analysis.figures import figure_from_scenario

    render = spec.render
    fidelity = getattr(args, "fidelity", None)
    print(f"scenario {spec.name} ({spec.source}): driver {spec.driver}"
          + f", fidelity {fidelity or spec.fidelity}"
          + (f", quality {args.quality}" if args.quality else ""))
    telemetry = _Telemetry(args, label=f"scenario-{spec.name}")
    failures = "keep" if args.keep_failed else "raise"

    if spec.driver in ("sweep", "fleet") and render is not None \
            and render.style in ("panels", "scatter") \
            and not args.metrics_out:
        cache = _cache_from_args(args) if spec.driver == "sweep" else None
        try:
            fig = figure_from_scenario(spec, quality=args.quality,
                                       workers=args.workers, cache=cache,
                                       fidelity=fidelity,
                                       events=telemetry.sink,
                                       failures=failures)
        except BaseException:
            telemetry.finish(ok=False)
            raise
        telemetry.finish()
        print(fig.render())
        if cache is not None and cache.hits:
            print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es)")
        if args.out:
            paths = fig.to_csv_dir(args.out)
            print(f"wrote {len(paths)} CSV files to {args.out}")
        if args.csv and fig.table is not None:
            fig.table.to_csv(args.csv)
            print(f"wrote {args.csv}")
        return 0

    if spec.driver == "sweep":
        cache = _cache_from_args(args)
        snapshots: Optional[list] = [] if args.metrics_out else None
        try:
            table = spec.run(quality=args.quality, workers=args.workers,
                             timeout=args.timeout_s, cache=cache,
                             snapshots_out=snapshots, fidelity=fidelity,
                             events=telemetry.sink, failures=failures)
        except BaseException:
            telemetry.finish(ok=False)
            raise
        telemetry.finish()
        x_key = render.x if render is not None and render.x else "seed"
        _print_sweep_table(table, x_key)
        if cache is not None and cache.hits:
            print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es)")
        if args.csv:
            table.to_csv(args.csv)
            print(f"wrote {args.csv}")
        if args.metrics_out:
            _write_metrics(args.metrics_out, snapshots)
        return 0

    # Remaining drivers emit no lifecycle events; seal any ledger the
    # flags opened so it is not left dangling.
    telemetry.finish()

    if spec.driver == "day":
        bins = spec.run(quality=args.quality, fidelity=fidelity)
        header = (f"{'bin':>4} {'load':>5} {'antag':>6} "
                  f"{'link util':>10} {'drop %':>7} {'tput Gbps':>10}")
        print(header)
        print("-" * len(header))
        for b in bins:
            print(f"{b.index:>4} {b.offered_load:>5.2f} "
                  f"{b.antagonist_cores:>6} "
                  f"{b.link_utilization:>10.2f} "
                  f"{b.drop_rate * 100:>7.2f} "
                  f"{b.app_throughput_gbps:>10.1f}")
        return 0

    # isolation
    results = spec.run(quality=args.quality, fidelity=fidelity)
    header = (f"{'case':>14} {'drop %':>7} {'victim p50':>11} "
              f"{'victim p99':>11} {'elephant p99':>13} {'tput':>6}")
    print(header)
    print("-" * len(header))
    for name, r in results.items():
        print(f"{name:>14} {r.drop_rate * 100:>7.2f} "
              f"{r.victim.p50:>11.1f} {r.victim.p99:>11.1f} "
              f"{r.elephant.p99:>13.1f} "
              f"{r.app_throughput_gbps:>6.1f}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from repro.analysis import figures
    from repro.analysis.compare import check_figure

    cache = _cache_from_args(args)
    opts = dict(quality=args.quality, workers=args.workers, cache=cache)
    fn = {
        "1": lambda: figures.figure1(n_hosts=args.hosts,
                                     quality=args.quality,
                                     workers=args.workers),
        "3": lambda: figures.figure3(**opts),
        "4": lambda: figures.figure4(**opts),
        "5": lambda: figures.figure5(**opts),
        "6": lambda: figures.figure6(**opts),
    }[args.number]
    fig = fn()
    print(fig.render())
    findings = check_figure(fig)
    print()
    for finding in findings:
        print(finding)
    if args.out:
        paths = fig.to_csv_dir(args.out)
        print(f"wrote {len(paths)} CSV files to {args.out}")
    return 0 if all(f.passed for f in findings) else 1


#: ``--shards auto``: one shard (checkpoint granule) per this many
#: hosts — small enough that a resumed run loses minutes, not hours.
_HOSTS_PER_SHARD = 32768


def _fleet_shards(args: argparse.Namespace) -> int:
    if args.shards == "auto":
        return max(1, -(-args.hosts // _HOSTS_PER_SHARD))
    count = int(args.shards)
    if count < 1:
        raise SystemExit("--shards must be >= 1 or 'auto'")
    return count


def _fleet_checkpoint_path(args: argparse.Namespace) -> Optional[str]:
    """Resolve ``--checkpoint [PATH]`` / ``--resume`` to a path.

    Bare ``--checkpoint`` (or ``--resume`` alone) derives a
    deterministic per-population file next to the run ledger, so a
    crashed invocation resumes with the same flags plus ``--resume``.
    """
    wants = args.checkpoint is not None or args.resume
    if not wants:
        return None
    if args.checkpoint not in (None, ""):
        return args.checkpoint
    from repro.core.ledger import default_ledger_dir

    name = (f"fleet-seed{args.seed}-hosts{args.hosts}"
            f"-{args.fidelity or 'packet'}.ckpt.json")
    return str(Path(default_ledger_dir()) / name)


def cmd_fleet(args: argparse.Namespace) -> int:
    import time

    from repro.analysis.text_plots import scatter_plot
    from repro.workload.fleet import FleetSampler

    sampler = FleetSampler(seed=args.seed,
                           warmup=args.warmup_ms * 1e-3,
                           duration=args.duration_ms * 1e-3,
                           fidelity=args.fidelity or "packet")
    backend = sampler.resolve_backend(args.backend)
    checkpoint = _fleet_checkpoint_path(args)
    telemetry = _Telemetry(args, label="fleet")
    start = time.perf_counter()
    try:
        aggregate = sampler.run_aggregate(
            args.hosts, shards=_fleet_shards(args),
            shard_index=args.shard_index, workers=args.workers,
            events=telemetry.sink, checkpoint=checkpoint,
            resume=args.resume, checkpoint_every=args.checkpoint_every,
            stop_after_shard=args.stop_after_shard,
            backend=backend, batch_size=args.batch_size)
    except BaseException:
        telemetry.finish(ok=False)
        raise
    telemetry.finish()
    elapsed = time.perf_counter() - start
    hosts_per_s = aggregate.hosts / elapsed if elapsed > 0 else 0.0
    print(scatter_plot(aggregate.scatter_points(),
                       title="fleet drop rate vs utilization",
                       x_label="link utilization", y_label="drop rate"))
    for line in aggregate.format_lines():
        print(line)
    print(f"\n{aggregate.droppers}/{aggregate.hosts} hosts dropping "
          f"({elapsed:.1f}s wall, {hosts_per_s:.0f} hosts/s, "
          f"{sampler.fidelity}/{backend})")
    if checkpoint is not None:
        print(f"checkpoint: {checkpoint}")
    if args.json_out:
        # Extra keys are ignored by FleetAggregate.from_dict, so the
        # file stays directly loadable by ``repro fleet merge`` while
        # making every quoted throughput number self-describing.
        state = aggregate.to_dict()
        state["run_info"] = {
            "fidelity": sampler.fidelity, "backend": backend,
            "hosts_per_s": round(hosts_per_s, 1),
            "elapsed_s": round(elapsed, 3),
            "batch_size": args.batch_size, "workers": args.workers,
        }
        Path(args.json_out).write_text(json.dumps(state))
        print(f"aggregate: {args.json_out}")
    return 0


def cmd_fleet_merge(args: argparse.Namespace) -> int:
    """Merge shard aggregates (``--json-out`` files and/or checkpoint
    files) into one fleet summary — the multi-machine join step."""
    from repro.workload.fleet_agg import FleetAggregate, FleetCheckpoint

    merged: Optional[FleetAggregate] = None
    for path in args.inputs:
        state = json.loads(Path(path).read_text())
        if "shards" in state and "meta" in state:
            part = FleetCheckpoint.load(path).merged()
        else:
            part = FleetAggregate.from_dict(state)
        merged = part if merged is None else merged.merge(part)
    assert merged is not None  # argparse enforces >= 1 input
    print(f"merged {len(args.inputs)} shard summaries:")
    for line in merged.format_lines():
        print(line)
    print(f"\n{merged.droppers}/{merged.hosts} hosts dropping")
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(merged.to_dict()))
        print(f"aggregate: {args.json_out}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.experiment import ExperimentHandle
    from repro.obs.perfetto import write_trace

    config = _config_from_args(args, trace=True,
                               trace_max_records=args.max_records)
    if args.sample_interval_us is not None:
        config = dataclasses.replace(
            config, sim=dataclasses.replace(
                config.sim,
                sample_interval=args.sample_interval_us * 1e-6))
    print(f"tracing: {config.describe()}")
    handle = ExperimentHandle(config)
    if not args.include_warmup:
        # Trace only the measurement window: the flight recorder then
        # holds the steady state the Swift blind-spot lives in.
        handle.tracer.enabled = False
        handle.run_warmup()
        handle.tracer.enabled = True
    handle.run_measurement()
    tracer = handle.tracer
    samples = handle.telemetry_samples()
    path = write_trace(args.out, tracer, counter_samples=samples)
    by_component: dict = {}
    for record in tracer.records:
        by_component[record.component] = (
            by_component.get(record.component, 0) + 1)
    print(f"kept {len(tracer)} records "
          f"({tracer.dropped} evicted, {tracer.open_spans} spans open)")
    if samples:
        tracks = len({sample.name for sample in samples})
        print(f"counter tracks: {tracks} metrics × "
              f"{handle.sampler.ticks} ticks "
              f"({len(samples)} samples)")
    for component, count in sorted(by_component.items(),
                                   key=lambda kv: -kv[1]):
        print(f"  {component:<12} {count}")
    print(f"wrote {path} — open it at https://ui.perfetto.dev")
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    from repro.core.ledger import (
        iter_run,
        list_runs,
        resolve_run,
        summarize_run,
    )

    if args.runs_command == "list":
        runs = list_runs(args.ledger_dir)
        if not runs:
            print("no ledgers recorded (run a sweep with --ledger)")
            return 0
        width = max(len(info.run_id) for info in runs)
        for info in runs:
            state = "done" if info.finished else "in progress"
            print(f"{info.run_id:<{width}}  {info.rows:>5} rows  "
                  f"[{state}]")
        return 0

    try:
        path = resolve_run(args.run, args.ledger_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 1

    if args.runs_command == "tail":
        for event in list(iter_run(path))[-args.lines:]:
            print(json.dumps(event, separators=(",", ":")))
        return 0

    # show: the summary reconstructed from the ledger alone.
    aggregate = summarize_run(path)
    for line in aggregate.format_lines():
        print(line)
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(aggregate.to_dict(), indent=1))
        print(f"wrote aggregate to {args.json_out}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Replay (or follow) a ledger through the live dashboard."""
    import time as _time

    from repro.core.ledger import iter_run, resolve_run
    from repro.obs.live import LiveDashboard

    try:
        path = resolve_run(args.run, args.ledger_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    dashboard = LiveDashboard()
    if args.once:
        for event in iter_run(path):
            dashboard.aggregate.fold(event)
        dashboard.close()
        return 0
    # Follow mode: poll the file for appended rows until the `end` row
    # lands (or Ctrl-C).
    position = 0
    try:
        while True:
            with open(path) as fh:
                fh.seek(position)
                chunk = fh.read()
                position = fh.tell()
            for line in chunk.splitlines():
                line = line.strip()
                if line:
                    dashboard.update(json.loads(line))
            if dashboard.aggregate.ended:
                break
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    dashboard.close()
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.experiment import ExperimentHandle
    from repro.obs.profiler import SimProfiler

    config = _config_from_args(args)
    print(f"profiling: {config.describe()}")
    handle = ExperimentHandle(config)
    profiler = SimProfiler(handle.sim)
    if not args.include_warmup:
        handle.run_warmup()
    with profiler:
        handle.run_measurement()
    print(profiler.format_report())
    if args.out:
        Path(args.out).write_text(json.dumps(profiler.report(), indent=1))
        print(f"wrote profiler report to {args.out}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.core.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"cache dir : {stats.path}")
        print(f"entries   : {stats.entries}")
        print(f"size      : {stats.total_bytes / 1024:.1f} KiB")
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
    return 0


def cmd_model(args: argparse.Namespace) -> int:
    config = baseline_config()
    config = dataclasses.replace(
        config, host=dataclasses.replace(
            config.host, cpu=CpuConfig(cores=args.cores)))
    model = ThroughputModel(config)
    print(f"{'misses/pkt':>11} {'bound (Gbps)':>13}")
    for misses_x10 in range(0, 61, 5):
        misses = misses_x10 / 10
        bound = model.predict(misses,
                              memory_utilization=args.memory_util)
        print(f"{misses:>11.1f} {bound / 1e9:>13.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Host interconnect congestion simulator "
                    "(HotNets '22 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one experiment")
    _host_args(p_run)
    p_run.add_argument("--fidelity", default="packet",
                       choices=_fidelity_choices(),
                       help="simulation engine: packet-level kernel or "
                            "rate-based fluid solver (default packet)")
    p_run.add_argument("--metrics-out",
                       help="write the full metrics snapshot as JSON")
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser("sweep", help="sweep one axis")
    p_sweep.add_argument("axis", choices=("cores", "region",
                                          "antagonists", "receivers"))
    p_sweep.add_argument("values", type=int, nargs="+")
    p_sweep.add_argument("--csv", help="also write results to CSV")
    p_sweep.add_argument("--metrics-out",
                         help="write per-run metrics snapshots as JSON")
    p_sweep.add_argument("--seed", type=int, default=1)
    p_sweep.add_argument("--warmup-ms", type=float, default=5.0)
    p_sweep.add_argument("--duration-ms", type=float, default=10.0)
    p_sweep.add_argument("--fidelity", default="packet",
                         choices=_fidelity_choices(),
                         help="simulation engine for every point "
                              "(default packet)")
    p_sweep.add_argument("--timeout-s", type=float, default=None,
                         help="per-run wall-clock budget; over-budget "
                              "runs become FAILED rows, not aborts")
    _parallel_args(p_sweep)
    _telemetry_args(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_scen = sub.add_parser(
        "scenario",
        help="list, validate, or run declarative scenario specs")
    scen_sub = p_scen.add_subparsers(dest="scenario_command",
                                     required=True)
    p_scen_list = scen_sub.add_parser(
        "list", help="list bundled (or --dir) scenarios")
    p_scen_list.add_argument("--dir", default=None,
                             help="list specs in a directory instead "
                                  "of the bundled ones")
    p_scen_list.set_defaults(func=cmd_scenario)
    p_scen_val = scen_sub.add_parser(
        "validate", help="validate spec files or bundled scenarios")
    p_scen_val.add_argument("names", nargs="*",
                            help="scenario names or spec paths "
                                 "(default: every bundled spec)")
    p_scen_val.add_argument("--dir", default=None,
                            help="validate every spec in a directory")
    p_scen_val.set_defaults(func=cmd_scenario)
    p_scen_run = scen_sub.add_parser(
        "run", help="run a scenario by name or spec path")
    p_scen_run.add_argument("name",
                            help="bundled scenario name or path to a "
                                 ".toml/.json spec")
    p_scen_run.add_argument("--quality", default=None,
                            help="quality preset (default: the spec's "
                                 "default_quality)")
    p_scen_run.add_argument("--fidelity", default=None,
                            choices=_fidelity_choices(),
                            help="override the spec's engine choice "
                                 "(default: the spec's fidelity)")
    p_scen_run.add_argument("--csv",
                            help="write the result table to CSV")
    p_scen_run.add_argument("--out",
                            help="directory for rendered-figure CSVs")
    p_scen_run.add_argument("--timeout-s", type=float, default=None,
                            help="per-run wall-clock budget")
    p_scen_run.add_argument("--metrics-out",
                            help="write per-run metrics snapshots as "
                                 "JSON (sweep drivers)")
    _parallel_args(p_scen_run)
    _telemetry_args(p_scen_run)
    p_scen_run.set_defaults(func=cmd_scenario)

    p_trace = sub.add_parser(
        "trace", help="run one traced experiment, export Perfetto JSON")
    _host_args(p_trace)
    p_trace.add_argument("--out", default="trace.json",
                         help="trace-event JSON path (default trace.json)")
    p_trace.add_argument("--max-records", type=int, default=1_000_000,
                         help="flight-recorder capacity")
    p_trace.add_argument("--include-warmup", action="store_true",
                         help="also trace the warmup window")
    p_trace.add_argument("--sample-interval-us", type=float, default=None,
                         help="also sample every counter/gauge at this "
                              "sim-time cadence and export them as "
                              "Perfetto counter tracks")
    p_trace.set_defaults(func=cmd_trace)

    p_prof = sub.add_parser(
        "profile", help="run one experiment under the simulation profiler")
    _host_args(p_prof)
    p_prof.add_argument("--out", help="also write the report as JSON")
    p_prof.add_argument("--include-warmup", action="store_true",
                        help="profile the warmup window too")
    p_prof.set_defaults(func=cmd_profile)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", choices=("1", "3", "4", "5", "6"))
    p_fig.add_argument("--quality", default="quick",
                       choices=("quick", "full"))
    p_fig.add_argument("--hosts", type=int, default=60,
                       help="fleet size for figure 1")
    p_fig.add_argument("--out", help="directory for CSV export")
    _parallel_args(p_fig)
    p_fig.set_defaults(func=cmd_figure)

    p_fleet = sub.add_parser(
        "fleet", help="stream a sampled fleet (Fig. 1)")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command")
    p_fleet_merge = fleet_sub.add_parser(
        "merge", help="merge shard aggregates / checkpoints")
    p_fleet_merge.add_argument(
        "inputs", nargs="+",
        help="aggregate JSON (--json-out) or checkpoint files")
    p_fleet_merge.add_argument("--json-out", default=None,
                               help="write the merged aggregate JSON")
    p_fleet_merge.set_defaults(func=cmd_fleet_merge)
    p_fleet.add_argument("--hosts", type=int, default=30)
    p_fleet.add_argument("--seed", type=int, default=7)
    p_fleet.add_argument("--warmup-ms", type=float, default=3.0)
    p_fleet.add_argument("--duration-ms", type=float, default=6.0)
    p_fleet.add_argument("--fidelity", default=None,
                         choices=_fidelity_choices(),
                         help="engine for every host (fluid scales to "
                              "millions; default packet)")
    p_fleet.add_argument("--backend", default="auto",
                         choices=("auto", "batched", "scalar"),
                         help="fleet execution backend (auto = "
                              "cohort-batched numpy solver for fluid "
                              "fleets, scalar otherwise)")
    p_fleet.add_argument("--batch-size", type=int, default=4096,
                         metavar="N",
                         help="hosts per batched solver chunk "
                              "(default 4096)")
    p_fleet.add_argument("--shards", default="1", metavar="N|auto",
                         help="checkpoint granules ('auto' = one per "
                              f"{_HOSTS_PER_SHARD} hosts)")
    p_fleet.add_argument("--shard-index", type=int, default=None,
                         metavar="K",
                         help="run only shard K (multi-machine: merge "
                              "the per-shard outputs afterwards)")
    p_fleet.add_argument("--checkpoint", nargs="?", const="",
                         default=None, metavar="PATH",
                         help="checkpoint progress atomically (bare "
                              "flag: derived path under the ledger "
                              "dir)")
    p_fleet.add_argument("--resume", action="store_true",
                         help="resume from the checkpoint instead of "
                              "starting over")
    p_fleet.add_argument("--checkpoint-every", type=int, default=2000,
                         metavar="N",
                         help="hosts between checkpoint saves "
                              "(default 2000)")
    p_fleet.add_argument("--stop-after-shard", type=int, default=None,
                         metavar="K",
                         help="exit after shard K completes "
                              "(deterministic kill stand-in for tests)")
    p_fleet.add_argument("--json-out", default=None,
                         help="write the merged aggregate JSON")
    _parallel_args(p_fleet, cache_flags=False)
    _telemetry_args(p_fleet, keep_failed=False)
    p_fleet.set_defaults(func=cmd_fleet)

    p_runs = sub.add_parser(
        "runs", help="inspect the JSONL run ledgers")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    p_runs_list = runs_sub.add_parser("list", help="list recorded runs")
    p_runs_list.add_argument("--ledger-dir", default=None)
    p_runs_list.set_defaults(func=cmd_runs)
    p_runs_show = runs_sub.add_parser(
        "show", help="summarize one run from its ledger alone")
    p_runs_show.add_argument("run", nargs="?", default="latest",
                             help="run id, unique prefix, path, or "
                                  "'latest' (default)")
    p_runs_show.add_argument("--ledger-dir", default=None)
    p_runs_show.add_argument("--json-out", default=None,
                             help="also write the mergeable aggregate "
                                  "as JSON")
    p_runs_show.set_defaults(func=cmd_runs)
    p_runs_tail = runs_sub.add_parser(
        "tail", help="print the last rows of a run's ledger")
    p_runs_tail.add_argument("run", nargs="?", default="latest")
    p_runs_tail.add_argument("-n", "--lines", type=int, default=10)
    p_runs_tail.add_argument("--ledger-dir", default=None)
    p_runs_tail.set_defaults(func=cmd_runs)

    p_top = sub.add_parser(
        "top", help="dashboard view of a ledger (replay or follow)")
    p_top.add_argument("run", nargs="?", default="latest")
    p_top.add_argument("--ledger-dir", default=None)
    p_top.add_argument("--once", action="store_true",
                       help="render the current state once and exit")
    p_top.add_argument("--interval", type=float, default=0.5,
                       help="follow-mode poll interval, seconds")
    p_top.set_defaults(func=cmd_top)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache")
    p_cache.add_argument("cache_command", choices=("stats", "clear"))
    p_cache.add_argument("--cache-dir", default=None,
                         help="cache directory (default $REPRO_CACHE_DIR "
                              "or ~/.cache/repro)")
    p_cache.set_defaults(func=cmd_cache)

    p_model = sub.add_parser("model",
                             help="evaluate the analytical bound")
    p_model.add_argument("--cores", type=int, default=16)
    p_model.add_argument("--memory-util", type=float, default=0.15)
    p_model.set_defaults(func=cmd_model)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # ``repro runs tail | head`` closes stdout mid-print; exit
        # quietly like other unix tools.  Redirect the dangling fd so
        # the interpreter's shutdown flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
