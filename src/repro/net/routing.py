"""Pluggable routing policies for multi-tier fabrics.

A routing policy picks one path out of an equal-cost set for every
packet at fabric ingress.  Three are bundled:

* ``static``   — single path (index 0): no load balancing at all.
* ``ecmp``     — per-flow hash over the equal-cost set; a flow is
  pinned to its path for the whole run.
* ``flowlet``  — CONGA/LetFlow-style gap-threshold switching: when the
  inter-packet gap within a flow exceeds the configured threshold the
  flowlet ends and the flow rehashes onto a (possibly) different path.

All hashing is explicit and seeded (splitmix64 finalizer over the
seed/flow/flowlet tuple) — never the interpreter's ``hash()`` — so a
run is bit-identical across processes, worker counts, and
``PYTHONHASHSEED`` values.  Policies are pure state machines: they take
the current simulation time as an argument instead of reading a clock,
which is what lets the fluid solver reuse the exact same path
assignments analytically.

This module is a layer-0 kernel module (see ``scripts/check_layering.py``):
it must not import the simulator or anything above it.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

__all__ = [
    "RoutingPolicy",
    "StaticRouting",
    "EcmpRouting",
    "FlowletRouting",
    "available",
    "create_policy",
    "register_policy",
    "stable_hash",
]

_MASK64 = (1 << 64) - 1


def stable_hash(*parts: int) -> int:
    """Deterministic 64-bit hash of a tuple of integers.

    splitmix64's finalizer applied fold-wise: strong enough mixing that
    consecutive flow ids spread uniformly over small path counts, with
    no dependence on the process or platform.
    """
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        acc = (acc ^ (part & _MASK64)) * 0xBF58476D1CE4E5B9 & _MASK64
        acc = (acc ^ (acc >> 27)) * 0x94D049BB133111EB & _MASK64
        acc ^= acc >> 31
    return acc


class RoutingPolicy:
    """Base policy: selects a path index for each packet at ingress."""

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def select(self, flow_id: int, n_paths: int, now: float) -> int:
        """Path index in ``[0, n_paths)`` for this packet."""
        raise NotImplementedError


class StaticRouting(RoutingPolicy):
    """Single fixed path per source/destination pair — no balancing."""

    def select(self, flow_id: int, n_paths: int, now: float) -> int:
        return 0


class EcmpRouting(RoutingPolicy):
    """Hash-based ECMP: each flow is pinned to one equal-cost path."""

    def select(self, flow_id: int, n_paths: int, now: float) -> int:
        if n_paths <= 1:
            return 0
        return stable_hash(self.seed, flow_id) % n_paths


class FlowletRouting(RoutingPolicy):
    """Flowlet switching with a configurable gap threshold.

    A burst of packets whose inter-packet gaps stay at or below
    ``gap_threshold`` forms one flowlet and stays on one path; a larger
    gap ends the flowlet, so the next packet rehashes with a fresh
    flowlet id.  Rehashing only at burst boundaries keeps packets
    in-order within a flowlet while still spreading load over time.
    """

    def __init__(self, seed: int, gap_threshold: float) -> None:
        super().__init__(seed)
        if gap_threshold <= 0:
            raise ValueError("gap_threshold must be positive")
        self.gap_threshold = gap_threshold
        #: flow_id -> (last packet time, flowlet id, path index)
        self._state: Dict[int, Tuple[float, int, int]] = {}

    def select(self, flow_id: int, n_paths: int, now: float) -> int:
        if n_paths <= 1:
            return 0
        state = self._state.get(flow_id)
        if state is None:
            flowlet = 0
            path = stable_hash(self.seed, flow_id, flowlet) % n_paths
        else:
            last, flowlet, path = state
            if now - last > self.gap_threshold:
                flowlet += 1
                path = stable_hash(self.seed, flow_id, flowlet) % n_paths
        self._state[flow_id] = (now, flowlet, path)
        return path


_REGISTRY: Dict[str, Callable[..., RoutingPolicy]] = {}


def register_policy(name: str,
                    factory: Callable[..., RoutingPolicy]) -> None:
    """Register a routing policy factory under ``name``.

    The factory is called as ``factory(seed=..., flowlet_gap=...)``;
    implementations ignore keywords they don't need.
    """
    _REGISTRY[name] = factory


def available() -> Tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_policy(name: str, *, seed: int,
                  flowlet_gap: float = 100e-6) -> RoutingPolicy:
    """Instantiate the named policy with deterministic seeding."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; "
            f"expected one of {available()}") from None
    return factory(seed=seed, flowlet_gap=flowlet_gap)


register_policy("static", lambda seed, flowlet_gap: StaticRouting(seed))
register_policy("ecmp", lambda seed, flowlet_gap: EcmpRouting(seed))
register_policy(
    "flowlet",
    lambda seed, flowlet_gap: FlowletRouting(seed, flowlet_gap))
