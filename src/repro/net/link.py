"""A point-to-point link: serialization plus propagation delay.

Links never drop: the fabric is deliberately not the bottleneck in the
paper's experiments (all drops happen in the NIC input buffer), so
sender access links only serialize and delay.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.component import Component
from repro.sim.engine import Simulator

__all__ = ["Link"]


class Link(Component):
    """Unidirectional link delivering items to a callback."""

    label = "link"

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        prop_delay: float,
        deliver: Callable[[Any], None],
        name: str = "link",
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if prop_delay < 0:
            raise ValueError(f"negative propagation delay {prop_delay}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.deliver = deliver
        self.name = name
        self.label = name
        self._busy_until = 0.0
        self.items_sent = 0
        self.bytes_sent = 0
        self._busy_integral = 0.0

    def send(self, item: Any, wire_bytes: int) -> float:
        """Transmit ``item``; returns the delivery time."""
        if wire_bytes <= 0:
            raise ValueError(f"wire_bytes must be positive, got {wire_bytes}")
        now = self.sim.now
        busy = self._busy_until
        start = now if now > busy else busy
        tx = wire_bytes * 8 / self.rate_bps
        self._busy_until = start + tx
        self._busy_integral += tx
        self.items_sent += 1
        self.bytes_sent += wire_bytes
        arrival = start + tx + self.prop_delay
        self.sim.at(arrival, self.deliver, item)
        return arrival

    def queueing_delay(self) -> float:
        """Time a packet sent now would wait for the link to free up."""
        return max(0.0, self._busy_until - self.sim.now)

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(self._busy_integral / elapsed, 1.0)

    def bind_own_metrics(self, registry, component: str) -> None:
        registry.counter("items_sent", component,
                         fn=lambda: self.items_sent)
        registry.counter("bytes_sent", component, unit="bytes",
                         fn=lambda: self.bytes_sent)
