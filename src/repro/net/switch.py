"""An output-queued switch port.

The paper's incast (40 senders → 1 receiver) aggregates at the switch
port feeding the receiver's access link.  The port has a large buffer
(fabric congestion is not the subject of the paper) and optional ECN
marking so the DCTCP baseline has a signal to work with.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.queues import ByteQueue

__all__ = ["SwitchPort"]


class SwitchPort(Component):
    """FIFO output port with serialization, ECN, and a finite buffer."""

    label = "port"

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        buffer_bytes: int,
        prop_delay: float,
        deliver: Callable[[Packet], None],
        ecn_threshold_bytes: Optional[int] = None,
        name: str = "switch-port",
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.deliver = deliver
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.queue = ByteQueue(sim, buffer_bytes, name=name)
        self._transmitting = False
        self.forwarded = 0

    def enqueue(self, pkt: Packet) -> None:
        if (self.ecn_threshold_bytes is not None
                and self.queue.bytes_used >= self.ecn_threshold_bytes):
            pkt.ecn_marked = True
        if not self.queue.offer(pkt, pkt.wire_bytes):
            return  # fabric drop (rare by construction; still counted)
        if not self._transmitting:
            self._next()

    def _next(self) -> None:
        entry = self.queue.pop()
        if entry is None:
            self._transmitting = False
            return
        self._transmitting = True
        pkt = entry[0]
        tx = pkt.wire_bytes * 8 / self.rate_bps
        self.sim.call(tx, self._sent, pkt)

    def _sent(self, pkt: Packet) -> None:
        self.forwarded += 1
        self.sim.call(self.prop_delay, self.deliver, pkt)
        self._next()

    @property
    def dropped(self) -> int:
        return self.queue.dropped_count

    def queue_depth_bytes(self) -> int:
        return self.queue.bytes_used

    def bind_own_metrics(self, registry, component: str) -> None:
        registry.counter("forwarded", component,
                         fn=lambda: self.forwarded)
        registry.counter("dropped", component,
                         fn=lambda: self.dropped)
        registry.gauge("queue_depth_bytes", component, unit="bytes",
                       fn=lambda: float(self.queue_depth_bytes()))

    def reset_own_stats(self) -> None:
        """Deliberate no-op: fabric drop/forward counts run from t=0 so
        `collect()` keeps reporting whole-run fabric drops."""
