"""Output-queued switch ports and multi-port switches.

The paper's incast (40 senders → 1 receiver) aggregates at the switch
port feeding the receiver's access link.  The port has a large buffer
(fabric congestion is not the subject of the paper) and optional ECN
marking so the DCTCP baseline has a signal to work with.  Multi-tier
fabrics compose ports into :class:`Switch` nodes — one per edge/agg/
core switch — so every hop shows up in the metric tree with its own
drop and occupancy counters (``fabric/agg1/port2.dropped``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.queues import ByteQueue

__all__ = ["Switch", "SwitchPort"]


class SwitchPort(Component):
    """FIFO output port with serialization, ECN, and a finite buffer."""

    label = "port"

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        buffer_bytes: int,
        prop_delay: float,
        deliver: Callable[[Packet], None],
        ecn_threshold_bytes: Optional[int] = None,
        name: str = "switch-port",
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.deliver = deliver
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.queue = ByteQueue(sim, buffer_bytes, name=name)
        self._transmitting = False
        self.forwarded = 0
        # Port-level drop accounting: counted here, at the port that
        # dropped, so multi-port switches report per-port drops instead
        # of one pooled number at the fabric root.
        self.dropped_packets = 0
        self.dropped_bytes = 0

    def enqueue(self, pkt: Packet) -> None:
        if (self.ecn_threshold_bytes is not None
                and self.queue.bytes_used >= self.ecn_threshold_bytes):
            pkt.ecn_marked = True
        if not self.queue.offer(pkt, pkt.wire_bytes):
            self.dropped_packets += 1
            self.dropped_bytes += pkt.wire_bytes
            return  # fabric drop, charged to this port
        if not self._transmitting:
            self._next()

    def _next(self) -> None:
        entry = self.queue.pop()
        if entry is None:
            self._transmitting = False
            return
        self._transmitting = True
        pkt = entry[0]
        tx = pkt.wire_bytes * 8 / self.rate_bps
        self.sim.call(tx, self._sent, pkt)

    def _sent(self, pkt: Packet) -> None:
        self.forwarded += 1
        self.sim.call(self.prop_delay, self.deliver, pkt)
        self._next()

    @property
    def dropped(self) -> int:
        return self.dropped_packets

    def queue_depth_bytes(self) -> int:
        return self.queue.bytes_used

    def peak_queue_bytes(self) -> int:
        return self.queue.peak_bytes

    def bind_own_metrics(self, registry, component: str) -> None:
        registry.counter("forwarded", component,
                         fn=lambda: self.forwarded)
        registry.counter("dropped", component,
                         fn=lambda: self.dropped)
        registry.gauge("queue_depth_bytes", component, unit="bytes",
                       fn=lambda: float(self.queue_depth_bytes()))
        registry.gauge("peak_queue_bytes", component, unit="bytes",
                       fn=lambda: float(self.peak_queue_bytes()))

    def own_snapshot(self) -> Dict[str, float]:
        return {
            "forwarded": float(self.forwarded),
            "dropped": float(self.dropped_packets),
            "dropped_bytes": float(self.dropped_bytes),
            "queue_depth_bytes": float(self.queue.bytes_used),
            "peak_queue_bytes": float(self.queue.peak_bytes),
        }

    def reset_own_stats(self) -> None:
        """Deliberate no-op: fabric drop/forward counts run from t=0 so
        `collect()` keeps reporting whole-run fabric drops."""


class Switch(Component):
    """A named switch: a bag of output ports, one per attached link.

    Pure composition — the data path lives in the ports; the switch
    exists so per-hop metrics namespace cleanly (``fabric/agg1/port2``)
    and per-switch drop/occupancy roll-ups are one call away.
    """

    label = "switch"

    def __init__(self, name: str, tier: str):
        self.name = name
        self.label = name
        #: "edge" / "agg" / "core" (or "switch" for the dumbbell ends).
        self.tier = tier
        self._ports: List[Tuple[str, SwitchPort]] = []

    def add_port(self, name: str, port: SwitchPort) -> SwitchPort:
        self._ports.append((name, port))
        return port

    @property
    def ports(self) -> Tuple[SwitchPort, ...]:
        return tuple(p for _, p in self._ports)

    def children(self):
        return tuple(self._ports)

    def dropped(self) -> int:
        return sum(p.dropped for p in self.ports)

    def queue_depth_bytes(self) -> int:
        return sum(p.queue_depth_bytes() for p in self.ports)
