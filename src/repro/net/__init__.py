"""Network substrate: packets, links, switch, and the star fabric."""

from repro.net.fabric import Fabric
from repro.net.link import Link
from repro.net.packet import Ack, Packet
from repro.net.switch import SwitchPort

__all__ = ["Ack", "Fabric", "Link", "Packet", "SwitchPort"]
