"""Packet and ACK records.

Packets are plain mutable objects (``__slots__`` for speed); the
simulator moves hundreds of thousands of them per run.  Timestamps are
stamped in place as a packet traverses the pipeline so the receiver can
compute the host-delay components that Swift consumes.

Steady-state runs recycle packets through a free list:
:meth:`Packet.acquire` takes one from the pool (re-stamping every slot)
and :meth:`Packet.release` returns it once the receiver endpoint — or
the NIC drop path — is finished with it.  Pool identity is never used
for ordering or hashing, so recycling cannot perturb determinism.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.engine import SimulationError

__all__ = ["Ack", "Packet"]

#: Upper bound on pooled packets; beyond it released packets are simply
#: dropped for the garbage collector (steady state needs roughly the
#: bandwidth-delay product's worth of packets, far below this).
_POOL_LIMIT = 65536


class Packet:
    """A data MTU travelling sender → receiver.

    ``flow_id`` identifies the (sender, receiver-thread) connection;
    ``seq`` is the per-flow packet sequence number.
    """

    __slots__ = (
        "flow_id",
        "seq",
        "payload_bytes",
        "wire_bytes",
        "sent_time",
        "is_retransmission",
        "ecn_marked",
        "nic_arrival_time",
        "dma_done_time",
        "cpu_done_time",
        "thread_id",
        # Multi-tier fabric state: the equal-cost path (a tuple of
        # switch ports) chosen at ingress and the current hop index.
        # Only ever written by MultiTierFabric — the one-hop star path
        # never touches these slots, keeping its hot path unchanged.
        "path",
        "hop",
        "_pooled",
    )

    #: Free list shared by all flows/simulations (packets carry no
    #: cross-run state after reset()).
    _pool: List["Packet"] = []

    def __init__(
        self,
        flow_id: int,
        seq: int,
        payload_bytes: int,
        wire_bytes: int,
        sent_time: float,
        thread_id: int,
        is_retransmission: bool = False,
    ):
        self.flow_id = flow_id
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.wire_bytes = wire_bytes
        self.sent_time = sent_time
        self.thread_id = thread_id
        self.is_retransmission = is_retransmission
        self.ecn_marked = False
        self.nic_arrival_time: Optional[float] = None
        self.dma_done_time: Optional[float] = None
        self.cpu_done_time: Optional[float] = None
        self._pooled = False

    @classmethod
    def acquire(
        cls,
        flow_id: int,
        seq: int,
        payload_bytes: int,
        wire_bytes: int,
        sent_time: float,
        thread_id: int,
        is_retransmission: bool = False,
    ) -> "Packet":
        """A packet from the free list (or a fresh one when empty),
        with every slot re-stamped as if newly constructed."""
        pool = cls._pool
        if not pool:
            return cls(flow_id, seq, payload_bytes, wire_bytes,
                       sent_time, thread_id, is_retransmission)
        pkt = pool.pop()
        pkt.reset(flow_id, seq, payload_bytes, wire_bytes,
                  sent_time, thread_id, is_retransmission)
        return pkt

    def reset(
        self,
        flow_id: int,
        seq: int,
        payload_bytes: int,
        wire_bytes: int,
        sent_time: float,
        thread_id: int,
        is_retransmission: bool = False,
    ) -> None:
        """Re-stamp every slot for reuse (timestamps cleared, ECN off)."""
        self.flow_id = flow_id
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.wire_bytes = wire_bytes
        self.sent_time = sent_time
        self.thread_id = thread_id
        self.is_retransmission = is_retransmission
        self.ecn_marked = False
        self.nic_arrival_time = None
        self.dma_done_time = None
        self.cpu_done_time = None
        self._pooled = False

    def release(self) -> None:
        """Return this packet to the free list.

        Only the component that consumed the packet (receiver endpoint
        after the ACK is built, or the NIC drop path) may release it —
        nothing else may hold a reference afterwards.  Releasing the
        same packet twice is a bug and raises.
        """
        if self._pooled:
            raise SimulationError(
                f"double release of {self!r}: packet is already pooled")
        self._pooled = True
        pool = Packet._pool
        if len(pool) < _POOL_LIMIT:
            pool.append(self)

    def host_delay(self) -> float:
        """NIC arrival → CPU processing complete (the paper's "host
        delay": NIC queueing + DMA + CPU queueing + processing)."""
        if self.cpu_done_time is None or self.nic_arrival_time is None:
            raise SimulationError(
                f"host_delay() before host processing completed for "
                f"{self!r}: nic_arrival_time={self.nic_arrival_time}, "
                f"cpu_done_time={self.cpu_done_time}")
        return self.cpu_done_time - self.nic_arrival_time

    def __repr__(self) -> str:
        return (
            f"Packet(flow={self.flow_id}, seq={self.seq}, "
            f"payload={self.payload_bytes}, retx={self.is_retransmission})"
        )


class Ack:
    """An acknowledgement travelling receiver → sender.

    Carries everything Swift needs: the echoed send timestamp (for RTT),
    the measured host delay, and optional explicit host signals used by
    the §4 extension transport.
    """

    __slots__ = (
        "flow_id",
        "seq",
        "wire_bytes",
        "sent_time_echo",
        "host_delay",
        "ecn_echo",
        "acked_count",
        "nic_buffer_fraction",
        "memory_utilization",
        "send_time",
    )

    def __init__(
        self,
        flow_id: int,
        seq: int,
        sent_time_echo: float,
        host_delay: float,
        wire_bytes: int = 64,
        ecn_echo: bool = False,
        acked_count: int = 1,
        nic_buffer_fraction: float = 0.0,
        memory_utilization: float = 0.0,
    ):
        self.flow_id = flow_id
        self.seq = seq
        self.wire_bytes = wire_bytes
        self.sent_time_echo = sent_time_echo
        self.host_delay = host_delay
        self.ecn_echo = ecn_echo
        self.acked_count = acked_count
        self.nic_buffer_fraction = nic_buffer_fraction
        self.memory_utilization = memory_utilization
        self.send_time = 0.0

    def __repr__(self) -> str:
        return f"Ack(flow={self.flow_id}, seq={self.seq})"
