"""The star fabric: N senders → one switch port → the receiver host.

Data path: each sender has its own access link into the switch; the
switch's egress port to the receiver serializes at the receiver's
access-link rate — the aggregation point of the incast.  The reverse
(ACK) path is modelled as a fixed one-way delay: ACKs are tiny and the
reverse direction is uncongested in every experiment of the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.config import LinkConfig
from repro.net.link import Link
from repro.net.packet import Ack, Packet
from repro.net.switch import SwitchPort
from repro.sim.engine import Simulator

__all__ = ["Fabric"]

#: Fraction of the one-way delay on the sender access link; the rest is
#: switch-to-receiver.
_SENDER_LEG_FRACTION = 0.2


class Fabric:
    """Connects sender endpoints to one receiver host."""

    def __init__(
        self,
        sim: Simulator,
        config: LinkConfig,
        n_senders: int,
        deliver_to_host: Callable[[Packet], None],
    ):
        if n_senders < 1:
            raise ValueError(f"need at least one sender, got {n_senders}")
        self.sim = sim
        self.config = config
        sender_delay = config.one_way_delay * _SENDER_LEG_FRACTION
        switch_delay = config.one_way_delay * (1 - _SENDER_LEG_FRACTION)
        self.port = SwitchPort(
            sim,
            rate_bps=config.rate_bps,
            buffer_bytes=config.switch_buffer_bytes,
            prop_delay=switch_delay,
            deliver=deliver_to_host,
            ecn_threshold_bytes=config.ecn_threshold_bytes,
        )
        self.sender_links: List[Link] = [
            Link(sim, config.rate_bps, sender_delay,
                 deliver=self.port.enqueue, name=f"sender-{i}")
            for i in range(n_senders)
        ]
        self._ack_handlers: Dict[int, Callable[[Ack], None]] = {}

    # -- data path ------------------------------------------------------------

    def send_packet(self, sender_id: int, pkt: Packet) -> None:
        """Sender ``sender_id`` puts a packet on its access link."""
        self.sender_links[sender_id].send(pkt, pkt.wire_bytes)

    # -- ack path -------------------------------------------------------------

    def register_flow(self, flow_id: int,
                      on_ack: Callable[[Ack], None]) -> None:
        if flow_id in self._ack_handlers:
            raise ValueError(f"flow {flow_id} already registered")
        self._ack_handlers[flow_id] = on_ack

    def route_ack(self, ack: Ack) -> None:
        """Receiver-to-sender path: fixed one-way delay, no queueing."""
        handler = self._ack_handlers.get(ack.flow_id)
        if handler is None:
            raise KeyError(f"ACK for unknown flow {ack.flow_id}")
        ack.send_time = self.sim.now
        self.sim.call(self.config.one_way_delay, handler, ack)

    # -- telemetry -------------------------------------------------------------

    def fabric_drops(self) -> int:
        return self.port.dropped

    def switch_queue_bytes(self) -> int:
        return self.port.queue_depth_bytes()
