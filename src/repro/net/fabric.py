"""The star fabric: N senders → switch ports → M receiver hosts.

Data path: each sender has its own access link into the switch; each
receiver host gets its own switch egress port serializing at that
receiver's access-link rate — the aggregation point of the incast.  The
reverse (ACK) path is modelled as a fixed one-way delay: ACKs are tiny
and the reverse direction is uncongested in every experiment of the
paper.

With one receiver (the paper's setup, and the default everywhere) the
fabric degenerates to the historical N → 1 star and sender links feed
the single port directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import LinkConfig
from repro.net.link import Link
from repro.net.packet import Ack, Packet
from repro.net.switch import SwitchPort
from repro.sim.component import Component
from repro.sim.engine import Simulator

__all__ = ["Fabric"]

#: Fraction of the one-way delay on the sender access link; the rest is
#: switch-to-receiver.
_SENDER_LEG_FRACTION = 0.2


class Fabric(Component):
    """Connects sender endpoints to one or more receiver hosts."""

    label = "fabric"

    def __init__(
        self,
        sim: Simulator,
        config: LinkConfig,
        n_senders: int,
        deliver_to_host: Optional[Callable[[Packet], None]] = None,
        *,
        receivers: Optional[Sequence[Callable[[Packet], None]]] = None,
    ):
        """Exactly one of ``deliver_to_host`` (the historical single-host
        callable) or ``receivers`` (one delivery callback per receiver
        host) must be given."""
        if n_senders < 1:
            raise ValueError(f"need at least one sender, got {n_senders}")
        if (deliver_to_host is None) == (receivers is None):
            raise ValueError(
                "pass exactly one of deliver_to_host or receivers")
        if deliver_to_host is not None:
            receivers = [deliver_to_host]
        receivers = list(receivers)
        if not receivers:
            raise ValueError("need at least one receiver host")
        self.sim = sim
        self.config = config
        sender_delay = config.one_way_delay * _SENDER_LEG_FRACTION
        switch_delay = config.one_way_delay * (1 - _SENDER_LEG_FRACTION)
        self.ports: List[SwitchPort] = [
            SwitchPort(
                sim,
                rate_bps=config.rate_bps,
                buffer_bytes=config.switch_buffer_bytes,
                prop_delay=switch_delay,
                deliver=deliver,
                ecn_threshold_bytes=config.ecn_threshold_bytes,
                name=f"switch-port-{i}",
            )
            for i, deliver in enumerate(receivers)
        ]
        # Single receiver: links feed the lone port directly, keeping
        # the historical (and bit-identical) zero-lookup data path.
        ingress = (self.ports[0].enqueue if len(self.ports) == 1
                   else self._route_packet)
        self.sender_links: List[Link] = [
            Link(sim, config.rate_bps, sender_delay,
                 deliver=ingress, name=f"sender-{i}")
            for i in range(n_senders)
        ]
        self._ack_handlers: Dict[int, Callable[[Ack], None]] = {}
        self._flow_host: Dict[int, int] = {}

    @property
    def port(self) -> SwitchPort:
        """The first egress port (the historical single-host alias)."""
        return self.ports[0]

    # -- data path ------------------------------------------------------------

    def send_packet(self, sender_id: int, pkt: Packet) -> None:
        """Sender ``sender_id`` puts a packet on its access link."""
        self.sender_links[sender_id].send(pkt, pkt.wire_bytes)

    def _route_packet(self, pkt: Packet) -> None:
        """Switch crossbar: steer a packet to its flow's egress port."""
        try:
            host = self._flow_host[pkt.flow_id]
        except KeyError:
            raise KeyError(
                f"packet for unregistered flow {pkt.flow_id}") from None
        self.ports[host].enqueue(pkt)

    # -- ack path -------------------------------------------------------------

    def register_flow(self, flow_id: int,
                      on_ack: Callable[[Ack], None],
                      host: int = 0) -> None:
        """Register a flow's ACK handler and its receiver host index."""
        if flow_id in self._ack_handlers:
            raise ValueError(f"flow {flow_id} already registered")
        if not 0 <= host < len(self.ports):
            raise ValueError(
                f"flow {flow_id} routed to unknown host {host} "
                f"(topology has {len(self.ports)} receiver(s))")
        self._ack_handlers[flow_id] = on_ack
        self._flow_host[flow_id] = host

    def route_ack(self, ack: Ack) -> None:
        """Receiver-to-sender path: fixed one-way delay, no queueing."""
        handler = self._ack_handlers.get(ack.flow_id)
        if handler is None:
            raise KeyError(f"ACK for unknown flow {ack.flow_id}")
        ack.send_time = self.sim.now
        self.sim.call(self.config.one_way_delay, handler, ack)

    # -- telemetry -------------------------------------------------------------

    def children(self):
        """Egress ports only: per-sender access links are uncongested
        by construction and would add N metric rows per fabric."""
        return tuple((f"port{i}", p) for i, p in enumerate(self.ports))

    def bind_own_metrics(self, registry, component: str) -> None:
        registry.counter("fabric_drops", component,
                         fn=lambda: float(self.fabric_drops()))

    def fabric_drops(self) -> int:
        return sum(p.dropped for p in self.ports)

    def switch_queue_bytes(self) -> int:
        return sum(p.queue_depth_bytes() for p in self.ports)
