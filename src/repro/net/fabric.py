"""Fabrics: one-hop star and general multi-tier switched topologies.

:class:`Fabric` is the historical star — N senders → switch ports → M
receiver hosts, with each receiver's egress port as the incast
aggregation point.  :class:`MultiTierFabric` generalizes it: a
:class:`FabricPlan` (pure data, built by :func:`fattree_plan` or
:func:`dumbbell_plan`) describes switches, directed inter-switch links,
endpoint attachment, and the enumerated equal-cost path sets; every hop
is then a real :class:`~repro.net.switch.SwitchPort` with its own
output queue, and a routing policy from :mod:`repro.net.routing` picks
the path per packet at ingress.

The reverse (ACK) path is modelled as a fixed one-way delay in both
fabrics: ACKs are tiny and the reverse direction is uncongested in
every experiment of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import ExperimentConfig, LinkConfig
from repro.net.link import Link
from repro.net.packet import Ack, Packet
from repro.net.routing import create_policy
from repro.net.switch import Switch, SwitchPort
from repro.sim.component import Component
from repro.sim.engine import Simulator

__all__ = [
    "Fabric",
    "FabricPlan",
    "MultiTierFabric",
    "build_fabric_plan",
    "dumbbell_plan",
    "fattree_plan",
]

#: Fraction of the one-way delay on the sender access link; the rest is
#: switch-to-receiver.
_SENDER_LEG_FRACTION = 0.2


class Fabric(Component):
    """Connects sender endpoints to one or more receiver hosts."""

    label = "fabric"

    def __init__(
        self,
        sim: Simulator,
        config: LinkConfig,
        n_senders: int,
        deliver_to_host: Optional[Callable[[Packet], None]] = None,
        *,
        receivers: Optional[Sequence[Callable[[Packet], None]]] = None,
    ):
        """Exactly one of ``deliver_to_host`` (the historical single-host
        callable) or ``receivers`` (one delivery callback per receiver
        host) must be given."""
        if n_senders < 1:
            raise ValueError(f"need at least one sender, got {n_senders}")
        if (deliver_to_host is None) == (receivers is None):
            raise ValueError(
                "pass exactly one of deliver_to_host or receivers")
        if deliver_to_host is not None:
            receivers = [deliver_to_host]
        receivers = list(receivers)
        if not receivers:
            raise ValueError("need at least one receiver host")
        self.sim = sim
        self.config = config
        sender_delay = config.one_way_delay * _SENDER_LEG_FRACTION
        switch_delay = config.one_way_delay * (1 - _SENDER_LEG_FRACTION)
        self.ports: List[SwitchPort] = [
            SwitchPort(
                sim,
                rate_bps=config.rate_bps,
                buffer_bytes=config.switch_buffer_bytes,
                prop_delay=switch_delay,
                deliver=deliver,
                ecn_threshold_bytes=config.ecn_threshold_bytes,
                name=f"switch-port-{i}",
            )
            for i, deliver in enumerate(receivers)
        ]
        # Single receiver: links feed the lone port directly, keeping
        # the historical (and bit-identical) zero-lookup data path.
        ingress = (self.ports[0].enqueue if len(self.ports) == 1
                   else self._route_packet)
        self.sender_links: List[Link] = [
            Link(sim, config.rate_bps, sender_delay,
                 deliver=ingress, name=f"sender-{i}")
            for i in range(n_senders)
        ]
        self._ack_handlers: Dict[int, Callable[[Ack], None]] = {}
        self._flow_host: Dict[int, int] = {}

    @property
    def port(self) -> SwitchPort:
        """The first egress port (the historical single-host alias)."""
        return self.ports[0]

    # -- data path ------------------------------------------------------------

    def send_packet(self, sender_id: int, pkt: Packet) -> None:
        """Sender ``sender_id`` puts a packet on its access link."""
        self.sender_links[sender_id].send(pkt, pkt.wire_bytes)

    def _route_packet(self, pkt: Packet) -> None:
        """Switch crossbar: steer a packet to its flow's egress port."""
        try:
            host = self._flow_host[pkt.flow_id]
        except KeyError:
            raise KeyError(
                f"packet for unregistered flow {pkt.flow_id}") from None
        self.ports[host].enqueue(pkt)

    # -- ack path -------------------------------------------------------------

    def register_flow(self, flow_id: int,
                      on_ack: Callable[[Ack], None],
                      host: int = 0) -> None:
        """Register a flow's ACK handler and its receiver host index."""
        if flow_id in self._ack_handlers:
            raise ValueError(f"flow {flow_id} already registered")
        if not 0 <= host < len(self.ports):
            raise ValueError(
                f"flow {flow_id} routed to unknown host {host} "
                f"(topology has {len(self.ports)} receiver(s))")
        self._ack_handlers[flow_id] = on_ack
        self._flow_host[flow_id] = host

    def route_ack(self, ack: Ack) -> None:
        """Receiver-to-sender path: fixed one-way delay, no queueing."""
        handler = self._ack_handlers.get(ack.flow_id)
        if handler is None:
            raise KeyError(f"ACK for unknown flow {ack.flow_id}")
        ack.send_time = self.sim.now
        self.sim.call(self.config.one_way_delay, handler, ack)

    # -- telemetry -------------------------------------------------------------

    def children(self):
        """Egress ports only: per-sender access links are uncongested
        by construction and would add N metric rows per fabric."""
        return tuple((f"port{i}", p) for i, p in enumerate(self.ports))

    def bind_own_metrics(self, registry, component: str) -> None:
        registry.counter("fabric_drops", component,
                         fn=lambda: float(self.fabric_drops()))

    def fabric_drops(self) -> int:
        return sum(p.dropped for p in self.ports)

    def switch_queue_bytes(self) -> int:
        return sum(p.queue_depth_bytes() for p in self.ports)


# -- multi-tier fabrics --------------------------------------------------------

#: A hop in a planned path: ("link", link_index) for an inter-switch
#: link or ("host", host_index) for the final edge→host egress port.
_PlanHop = Tuple[str, int]


@dataclass(frozen=True)
class FabricPlan:
    """Pure description of a multi-tier fabric (no simulator state).

    ``switches``
        ``(name, tier)`` per switch, tiers in {"edge", "agg", "core"}.
    ``links``
        Directed inter-switch links ``(src_switch, dst_switch, scale)``;
        each becomes one output port on ``src_switch`` whose rate is
        ``scale × access-link rate``.
    ``host_ports``
        ``(switch, host)`` final egress ports, serializing at the
        receiver's access-link rate.
    ``sender_edge`` / ``host_edge``
        Ingress/egress edge-switch index per global sender / per host.
    ``paths``
        ``(edge_switch, host) → tuple of equal-cost paths``, each path
        a tuple of :data:`_PlanHop` entries ending in a host port.  The
        enumeration order is canonical: routing policies index into it,
        and the fluid solver mirrors the same order analytically.
    """

    switches: Tuple[Tuple[str, str], ...]
    links: Tuple[Tuple[int, int, float], ...]
    host_ports: Tuple[Tuple[int, int], ...]
    sender_edge: Tuple[int, ...]
    host_edge: Tuple[int, ...]
    paths: Dict[Tuple[int, int], Tuple[Tuple[_PlanHop, ...], ...]]

    @property
    def max_hops(self) -> int:
        return max(len(p) for group in self.paths.values() for p in group)


def fattree_plan(k: int, n_senders: int, n_hosts: int,
                 uplink_scale: float = 1.0) -> FabricPlan:
    """A k-ary fat-tree: k pods × (k/2 edge + k/2 agg) + (k/2)² cores.

    Endpoints (senders and receiver hosts alike) are placed round-robin
    over the edge switches: ``edge = index % n_edges``.  Cross-pod
    traffic has (k/2)² equal-cost paths enumerated as (agg choice j,
    core choice m) → index ``j·(k/2)+m``; same-pod cross-edge traffic
    has k/2 paths (one per agg); same-edge traffic goes straight to the
    host port.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    n_edges = k * half
    switches: List[Tuple[str, str]] = []
    edge_idx: List[List[int]] = []   # [pod][e] -> switch index
    agg_idx: List[List[int]] = []    # [pod][j] -> switch index
    for pod in range(k):
        edge_idx.append([])
        for e in range(half):
            edge_idx[pod].append(len(switches))
            switches.append((f"edge{pod * half + e}", "edge"))
    for pod in range(k):
        agg_idx.append([])
        for j in range(half):
            agg_idx[pod].append(len(switches))
            switches.append((f"agg{pod * half + j}", "agg"))
    core_idx: List[int] = []
    for c in range(half * half):
        core_idx.append(len(switches))
        switches.append((f"core{c}", "core"))

    links: List[Tuple[int, int, float]] = []
    link_of: Dict[Tuple[int, int], int] = {}

    def link(src: int, dst: int) -> int:
        key = (src, dst)
        idx = link_of.get(key)
        if idx is None:
            idx = link_of[key] = len(links)
            links.append((src, dst, uplink_scale))
        return idx

    # Edge e in pod p uplinks to every agg in p; agg j uplinks to cores
    # j·(k/2)..j·(k/2)+k/2-1; and the reverse down-links mirror them.
    for pod in range(k):
        for e in range(half):
            for j in range(half):
                link(edge_idx[pod][e], agg_idx[pod][j])
                link(agg_idx[pod][j], edge_idx[pod][e])
        for j in range(half):
            for m in range(half):
                core = core_idx[j * half + m]
                link(agg_idx[pod][j], core)
                link(core, agg_idx[pod][j])

    def edge_of(endpoint: int) -> Tuple[int, int]:
        """(pod, local edge) for round-robin endpoint placement."""
        edge = endpoint % n_edges
        return edge // half, edge % half

    host_ports: List[Tuple[int, int]] = []
    host_edge: List[int] = []
    for h in range(n_hosts):
        pod, e = edge_of(h)
        host_ports.append((edge_idx[pod][e], h))
        host_edge.append(pod * half + e)
    sender_edge = tuple(s % n_edges for s in range(n_senders))

    paths: Dict[Tuple[int, int], Tuple[Tuple[_PlanHop, ...], ...]] = {}
    for h in range(n_hosts):
        dpod, de = edge_of(h)
        dst_edge = edge_idx[dpod][de]
        final: _PlanHop = ("host", h)
        for src in set(sender_edge):
            spod, se = src // half, src % half
            src_edge = edge_idx[spod][se]
            if src_edge == dst_edge:
                group = ((final,),)
            elif spod == dpod:
                group = tuple(
                    (("link", link(src_edge, agg_idx[spod][j])),
                     ("link", link(agg_idx[spod][j], dst_edge)),
                     final)
                    for j in range(half))
            else:
                group = tuple(
                    (("link", link(src_edge, agg_idx[spod][j])),
                     ("link", link(agg_idx[spod][j],
                                   core_idx[j * half + m])),
                     ("link", link(core_idx[j * half + m],
                                   agg_idx[dpod][j])),
                     ("link", link(agg_idx[dpod][j], dst_edge)),
                     final)
                    for j in range(half) for m in range(half))
            paths[(src, h)] = group
    return FabricPlan(
        switches=tuple(switches),
        links=tuple(links),
        host_ports=tuple(host_ports),
        sender_edge=sender_edge,
        host_edge=tuple(host_edge),
        paths=paths,
    )


def dumbbell_plan(trunk_links: int, n_senders: int, n_hosts: int,
                  trunk_scale: float = 1.0) -> FabricPlan:
    """A two-switch dumbbell with ``trunk_links`` parallel trunks.

    All senders attach to the left switch, all receiver hosts to the
    right; every flow crosses the shared trunk, so the equal-cost set
    is exactly the trunks — the textbook topology for antagonist flows
    squeezing a victim.
    """
    if trunk_links < 1:
        raise ValueError(f"need at least one trunk link, got {trunk_links}")
    switches = (("left", "edge"), ("right", "edge"))
    links = tuple((0, 1, trunk_scale) for _ in range(trunk_links))
    host_ports = tuple((1, h) for h in range(n_hosts))
    paths = {
        (0, h): tuple((("link", t), ("host", h))
                      for t in range(trunk_links))
        for h in range(n_hosts)
    }
    return FabricPlan(
        switches=switches,
        links=links,
        host_ports=host_ports,
        sender_edge=tuple(0 for _ in range(n_senders)),
        host_edge=tuple(0 for _ in range(n_hosts)),
        paths=paths,
    )


def build_fabric_plan(config: ExperimentConfig, n_senders: int,
                      n_hosts: int) -> FabricPlan:
    """The plan for ``config.fabric`` (star has none and raises)."""
    fc = config.fabric
    if fc.topology == "fattree":
        return fattree_plan(fc.fattree_k, n_senders, n_hosts,
                            uplink_scale=fc.uplink_scale)
    if fc.topology == "dumbbell":
        return dumbbell_plan(fc.trunk_links, n_senders, n_hosts,
                             trunk_scale=fc.uplink_scale)
    raise ValueError(
        f"no multi-tier plan for topology {fc.topology!r}")


class MultiTierFabric(Component):
    """A planned multi-tier fabric: every hop is a real switch port.

    Data path: sender access link → ingress edge switch, where the
    routing policy picks one path out of the plan's equal-cost set;
    the packet then walks its path port by port (serialization +
    per-hop propagation + output queueing at each).  Drops happen at
    whichever port overflowed and are charged there.
    """

    label = "fabric"

    def __init__(
        self,
        sim: Simulator,
        config: ExperimentConfig,
        plan: FabricPlan,
        receivers: Sequence[Callable[[Packet], None]],
    ):
        link_cfg = config.link
        fabric_cfg = config.fabric
        n_senders = len(plan.sender_edge)
        if len(receivers) != len(plan.host_ports):
            raise ValueError(
                f"plan has {len(plan.host_ports)} host ports but "
                f"{len(receivers)} receiver callbacks were given")
        self.sim = sim
        self.config = link_cfg
        self.plan = plan
        self._receivers = list(receivers)
        buffer_bytes = (fabric_cfg.buffer_bytes
                        if fabric_cfg.buffer_bytes is not None
                        else link_cfg.switch_buffer_bytes)
        sender_delay = link_cfg.one_way_delay * _SENDER_LEG_FRACTION
        hop_delay = (link_cfg.one_way_delay * (1 - _SENDER_LEG_FRACTION)
                     / plan.max_hops)
        self.switches: List[Switch] = [
            Switch(name, tier) for name, tier in plan.switches]
        names = [name for name, _ in plan.switches]
        self._link_ports: List[SwitchPort] = []
        for src, dst, scale in plan.links:
            port = SwitchPort(
                sim,
                rate_bps=scale * link_cfg.rate_bps,
                buffer_bytes=buffer_bytes,
                prop_delay=hop_delay,
                deliver=self._advance,
                ecn_threshold_bytes=link_cfg.ecn_threshold_bytes,
                name=f"{names[src]}->{names[dst]}",
            )
            self._link_ports.append(
                self.switches[src].add_port(
                    f"port{len(self.switches[src].ports)}", port))
        self._host_ports: List[SwitchPort] = []
        for switch, host in plan.host_ports:
            port = SwitchPort(
                sim,
                rate_bps=link_cfg.rate_bps,
                buffer_bytes=buffer_bytes,
                prop_delay=hop_delay,
                deliver=self._advance,
                ecn_threshold_bytes=link_cfg.ecn_threshold_bytes,
                name=f"{names[switch]}->host{host}",
            )
            self._host_ports.append(
                self.switches[switch].add_port(
                    f"port{len(self.switches[switch].ports)}", port))
        # Resolve plan paths into tuples of actual ports once.
        self._paths: Dict[Tuple[int, int],
                          Tuple[Tuple[SwitchPort, ...], ...]] = {
            key: tuple(tuple(self._resolve(hop) for hop in path)
                       for path in group)
            for key, group in plan.paths.items()
        }
        self.sender_links: List[Link] = [
            Link(sim, link_cfg.rate_bps, sender_delay,
                 deliver=self._ingress_for(edge), name=f"sender-{i}")
            for i, edge in enumerate(plan.sender_edge)
        ]
        self.policy = create_policy(
            fabric_cfg.routing,
            seed=config.sim.seed,
            flowlet_gap=fabric_cfg.flowlet_gap)
        self._ack_handlers: Dict[int, Callable[[Ack], None]] = {}
        self._flow_host: Dict[int, int] = {}

    def _resolve(self, hop: _PlanHop) -> SwitchPort:
        kind, idx = hop
        return (self._link_ports[idx] if kind == "link"
                else self._host_ports[idx])

    def _ingress_for(self, edge: int) -> Callable[[Packet], None]:
        def ingress(pkt: Packet, _edge: int = edge) -> None:
            host = self._flow_host[pkt.flow_id]
            group = self._paths[(_edge, host)]
            n = len(group)
            idx = (self.policy.select(pkt.flow_id, n, self.sim.now)
                   if n > 1 else 0)
            pkt.path = group[idx]
            pkt.hop = 0
            pkt.path[0].enqueue(pkt)
        return ingress

    # -- data path ------------------------------------------------------------

    def send_packet(self, sender_id: int, pkt: Packet) -> None:
        """Sender ``sender_id`` puts a packet on its access link."""
        self.sender_links[sender_id].send(pkt, pkt.wire_bytes)

    def _advance(self, pkt: Packet) -> None:
        """One hop done: enqueue at the next port or deliver."""
        nxt = pkt.hop + 1
        path = pkt.path
        if nxt < len(path):
            pkt.hop = nxt
            path[nxt].enqueue(pkt)
        else:
            # Clear the path before the packet can be pooled so a free
            # list never pins switch ports (or whole simulations) live.
            pkt.path = None
            self._receivers[self._flow_host[pkt.flow_id]](pkt)

    # -- ack path -------------------------------------------------------------

    def register_flow(self, flow_id: int,
                      on_ack: Callable[[Ack], None],
                      host: int = 0) -> None:
        """Register a flow's ACK handler and its receiver host index."""
        if flow_id in self._ack_handlers:
            raise ValueError(f"flow {flow_id} already registered")
        if not 0 <= host < len(self._receivers):
            raise ValueError(
                f"flow {flow_id} routed to unknown host {host} "
                f"(topology has {len(self._receivers)} receiver(s))")
        self._ack_handlers[flow_id] = on_ack
        self._flow_host[flow_id] = host

    def route_ack(self, ack: Ack) -> None:
        """Receiver-to-sender path: fixed one-way delay, no queueing."""
        handler = self._ack_handlers.get(ack.flow_id)
        if handler is None:
            raise KeyError(f"ACK for unknown flow {ack.flow_id}")
        ack.send_time = self.sim.now
        self.sim.call(self.config.one_way_delay, handler, ack)

    # -- telemetry -------------------------------------------------------------

    @property
    def ports(self) -> List[SwitchPort]:
        """Every port in the fabric (link ports then host ports)."""
        return self._link_ports + self._host_ports

    def children(self):
        return tuple((f"fabric/{sw.name}", sw) for sw in self.switches)

    def bind_own_metrics(self, registry, component: str) -> None:
        registry.counter("fabric_drops", component,
                         fn=lambda: float(self.fabric_drops()))

    def fabric_drops(self) -> int:
        return sum(p.dropped for p in self.ports)

    def switch_queue_bytes(self) -> int:
        return sum(p.queue_depth_bytes() for p in self.ports)

    def path_assignments(self) -> Dict[Tuple[int, int], int]:
        """(edge, host) group sizes — a debugging/validation aid."""
        return {key: len(group) for key, group in self._paths.items()}
