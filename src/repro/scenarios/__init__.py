"""Bundled scenario specs — data, not code.

Every ``.toml`` file in this package is a
:class:`~repro.core.scenario.ScenarioSpec` describing one paper figure
or example study; ``repro scenario list`` enumerates them and
``repro scenario run <name>`` executes them.  The package intentionally
contains no Python beyond this docstring (enforced by
``scripts/check_layering.py``) so specs stay declarative: everything a
scenario does must be expressible in the spec schema.
"""
