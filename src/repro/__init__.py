"""hostcongestion — packet-level simulation and analysis of host
interconnect congestion.

A faithful software reproduction of *"Understanding Host Interconnect
Congestion"* (Agarwal et al., HotNets '22): the full NIC→PCIe→IOMMU→
memory→CPU receive datapath, a Swift-style delay-based congestion
control (plus DCTCP/CUBIC baselines and the paper-§4 host-signal
extension), the paper's workloads, and one regeneration function per
evaluation figure.

Quick start::

    from repro import baseline_config, run_experiment

    result = run_experiment(baseline_config())
    print(result.metrics["app_throughput_gbps"])

Figure regeneration::

    from repro.analysis import figure3
    fig = figure3(quality="quick")
    print(fig.render())
"""

from repro.core.config import (
    CpuConfig,
    DdioConfig,
    ExperimentConfig,
    HostConfig,
    IommuConfig,
    LinkConfig,
    MemoryConfig,
    NicConfig,
    PcieConfig,
    SimConfig,
    SwiftConfig,
    WorkloadConfig,
)
from repro.core.cache import ResultCache
from repro.core.experiment import ExperimentHandle, run_experiment
from repro.core.model import ThroughputModel, modeled_app_throughput_bps
from repro.core.parallel import SweepRunError
from repro.core.results import ExperimentResult, FailedRun, ResultTable
from repro.core.scenario import (
    ScenarioError,
    ScenarioSpec,
    SweepAxis,
    bundled_scenarios,
    find_scenario,
)
from repro.core.sweep import (
    baseline_config,
    run_sweep,
    sweep_antagonist_cores,
    sweep_receiver_cores,
    sweep_receivers,
    sweep_region_size,
)
from repro.core.topology import GraphBuilder, Topology
from repro.obs import MetricsRegistry, SimProfiler, write_trace

__version__ = "1.0.0"

__all__ = [
    "CpuConfig",
    "DdioConfig",
    "ExperimentConfig",
    "ExperimentHandle",
    "ExperimentResult",
    "FailedRun",
    "GraphBuilder",
    "HostConfig",
    "IommuConfig",
    "LinkConfig",
    "MemoryConfig",
    "MetricsRegistry",
    "NicConfig",
    "PcieConfig",
    "ResultCache",
    "ResultTable",
    "ScenarioError",
    "ScenarioSpec",
    "SimConfig",
    "SimProfiler",
    "SweepAxis",
    "SweepRunError",
    "SwiftConfig",
    "ThroughputModel",
    "Topology",
    "WorkloadConfig",
    "baseline_config",
    "bundled_scenarios",
    "find_scenario",
    "modeled_app_throughput_bps",
    "run_experiment",
    "run_sweep",
    "sweep_antagonist_cores",
    "sweep_receiver_cores",
    "sweep_receivers",
    "sweep_region_size",
    "write_trace",
]
