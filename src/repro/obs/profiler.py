"""Simulation profiler: where does the event loop spend its time?

Figure sweeps are minutes-long chains of millions of callbacks; engine
regressions are invisible without a breakdown.  :class:`SimProfiler`
hooks the :class:`~repro.sim.engine.Simulator` dispatch loop (see
``Simulator.set_dispatch_hook``) and accounts, per callback class:

- dispatch count and wall-clock time (``time.perf_counter``);
- events/sec per *component* (the class that owns the bound method);
- heap depth, sampled every ``sample_heap_every`` dispatches;
- the sim-time/wall-time ratio — how many simulated seconds one wall
  second buys, the headline number for ``bench_engine_micro.py``.

With no profiler installed the engine's dispatch loop pays a single
``is None`` branch per event, keeping the disabled path cheap.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Tuple

from repro.sim.engine import Simulator

__all__ = ["SimProfiler"]


class _CallbackStats:
    __slots__ = ("count", "wall_s")

    def __init__(self) -> None:
        self.count = 0
        self.wall_s = 0.0


def _callback_key(fn: Callable) -> Tuple[str, str]:
    """(component, qualified name) for one dispatched callable."""
    owner = getattr(fn, "__self__", None)
    name = getattr(fn, "__name__", repr(fn))
    if owner is not None:
        component = type(owner).__name__
        return component, f"{component}.{name}"
    return "<function>", getattr(fn, "__qualname__", name)


class SimProfiler:
    """Samples one simulator's dispatch loop while installed."""

    def __init__(self, sim: Simulator, sample_heap_every: int = 64):
        if sample_heap_every <= 0:
            raise ValueError(
                f"sample_heap_every must be positive, got {sample_heap_every}")
        self.sim = sim
        self.sample_heap_every = sample_heap_every
        self.events = 0
        self.wall_s = 0.0
        self._callbacks: Dict[str, _CallbackStats] = {}
        self._components: Dict[str, int] = {}
        self._heap_samples: List[int] = []
        self._installed = False
        self._sim_time_start = 0.0

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> None:
        """Start profiling; takes effect on the next ``sim.run`` call."""
        if self._installed:
            return
        self._installed = True
        self._sim_time_start = self.sim.now
        self.sim.set_dispatch_hook(self._dispatch)

    def uninstall(self) -> None:
        if self._installed:
            self._installed = False
            self.sim.set_dispatch_hook(None)

    def __enter__(self) -> "SimProfiler":
        self.install()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()

    # -- the hook ----------------------------------------------------------

    def _dispatch(self, _when: float, fn: Callable, args: tuple) -> None:
        start = time.perf_counter()
        fn(*args)
        elapsed = time.perf_counter() - start
        self.events += 1
        self.wall_s += elapsed
        component, key = _callback_key(fn)
        stats = self._callbacks.get(key)
        if stats is None:
            stats = self._callbacks[key] = _CallbackStats()
        stats.count += 1
        stats.wall_s += elapsed
        self._components[component] = self._components.get(component, 0) + 1
        if self.events % self.sample_heap_every == 0:
            self._heap_samples.append(len(self.sim._heap))

    # -- results -----------------------------------------------------------

    @property
    def sim_elapsed(self) -> float:
        return self.sim.now - self._sim_time_start

    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def report(self) -> Dict[str, Any]:
        """Everything measured so far, as a JSON-serializable dict."""
        heap = self._heap_samples
        events_per_sec = self.events_per_sec()
        per_component = {
            name: {
                "events": count,
                "events_per_sec": (count / self.wall_s
                                   if self.wall_s > 0 else 0.0),
            }
            for name, count in sorted(self._components.items())
        }
        callbacks = {
            key: {
                "count": stats.count,
                "wall_s": stats.wall_s,
                "mean_us": stats.wall_s / stats.count * 1e6,
            }
            for key, stats in sorted(
                self._callbacks.items(),
                key=lambda item: item[1].wall_s, reverse=True)
        }
        return {
            "events": self.events,
            "wall_s": self.wall_s,
            "events_per_sec": events_per_sec,
            "sim_time_s": self.sim_elapsed,
            "sim_wall_ratio": (self.sim_elapsed / self.wall_s
                               if self.wall_s > 0 else 0.0),
            "heap_depth": {
                "samples": len(heap),
                "mean": sum(heap) / len(heap) if heap else 0.0,
                "max": max(heap) if heap else 0,
            },
            "components": per_component,
            "callbacks": callbacks,
        }

    def format_report(self, top: int = 12) -> str:
        """A human-readable table of the report."""
        r = self.report()
        lines = [
            f"events dispatched  : {r['events']}",
            f"callback wall time : {r['wall_s']:.3f} s",
            f"events/sec         : {r['events_per_sec']:,.0f}",
            f"sim time advanced  : {r['sim_time_s'] * 1e3:.3f} ms",
            f"sim/wall ratio     : {r['sim_wall_ratio']:.4f}",
            f"heap depth         : mean {r['heap_depth']['mean']:.0f}, "
            f"max {r['heap_depth']['max']}",
            "",
            f"{'callback':<40} {'count':>10} {'wall ms':>9} {'mean us':>8}",
        ]
        for key, stats in list(r["callbacks"].items())[:top]:
            lines.append(
                f"{key:<40} {stats['count']:>10} "
                f"{stats['wall_s'] * 1e3:>9.2f} {stats['mean_us']:>8.2f}")
        return "\n".join(lines)
