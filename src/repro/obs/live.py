"""Curses-free live dashboard over the run-lifecycle event stream.

``repro sweep --live`` (and ``repro top`` replaying a ledger) render a
small redraw-in-place frame: overall progress and ETA, which worker
process is on which run right now, and live quantile sketches of wall
time, throughput, and drop rate — the fleet operator's view the paper's
monitoring pipeline provides, shrunk to one terminal.

No curses: the frame is repainted with two ANSI controls (cursor-up
``ESC[nF`` and erase-line ``ESC[K``), falling back to a single final
frame on non-TTY streams so CI logs are not flooded.  All statistics
come from folding events through
:class:`~repro.obs.telemetry.RunAggregate`, so the live view and the
post-hoc ``repro runs show`` agree by construction.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional, TextIO, Tuple

from repro.obs.telemetry import RunAggregate

__all__ = ["LiveDashboard", "format_eta", "progress_bar"]


def progress_bar(done: int, total: int, width: int = 24) -> str:
    if total <= 0:
        return "[" + "?" * width + "]"
    filled = min(width, int(width * done / total))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "ETA --"
    if seconds >= 3600:
        return f"ETA {seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"ETA {int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"ETA {seconds:.0f}s"


class LiveDashboard:
    """Fold lifecycle events; repaint a terminal frame in place."""

    def __init__(self, stream: Optional[TextIO] = None,
                 min_redraw_s: float = 0.1, alpha: float = 0.01):
        self.stream = stream if stream is not None else sys.stdout
        self.min_redraw_s = min_redraw_s
        self.aggregate = RunAggregate(alpha=alpha)
        #: pid → (run index, started wall ts) for in-flight runs.
        self.running: Dict[int, Tuple[int, float]] = {}
        self._finished_indexes: set = set()
        self._last_lines = 0
        self._last_redraw = 0.0
        self._closed = False
        try:
            self.interactive = bool(self.stream.isatty())
        except Exception:
            self.interactive = False

    # -- event intake -------------------------------------------------------

    def update(self, event: Dict) -> None:
        """Fold one event and repaint (rate-limited, TTY only)."""
        self.aggregate.fold(event)
        kind = event.get("ev")
        if kind == "started":
            pid = event.get("pid")
            index = event.get("index")
            # Queue delivery is best-effort ordered: a `started` row can
            # arrive after its run already finished — drop it then.
            if pid is not None and index not in self._finished_indexes:
                self.running[pid] = (index, event.get("ts") or time.time())
        elif kind in ("finished", "failed"):
            index = event.get("index")
            self._finished_indexes.add(index)
            for pid, (running_index, _) in list(self.running.items()):
                if running_index == index:
                    del self.running[pid]
        elif kind == "end":
            self.close()
            return
        if self.interactive:
            now = time.monotonic()
            if now - self._last_redraw >= self.min_redraw_s:
                self.refresh()

    __call__ = update

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        aggregate = self.aggregate
        total = aggregate.total or aggregate.done
        bar = progress_bar(aggregate.done, total)
        header = (f"{aggregate.label or aggregate.run_id or 'run'}  "
                  f"{aggregate.done}/{total} done  {bar}  "
                  f"{format_eta(aggregate.eta_s())}")
        lines = [header]
        if self.running:
            now = time.time()
            parts = []
            for pid in sorted(self.running):
                index, since = self.running[pid]
                parts.append(f"pid {pid} → #{index} "
                             f"({max(0.0, now - since):.1f}s)")
            lines.append("  workers: " + "   ".join(parts))
        # Body: counts + sketches, identical to `repro runs show`.
        lines.extend(aggregate.format_lines()[1:])
        return "\n".join(lines)

    def refresh(self) -> None:
        if self._closed:
            return
        frame = self.render()
        lines = frame.count("\n") + 1
        out = self.stream
        if self.interactive and self._last_lines:
            out.write(f"\x1b[{self._last_lines}F")
        if self.interactive:
            out.write("\n".join(line + "\x1b[K"
                                for line in frame.split("\n")) + "\n")
        else:
            out.write(frame + "\n")
        out.flush()
        self._last_lines = lines
        self._last_redraw = time.monotonic()

    def close(self) -> None:
        """Paint the final frame exactly once (TTY or not)."""
        if self._closed:
            return
        # The driver closes the dashboard when the run completes; if
        # every planned run is accounted for, the final frame should
        # not claim "[in progress]" just because no `end` ledger row
        # flowed through this sink.
        if self.aggregate.total and \
                self.aggregate.done >= self.aggregate.total:
            self.aggregate.ended = True
        if self.interactive:
            self.refresh()
        else:
            self.stream.write(self.render() + "\n")
            self.stream.flush()
        self._closed = True
