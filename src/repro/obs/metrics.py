"""Metrics registry: counters, gauges, and reservoir histograms.

Each metric belongs to one *component instance* (``nic``, ``iommu``,
``cpu3``, ``memory`` …) and has a short name; the full name is
``component.name``.  Components either update metrics in place
(:meth:`Counter.inc`, :meth:`Histogram.observe`) or register a
zero-cost *reader* callable so the registry can pull the value of an
existing attribute at snapshot time — the hot path then pays nothing.

The registry is the single enumeration point for every paper
observable: drop rate, IOTLB misses per packet, memory bandwidth,
host-delay percentiles, cwnd, retransmits.  ``snapshot()`` returns a
plain nested dict; ``to_json()`` serializes it.
"""

from __future__ import annotations

import json
import random
import zlib
from typing import Callable, Dict, List, Optional

from repro.core.metrics import percentile

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram reservoir size (algorithm-R uniform sample).
DEFAULT_RESERVOIR = 4096


class Counter:
    """A monotonically increasing count.

    Either updated in place with :meth:`inc`, or *reader-backed*: the
    ``fn`` callable pulls the count from an existing component
    attribute, so instrumented code paths need no extra stores.
    """

    __slots__ = ("name", "unit", "_value", "_fn")

    def __init__(self, name: str, unit: str = "",
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.unit = unit
        self._value = 0
        self._fn = fn

    def inc(self, n: float = 1) -> None:
        if self._fn is not None:
            raise TypeError(f"counter {self.name!r} is reader-backed")
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self._value += n

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def reset(self) -> None:
        """Zero the stored count (reader-backed counters follow their
        source attribute and are reset by the owning component)."""
        self._value = 0


class Gauge:
    """A point-in-time value; settable or reader-backed."""

    __slots__ = ("name", "unit", "_value", "_fn")

    def __init__(self, name: str, unit: str = "",
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.unit = unit
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise TypeError(f"gauge {self.name!r} is reader-backed")
        self._value = value

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """A sample distribution with bounded memory.

    Keeps exact ``count``/``sum``/``min``/``max`` plus a uniform random
    reservoir (Vitter's algorithm R) of at most ``reservoir`` values
    for percentile queries.  The replacement RNG is seeded from the
    metric name so runs stay reproducible.
    """

    __slots__ = ("name", "unit", "reservoir_size", "count", "total",
                 "minimum", "maximum", "_reservoir", "_rng")

    def __init__(self, name: str, unit: str = "",
                 reservoir: int = DEFAULT_RESERVOIR):
        if reservoir <= 0:
            raise ValueError(f"reservoir must be positive, got {reservoir}")
        self.name = name
        self.unit = unit
        self.reservoir_size = reservoir
        self._rng = random.Random(zlib.crc32(name.encode()))
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._reservoir: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile of the sampled reservoir (exact while
        fewer than ``reservoir`` observations have been made)."""
        if not self._reservoir:
            return 0.0
        return percentile(self._reservoir, p)

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                    "p99": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "min": self.minimum,
            "max": self.maximum,
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._reservoir.clear()


class MetricsRegistry:
    """All metrics of one simulation, keyed ``component.name``.

    Registration of a duplicate full name raises — two component
    instances must bind under distinct component labels.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._flush_callbacks: List[Callable[[], None]] = []

    # -- registration ------------------------------------------------------

    @staticmethod
    def _full_name(name: str, component: str) -> str:
        if not name:
            raise ValueError("metric name must be non-empty")
        return f"{component}.{name}" if component else name

    def _claim(self, full: str) -> None:
        if (full in self._counters or full in self._gauges
                or full in self._histograms):
            raise ValueError(f"duplicate metric {full!r}")

    def counter(self, name: str, component: str = "", unit: str = "",
                fn: Optional[Callable[[], float]] = None) -> Counter:
        full = self._full_name(name, component)
        self._claim(full)
        metric = Counter(full, unit, fn)
        self._counters[full] = metric
        return metric

    def gauge(self, name: str, component: str = "", unit: str = "",
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        full = self._full_name(name, component)
        self._claim(full)
        metric = Gauge(full, unit, fn)
        self._gauges[full] = metric
        return metric

    def histogram(self, name: str, component: str = "", unit: str = "",
                  reservoir: int = DEFAULT_RESERVOIR) -> Histogram:
        full = self._full_name(name, component)
        self._claim(full)
        metric = Histogram(full, unit, reservoir)
        self._histograms[full] = metric
        return metric

    # -- lookup ------------------------------------------------------------

    def get(self, full_name: str):
        for table in (self._counters, self._gauges, self._histograms):
            if full_name in table:
                return table[full_name]
        raise KeyError(full_name)

    def __contains__(self, full_name: str) -> bool:
        return (full_name in self._counters or full_name in self._gauges
                or full_name in self._histograms)

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def names(self) -> List[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    # -- deferred aggregation -----------------------------------------------

    def add_flush_callback(self, fn: Callable[[], None]) -> None:
        """Register a drain hook for a component that buffers hot-path
        samples locally instead of observing per event.

        Callbacks run — in registration order, which keeps histogram
        reservoir sampling deterministic — before every ``snapshot()``
        and before ``reset_window()`` touches the histograms, so the
        deferral is invisible to every reader of the registry.
        """
        self._flush_callbacks.append(fn)

    def flush(self) -> None:
        """Drain all pending deferred samples into their metrics."""
        for fn in self._flush_callbacks:
            fn()

    # -- output ------------------------------------------------------------

    def snapshot(self, prefix: str = "") -> Dict[str, Dict]:
        """Every metric's current value as a plain nested dict.

        ``prefix`` restricts the snapshot to full names starting with
        it — e.g. ``"host1/"`` selects one host's subtree of a
        multi-receiver topology.
        """
        self.flush()
        def wanted(items):
            return sorted(
                (name, metric) for name, metric in items
                if name.startswith(prefix)
            )

        return {
            "counters": {name: c.value
                         for name, c in wanted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in wanted(self._gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in wanted(self._histograms.items())},
        }

    def live_values(self, prefix: str = ""):
        """Yield ``(full_name, kind, value)`` for counters and gauges.

        The *sampling* read path: unlike :meth:`snapshot` it does not
        flush deferred samples and never touches histogram reservoirs,
        so a mid-run poll cannot perturb the measurement — results stay
        bit-identical with or without a sampler attached.  Iteration is
        in sorted name order for deterministic sample streams.
        """
        for name in sorted(self._counters):
            if name.startswith(prefix):
                yield name, "counter", self._counters[name].value
        for name in sorted(self._gauges):
            if name.startswith(prefix):
                yield name, "gauge", self._gauges[name].value

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def reset_window(self) -> None:
        """Warmup boundary: zero stored counters and histogram samples.

        Reader-backed metrics follow their source attributes, which the
        owning components reset through their own ``reset_stats()``.
        Deferred samples buffered during warmup are flushed *first* —
        they must pass through the histograms before the reset so the
        reservoir RNGs advance exactly as they would under per-event
        observation (``Histogram.reset()`` does not reseed ``_rng``).
        """
        self.flush()
        for counter in self._counters.values():
            if counter._fn is None:
                counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
