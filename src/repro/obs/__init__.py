"""Unified observability: metrics, trace export, and profiling.

The paper's argument is about *observability the fleet lacked* — host
drops were invisible because nobody watched NIC buffer occupancy, IOTLB
miss rates, and memory-bus queueing at sub-RTT granularity.  This
package is the simulator's answer: every component registers its
counters in a :class:`MetricsRegistry`, any run's trace opens in
Perfetto (``ui.perfetto.dev``) via :func:`write_trace`, and the event
loop itself is measurable with :class:`SimProfiler`.

Public surface:

- :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  reservoir-sampled histograms labeled by component instance, with a
  ``snapshot()``/``to_json()`` API.
- :func:`~repro.obs.perfetto.to_perfetto` /
  :func:`~repro.obs.perfetto.write_trace` — Chrome/Perfetto
  trace-event JSON export for :class:`~repro.sim.tracing.Tracer`.
- :class:`~repro.obs.profiler.SimProfiler` — samples the event loop
  (events/sec per component, wall-time per callback class, heap depth,
  sim-time/wall-time ratio).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.perfetto import to_perfetto, to_trace_events, write_trace
from repro.obs.profiler import SimProfiler

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SimProfiler",
    "to_perfetto",
    "to_trace_events",
    "write_trace",
]
