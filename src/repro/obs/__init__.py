"""Unified observability: metrics, trace export, and profiling.

The paper's argument is about *observability the fleet lacked* — host
drops were invisible because nobody watched NIC buffer occupancy, IOTLB
miss rates, and memory-bus queueing at sub-RTT granularity.  This
package is the simulator's answer: every component registers its
counters in a :class:`MetricsRegistry`, any run's trace opens in
Perfetto (``ui.perfetto.dev``) via :func:`write_trace`, and the event
loop itself is measurable with :class:`SimProfiler`.

Public surface:

- :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  reservoir-sampled histograms labeled by component instance, with a
  ``snapshot()``/``to_json()`` API.
- :func:`~repro.obs.perfetto.to_perfetto` /
  :func:`~repro.obs.perfetto.write_trace` — Chrome/Perfetto
  trace-event JSON export for :class:`~repro.sim.tracing.Tracer`.
- :class:`~repro.obs.profiler.SimProfiler` — samples the event loop
  (events/sec per component, wall-time per callback class, heap depth,
  sim-time/wall-time ratio).
- the live telemetry plane — :class:`~repro.obs.telemetry.TelemetryBus`
  + :class:`~repro.obs.telemetry.MetricsSampler` poll the registry on a
  sim-time cadence into a subscriber bus (the future Controller's read
  API); :class:`~repro.obs.sketch.QuantileSketch` /
  :class:`~repro.obs.telemetry.RunAggregate` are the mergeable,
  constant-memory summaries the fleet-scale aggregation folds; and
  :class:`~repro.obs.live.LiveDashboard` renders the event stream as a
  redraw-in-place terminal frame.
"""

from repro.obs.live import LiveDashboard
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.perfetto import (
    to_counter_events,
    to_perfetto,
    to_trace_events,
    write_trace,
)
from repro.obs.profiler import SimProfiler
from repro.obs.sketch import CategoryTally, QuantileSketch
from repro.obs.telemetry import (
    MetricsSampler,
    RunAggregate,
    Subscription,
    TelemetryBus,
    TelemetrySample,
    classify_root_cause,
)

__all__ = [
    "CategoryTally",
    "Counter",
    "Gauge",
    "Histogram",
    "LiveDashboard",
    "MetricsRegistry",
    "MetricsSampler",
    "QuantileSketch",
    "RunAggregate",
    "SimProfiler",
    "Subscription",
    "TelemetryBus",
    "TelemetrySample",
    "classify_root_cause",
    "to_counter_events",
    "to_perfetto",
    "to_trace_events",
    "write_trace",
]
