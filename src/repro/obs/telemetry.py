"""The live telemetry plane: in-sim sampling bus and run aggregation.

The paper's observation — hosts dropping packets while the fabric
looks idle — was only visible because per-host interconnect counters
were watched *live*, not post-hoc.  This module is the reproduction's
equivalent read path, in two halves:

**In-sim** (:class:`MetricsSampler` → :class:`TelemetryBus`): a
sampler component polls the :class:`~repro.obs.metrics.MetricsRegistry`
on a fixed sim-time interval — drift-free ``epoch + k·interval``
scheduling, like the time-series recorder — and publishes typed
:class:`TelemetrySample` records onto a bounded, subscriber-based bus.
The bus is deliberately hook-first (subscribe/unsubscribe, last-value
queries, windowed deltas and rates): it is the exact API a future
in-sim Controller (ROADMAP item 5) will consume to actuate on live
metrics.  Sampling reads counter/gauge values only — never histogram
reservoirs, never deferred-flush hooks — so an attached sampler cannot
perturb results: outputs stay bit-identical with telemetry on or off.

**Cross-run** (:class:`RunAggregate`): a constant-memory fold over the
lifecycle event stream that workers emit during a sweep or fleet run
(see ``core/parallel.py`` / ``core/ledger.py``).  Wall time,
events/sec, throughput, and drop rate go into mergeable
:class:`~repro.obs.sketch.QuantileSketch` instances; failures and
root-cause classes into :class:`~repro.obs.sketch.CategoryTally`.
``RunAggregate.merge`` is the fleet-scale aggregation protocol of
ROADMAP item 2: any partition of the event stream folds to the same
aggregate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.sketch import CategoryTally, QuantileSketch

__all__ = [
    "MetricsSampler",
    "RunAggregate",
    "Subscription",
    "TelemetryBus",
    "TelemetrySample",
    "classify_root_cause",
]


@dataclass(frozen=True)
class TelemetrySample:
    """One polled metric value at one sim time."""

    time: float
    name: str
    kind: str  # "counter" | "gauge"
    value: float

    def as_list(self) -> list:
        """Compact JSON-friendly form ``[time, name, kind, value]``."""
        return [self.time, self.name, self.kind, self.value]


class Subscription:
    """A bounded sample queue attached to the bus.

    The queue keeps the most recent ``maxlen`` samples; older ones are
    dropped (and counted in ``dropped``) rather than blocking the
    publisher — a slow consumer must never stall the simulation.
    """

    def __init__(self, bus: "TelemetryBus", prefix: str, maxlen: int):
        self.bus = bus
        self.prefix = prefix
        self.maxlen = maxlen
        self.delivered = 0
        self.dropped = 0
        self._queue: Deque[TelemetrySample] = deque(maxlen=maxlen)

    def _offer(self, sample: TelemetrySample) -> None:
        if len(self._queue) == self.maxlen:
            self.dropped += 1
        self._queue.append(sample)
        self.delivered += 1

    def poll(self) -> List[TelemetrySample]:
        """Drain and return every queued sample (oldest first)."""
        out = list(self._queue)
        self._queue.clear()
        return out

    def __iter__(self):
        """Non-draining view of the queued samples."""
        return iter(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        self.bus.unsubscribe(self)


class TelemetryBus:
    """Fan-out point between the sampler and any number of consumers.

    Besides per-subscriber queues, the bus keeps the last sample and a
    bounded time/value history per metric name, so consumers that only
    need "current value" or "change over the last window" — the
    Controller's two primitives — never touch a queue at all.
    """

    def __init__(self, history: int = 256):
        if history < 2:
            raise ValueError(f"history must be >= 2, got {history}")
        self.history_len = history
        self.published = 0
        self._subscribers: List[Subscription] = []
        self._last: Dict[str, TelemetrySample] = {}
        self._history: Dict[str, Deque[Tuple[float, float]]] = {}

    # -- subscriber management ----------------------------------------------

    def subscribe(self, prefix: str = "",
                  maxlen: int = 4096) -> Subscription:
        """Attach a bounded queue receiving samples whose full metric
        name starts with ``prefix`` (empty prefix = everything)."""
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        subscription = Subscription(self, prefix, maxlen)
        self._subscribers.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> bool:
        try:
            self._subscribers.remove(subscription)
            return True
        except ValueError:
            return False

    # -- publishing ---------------------------------------------------------

    def publish(self, sample: TelemetrySample) -> None:
        self.published += 1
        self._last[sample.name] = sample
        history = self._history.get(sample.name)
        if history is None:
            history = deque(maxlen=self.history_len)
            self._history[sample.name] = history
        history.append((sample.time, sample.value))
        for subscription in self._subscribers:
            if sample.name.startswith(subscription.prefix):
                subscription._offer(sample)

    # -- point queries (the Controller read API) ----------------------------

    def names(self) -> List[str]:
        return sorted(self._last)

    def last(self, name: str) -> Optional[TelemetrySample]:
        return self._last.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        sample = self._last.get(name)
        return sample.value if sample is not None else default

    def delta(self, name: str, window: float) -> Optional[float]:
        """Change in ``name`` over the trailing ``window`` sim-seconds.

        Baseline is the newest sample at or before ``now - window``
        (the oldest retained sample if the history is shorter).
        ``None`` until the metric has been sampled twice.
        """
        history = self._history.get(name)
        if history is None or len(history) < 2:
            return None
        t_end, v_end = history[-1]
        cutoff = t_end - window
        baseline = history[0][1]
        for t, v in history:
            if t > cutoff:
                break
            baseline = v
        return v_end - baseline

    def rate(self, name: str, window: float) -> Optional[float]:
        """Average per-second change of ``name`` over the window."""
        history = self._history.get(name)
        if history is None or len(history) < 2:
            return None
        t_end, v_end = history[-1]
        cutoff = t_end - window
        t_base, v_base = history[0]
        for t, v in history:
            if t > cutoff:
                break
            t_base, v_base = t, v
        if t_end <= t_base:
            return None
        return (v_end - v_base) / (t_end - t_base)


class MetricsSampler:
    """SimComponent that polls the registry onto the bus on a schedule.

    Ticks fire at absolute times ``epoch + k · interval`` (epoch =
    sim-time of :meth:`start`), so the cadence never drifts however
    long a poll takes.  Each tick reads counters and gauges through
    :meth:`MetricsRegistry.live_values` — a pure read that skips
    deferred flushes and histogram reservoirs, keeping the measurement
    unperturbed.  ``select`` optionally restricts polling to metric
    names starting with any of the given prefixes.
    """

    label = "sampler"

    def __init__(self, sim, registry, bus: TelemetryBus,
                 interval: float,
                 select: Optional[Tuple[str, ...]] = None):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.sim = sim
        self.registry = registry
        self.bus = bus
        self.interval = interval
        self.select = tuple(select) if select else None
        self.ticks = 0
        self.samples_emitted = 0
        self._running = False
        self._epoch = 0.0
        self._tick_index = 0

    # -- scheduling ---------------------------------------------------------

    def start(self) -> None:
        """Begin sampling; the first tick fires one interval from now."""
        if self._running:
            return
        self._running = True
        self._epoch = self.sim.now
        self._tick_index = 0
        self.sim.at(self._next_tick_time(), self._tick)

    def stop(self) -> None:
        """Disarm: a pending tick becomes a no-op."""
        self._running = False

    def _next_tick_time(self) -> float:
        return self._epoch + (self._tick_index + 1) * self.interval

    def _tick(self) -> None:
        if not self._running:
            return
        self._tick_index += 1
        self.ticks += 1
        now = self.sim.now
        for name, kind, value in self.registry.live_values():
            if self.select is not None and not any(
                    name.startswith(prefix) for prefix in self.select):
                continue
            self.bus.publish(
                TelemetrySample(time=now, name=name, kind=kind,
                                value=float(value)))
            self.samples_emitted += 1
        self.sim.at(self._next_tick_time(), self._tick)

    # -- SimComponent protocol ----------------------------------------------

    def children(self):
        return ()

    def bind_metrics(self, registry, name: str = "") -> None:
        component = name or self.label
        registry.counter("ticks", component,
                         fn=lambda: self.ticks)
        registry.counter("samples_emitted", component,
                         fn=lambda: self.samples_emitted)

    def reset_stats(self) -> None:
        self.ticks = 0
        self.samples_emitted = 0

    def snapshot(self) -> Dict[str, float]:
        return {"ticks": self.ticks,
                "samples_emitted": self.samples_emitted,
                "interval": self.interval}


def classify_root_cause(params: Dict) -> str:
    """Root-cause label for one run's config (the Fig. 1 taxonomy).

    Mirrors :attr:`repro.workload.fleet.FleetSample.congestion_class`:
    heavy memory antagonists collapse the NIC-to-memory path
    ("memory-bus"); many-core IOMMU hosts thrash the IOTLB ("iommu");
    everything else is CPU-bound or healthy.
    """
    try:
        if int(params.get("antagonist_cores", 0)) >= 8:
            return "memory-bus"
        if params.get("iommu") and int(params.get("cores", 0)) > 8:
            return "iommu"
    except (TypeError, ValueError):
        return "unknown"
    return "cpu-or-none"


#: result.metrics keys folded into per-sweep sketches when present.
HEADLINE_METRICS = (
    ("app_throughput_gbps", "throughput_gbps"),
    ("drop_rate", "drop_rate"),
    ("link_utilization", "link_utilization"),
)


class RunAggregate:
    """Constant-memory, mergeable fold of a run-lifecycle event stream.

    Feed it ledger rows (or live events) via :meth:`fold`; merge
    partial aggregates from different workers/files via :meth:`merge`.
    Because every statistic inside is itself mergeable (counts,
    sketches, tallies), ``fold(a + b) == fold(a).merge(fold(b))`` for
    any split of the stream — the property ROADMAP item 2's
    million-host aggregation relies on.
    """

    SKETCH_KEYS = ("wall_s", "events_per_sec", "throughput_gbps",
                   "drop_rate", "link_utilization")

    def __init__(self, alpha: float = 0.01):
        self.alpha = alpha
        self.label = ""
        self.run_id = ""
        self.total = 0
        self.queued = 0
        self.started = 0
        self.finished = 0
        self.failed = 0
        self.cached = 0
        self.first_ts: Optional[float] = None
        self.last_ts: Optional[float] = None
        self.ended = False
        self.sketches: Dict[str, QuantileSketch] = {
            key: QuantileSketch(alpha=alpha) for key in self.SKETCH_KEYS}
        self.root_causes = CategoryTally()
        self.failure_kinds = CategoryTally()

    # -- folding ------------------------------------------------------------

    def _touch(self, event: Dict) -> None:
        ts = event.get("ts")
        if ts is None:
            return
        if self.first_ts is None or ts < self.first_ts:
            self.first_ts = ts
        if self.last_ts is None or ts > self.last_ts:
            self.last_ts = ts

    def _fold_metrics(self, event: Dict) -> None:
        metrics = event.get("metrics") or {}
        for source_key, sketch_key in HEADLINE_METRICS:
            value = metrics.get(source_key)
            if value is not None:
                self.sketches[sketch_key].observe(float(value))

    def fold(self, event: Dict) -> None:
        """Incorporate one lifecycle event (a parsed ledger row)."""
        kind = event.get("ev")
        self._touch(event)
        if kind == "begin":
            self.label = event.get("label", self.label)
            self.run_id = event.get("run_id", self.run_id)
        elif kind == "end":
            self.ended = True
        elif kind == "plan":
            self.total += int(event.get("total", 0))
        elif kind == "queued":
            self.queued += 1
        elif kind == "started":
            self.started += 1
        elif kind == "cached":
            self.cached += 1
            self._fold_metrics(event)
            params = event.get("params")
            if params:
                self.root_causes.add(classify_root_cause(params))
        elif kind == "finished":
            self.finished += 1
            self._fold_metrics(event)
            wall = event.get("wall_s")
            if wall is not None:
                self.sketches["wall_s"].observe(float(wall))
                engine_events = event.get("engine_events")
                if engine_events and float(wall) > 0:
                    self.sketches["events_per_sec"].observe(
                        float(engine_events) / float(wall))
            params = event.get("params")
            if params:
                self.root_causes.add(classify_root_cause(params))
        elif kind == "failed":
            self.failed += 1
            self.failure_kinds.add(event.get("failure_kind", "error"))
            wall = event.get("wall_s")
            if wall is not None:
                self.sketches["wall_s"].observe(float(wall))

    def fold_all(self, events) -> "RunAggregate":
        for event in events:
            self.fold(event)
        return self

    # -- merge protocol -----------------------------------------------------

    def merge(self, other: "RunAggregate") -> "RunAggregate":
        if other.alpha != self.alpha:
            raise ValueError("cannot merge aggregates with different "
                             f"alpha: {self.alpha} vs {other.alpha}")
        self.label = self.label or other.label
        self.run_id = self.run_id or other.run_id
        self.total += other.total
        self.queued += other.queued
        self.started += other.started
        self.finished += other.finished
        self.failed += other.failed
        self.cached += other.cached
        if other.first_ts is not None:
            self.first_ts = (other.first_ts if self.first_ts is None
                             else min(self.first_ts, other.first_ts))
        if other.last_ts is not None:
            self.last_ts = (other.last_ts if self.last_ts is None
                            else max(self.last_ts, other.last_ts))
        self.ended = self.ended or other.ended
        for key in self.SKETCH_KEYS:
            self.sketches[key].merge(other.sketches[key])
        self.root_causes.merge(other.root_causes)
        self.failure_kinds.merge(other.failure_kinds)
        return self

    # -- queries ------------------------------------------------------------

    @property
    def done(self) -> int:
        """Runs accounted for (finished + failed + cache hits)."""
        return self.finished + self.failed + self.cached

    @property
    def elapsed_s(self) -> float:
        if self.first_ts is None or self.last_ts is None:
            return 0.0
        return self.last_ts - self.first_ts

    def eta_s(self) -> Optional[float]:
        """Naive remaining-time estimate from the observed run rate."""
        if not self.total or self.done >= self.total:
            return 0.0 if self.total else None
        live_done = self.finished + self.failed
        if live_done == 0 or self.elapsed_s <= 0:
            return None
        rate = live_done / self.elapsed_s
        return (self.total - self.done) / rate

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "alpha": self.alpha,
            "label": self.label,
            "run_id": self.run_id,
            "total": self.total,
            "queued": self.queued,
            "started": self.started,
            "finished": self.finished,
            "failed": self.failed,
            "cached": self.cached,
            "first_ts": self.first_ts,
            "last_ts": self.last_ts,
            "ended": self.ended,
            "sketches": {key: sketch.to_dict()
                         for key, sketch in self.sketches.items()},
            "root_causes": self.root_causes.to_dict(),
            "failure_kinds": self.failure_kinds.to_dict(),
        }

    @classmethod
    def from_dict(cls, state: Dict) -> "RunAggregate":
        aggregate = cls(alpha=state["alpha"])
        aggregate.label = state["label"]
        aggregate.run_id = state["run_id"]
        aggregate.total = int(state["total"])
        aggregate.queued = int(state["queued"])
        aggregate.started = int(state["started"])
        aggregate.finished = int(state["finished"])
        aggregate.failed = int(state["failed"])
        aggregate.cached = int(state["cached"])
        aggregate.first_ts = state["first_ts"]
        aggregate.last_ts = state["last_ts"]
        aggregate.ended = bool(state["ended"])
        aggregate.sketches = {
            key: QuantileSketch.from_dict(value)
            for key, value in state["sketches"].items()}
        aggregate.root_causes = CategoryTally.from_dict(
            state["root_causes"])
        aggregate.failure_kinds = CategoryTally.from_dict(
            state["failure_kinds"])
        return aggregate

    def __eq__(self, other) -> bool:
        if not isinstance(other, RunAggregate):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    # -- rendering ----------------------------------------------------------

    @staticmethod
    def _fmt_sketch(sketch: QuantileSketch, unit: str = "") -> str:
        if sketch.count == 0:
            return "—"
        return (f"p50 {sketch.quantile(50):.4g}{unit}  "
                f"p90 {sketch.quantile(90):.4g}{unit}  "
                f"p99 {sketch.quantile(99):.4g}{unit}  "
                f"(n={sketch.count})")

    def format_lines(self) -> List[str]:
        """Human-readable summary (the body of ``repro runs show``)."""
        header = self.run_id or self.label or "run"
        lines = [header]
        counts = (f"  runs: {self.done}/{self.total or self.done} done"
                  f" — {self.finished} finished, {self.cached} cached,"
                  f" {self.failed} failed")
        if not self.ended:
            counts += "  [in progress]"
        lines.append(counts)
        if self.elapsed_s:
            lines.append(f"  elapsed: {self.elapsed_s:.2f}s wall")
        titles = {
            "wall_s": ("wall/run", "s"),
            "events_per_sec": ("events/s", ""),
            "throughput_gbps": ("tput Gbps", ""),
            "drop_rate": ("drop rate", ""),
            "link_utilization": ("link util", ""),
        }
        for key in self.SKETCH_KEYS:
            sketch = self.sketches[key]
            if sketch.count:
                title, unit = titles[key]
                lines.append(f"  {title:<10} "
                             f"{self._fmt_sketch(sketch, unit)}")
        if len(self.root_causes):
            parts = ", ".join(f"{label} {count}" for label, count
                              in self.root_causes.most_common())
            lines.append(f"  root causes: {parts}")
        if len(self.failure_kinds):
            parts = ", ".join(f"{label} {count}" for label, count
                              in self.failure_kinds.most_common())
            lines.append(f"  failures: {parts}")
        return lines
