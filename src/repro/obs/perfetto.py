"""Chrome/Perfetto trace-event JSON export.

Converts :class:`~repro.sim.tracing.TraceRecord` streams into the
Trace Event Format that ``ui.perfetto.dev`` and ``chrome://tracing``
load directly, so any simulation run can be inspected visually — e.g.
the Swift blind-spot window, where NIC DMA spans stretch while the
sender's RTT samples stay flat.

Mapping:

- each traced *component* becomes one named thread (``tid``) of a
  single ``repro-sim`` process;
- ``"B"``/``"E"`` span pairs are matched by ``span_id`` and emitted as
  one complete (``"X"``) event with a duration;
- ``"X"`` records pass through as complete events;
- instant (``"i"``) records become instant events;
- simulation seconds become trace microseconds (the format's unit).

Unmatched begins (spans still open at export time) are emitted as
``"B"`` events; Perfetto renders them as unfinished slices.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.sim.tracing import TraceRecord, Tracer

__all__ = ["to_counter_events", "to_perfetto", "to_trace_events",
           "write_trace"]

_PID = 1

#: Seconds → trace-event timestamp units (microseconds).
_US = 1e6


def _json_safe(fields: Dict) -> Dict:
    return {k: (v if isinstance(v, (int, float, str, bool, type(None)))
                else str(v))
            for k, v in fields.items()}


def to_trace_events(
    records: Iterable[TraceRecord],
) -> List[Dict]:
    """Convert records to a list of trace-event dicts.

    Components are assigned thread ids in first-seen order; metadata
    events naming the process and each thread are prepended.
    """
    tids: Dict[str, int] = {}
    events: List[Dict] = []
    open_begins: Dict[int, TraceRecord] = {}

    def tid_for(component: str) -> int:
        tid = tids.get(component)
        if tid is None:
            tid = tids[component] = len(tids) + 1
        return tid

    for record in records:
        tid = tid_for(record.component)
        if record.phase == "B":
            open_begins[record.span_id] = record
        elif record.phase == "E":
            begun = open_begins.pop(record.span_id, None)
            if begun is None:
                # The begin was evicted from the flight recorder; emit
                # the bare end so the slice is still visible.
                events.append({
                    "name": record.event, "ph": "E", "pid": _PID,
                    "tid": tid, "ts": record.time * _US,
                    "args": _json_safe(record.fields),
                })
                continue
            args = _json_safe({**begun.fields, **record.fields})
            args.pop("dur", None)
            events.append({
                "name": record.event, "ph": "X", "pid": _PID, "tid": tid,
                "ts": begun.time * _US,
                "dur": (record.time - begun.time) * _US,
                "args": args,
            })
        elif record.phase == "X":
            args = _json_safe(record.fields)
            duration = args.pop("dur", 0.0)
            events.append({
                "name": record.event, "ph": "X", "pid": _PID, "tid": tid,
                "ts": record.time * _US, "dur": duration * _US,
                "args": args,
            })
        else:
            events.append({
                "name": record.event, "ph": "i", "pid": _PID, "tid": tid,
                "ts": record.time * _US, "s": "t",
                "args": _json_safe(record.fields),
            })

    # Spans still open at export time: visible as unfinished slices.
    for begun in open_begins.values():
        events.append({
            "name": begun.event, "ph": "B", "pid": _PID,
            "tid": tids[begun.component], "ts": begun.time * _US,
            "args": _json_safe(begun.fields),
        })

    metadata: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": _PID,
        "args": {"name": "repro-sim"},
    }]
    for component, tid in tids.items():
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": component},
        })
    return metadata + events


def to_counter_events(samples: Iterable, pid: int = _PID) -> List[Dict]:
    """Telemetry samples → Chrome counter-track (``"C"``) events.

    ``samples`` is any iterable of objects with ``time``/``name``/
    ``value`` attributes (e.g.
    :class:`~repro.obs.telemetry.TelemetrySample`).  Each distinct
    metric name becomes one counter track, so gauge and counter
    evolution renders as step plots alongside the span tracks.
    """
    return [{
        "name": sample.name, "ph": "C", "pid": pid,
        "ts": sample.time * _US,
        "args": {"value": sample.value},
    } for sample in samples]


def to_perfetto(source: Union[Tracer, Iterable[TraceRecord]],
                counter_samples: Iterable = ()) -> Dict:
    """The full trace-event JSON document for a tracer or record list.

    ``counter_samples`` optionally adds counter tracks (see
    :func:`to_counter_events`) to the same document.
    """
    records = source.records if isinstance(source, Tracer) else source
    events = to_trace_events(records)
    events.extend(to_counter_events(counter_samples))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
    }


def write_trace(path: Union[str, Path],
                source: Union[Tracer, Iterable[TraceRecord]],
                counter_samples: Iterable = ()) -> Path:
    """Serialize ``source`` as Perfetto-loadable JSON at ``path``."""
    path = Path(path)
    path.write_text(json.dumps(to_perfetto(
        source, counter_samples=counter_samples)))
    return path
