"""Mergeable, deterministic summaries for fleet-scale aggregation.

Watching a fleet means folding millions of per-run summaries into one —
which only works if the summary is *mergeable*: constant-size, and with
a ``merge()`` that is associative and order-independent, so it does not
matter which worker saw which run or in what order the parent folded
them.

:class:`QuantileSketch` is a DDSketch-style log-bucketed quantile
sketch (Masson et al., VLDB '19).  Values land in geometric buckets
``gamma**i`` with ``gamma = (1 + alpha) / (1 - alpha)``, so every
bucket midpoint is within relative error ``alpha`` of anything stored
in it.  We choose this shape over KLL or t-digest deliberately: their
merges are compaction- or centroid-order-dependent, while merging two
log-bucketed sketches is plain bucket-count addition — *exactly*
associative, commutative, and deterministic, which is what the
fleet-aggregation protocol (ROADMAP item 2) needs.

Accuracy contract: ``quantile(p)`` returns a value within relative
error ``alpha`` of some sample whose rank differs from the target rank
``p/100 * (count - 1)`` by less than one.  The default ``alpha`` of 1%
keeps p50/p99/p999 estimates within 1% of the true order statistic —
tested against a sorted-list oracle in ``tests/test_sketch.py``.

The bucket table is bounded by ``max_bins``; the default (4096) covers
any value span of ~1e35 at 1% error, so real metric streams never hit
the collapse path.  If an adversarial stream does, the lowest buckets
are folded together (biasing only the extreme low quantiles) and
``collapsed`` is set.  Collapse is a deterministic function of the
bucket multiset, so equal-content sketches stay equal — but collapse at
*different* intermediate groupings can differ, which is why the cap is
set far above any realistic occupancy.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["CategoryTally", "Density2D", "QuantileSketch"]

#: Magnitudes below this collapse into the exact-zero bucket.
_MIN_TRACKED = 1e-12


class QuantileSketch:
    """Fixed-size quantile sketch with an exactly-associative merge."""

    __slots__ = ("alpha", "max_bins", "_gamma", "_log_gamma", "count",
                 "total", "minimum", "maximum", "zero_count", "_bins",
                 "_neg_bins", "collapsed")

    def __init__(self, alpha: float = 0.01, max_bins: int = 4096):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.alpha = alpha
        self.max_bins = max_bins
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.zero_count = 0
        self._bins: Dict[int, int] = {}       # key i: (gamma^(i-1), gamma^i]
        self._neg_bins: Dict[int, int] = {}   # mirrored for negatives
        self.collapsed = False

    # -- ingest -------------------------------------------------------------

    def _key(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def observe(self, value: float, n: int = 1) -> None:
        """Fold ``n`` occurrences of ``value`` into the sketch."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"cannot observe non-finite value {value!r}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.count += n
        self.total += value * n
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if abs(value) < _MIN_TRACKED:
            self.zero_count += n
        elif value > 0:
            key = self._key(value)
            self._bins[key] = self._bins.get(key, 0) + n
        else:
            key = self._key(-value)
            self._neg_bins[key] = self._neg_bins.get(key, 0) + n
        self._maybe_collapse()

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def _maybe_collapse(self) -> None:
        # Fold the lowest-magnitude buckets together until under the
        # cap.  Deterministic in the bucket multiset; biases only the
        # extreme low quantiles of an already-pathological stream.
        for bins in (self._bins, self._neg_bins):
            while len(bins) > self.max_bins:
                keys = sorted(bins)
                low, second = keys[0], keys[1]
                bins[second] += bins.pop(low)
                self.collapsed = True

    # -- merge protocol -----------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into ``self`` (bucket-count addition).

        Requires identical ``(alpha, max_bins)`` — merging sketches with
        different resolutions would silently degrade the error bound.
        Returns ``self`` so folds chain.
        """
        if (other.alpha, other.max_bins) != (self.alpha, self.max_bins):
            raise ValueError(
                "cannot merge sketches with different parameters: "
                f"({self.alpha}, {self.max_bins}) vs "
                f"({other.alpha}, {other.max_bins})")
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.zero_count += other.zero_count
        for key, occupancy in other._bins.items():
            self._bins[key] = self._bins.get(key, 0) + occupancy
        for key, occupancy in other._neg_bins.items():
            self._neg_bins[key] = self._neg_bins.get(key, 0) + occupancy
        self.collapsed = self.collapsed or other.collapsed
        self._maybe_collapse()
        return self

    # -- queries ------------------------------------------------------------

    def _midpoint(self, key: int) -> float:
        # Harmonic midpoint of (gamma^(k-1), gamma^k]: within alpha
        # relative error of every value in the bucket.
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    def quantile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (``p`` in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            raise ValueError("quantile() of an empty sketch")
        if p == 0.0:
            return self.minimum
        if p == 100.0:
            return self.maximum
        target = p / 100.0 * (self.count - 1)
        cumulative = 0
        # Walk value order: negatives (descending key = ascending
        # value), zeros, positives (ascending key).
        for key in sorted(self._neg_bins, reverse=True):
            cumulative += self._neg_bins[key]
            if cumulative > target:
                return max(-self._midpoint(key), self.minimum)
        cumulative += self.zero_count
        if cumulative > target:
            return 0.0
        for key in sorted(self._bins):
            cumulative += self._bins[key]
            if cumulative > target:
                return min(self._midpoint(key), self.maximum)
        return self.maximum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """Headline statistics, mirroring ``Histogram.summary()``."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.quantile(50),
            "p90": self.quantile(90),
            "p99": self.quantile(99),
        }

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe state; exact round-trip via :meth:`from_dict`."""
        return {
            "alpha": self.alpha,
            "max_bins": self.max_bins,
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
            "zero": self.zero_count,
            "bins": {str(key): occ for key, occ in sorted(
                self._bins.items())},
            "neg_bins": {str(key): occ for key, occ in sorted(
                self._neg_bins.items())},
            "collapsed": self.collapsed,
        }

    @classmethod
    def from_dict(cls, state: Dict) -> "QuantileSketch":
        sketch = cls(alpha=state["alpha"], max_bins=state["max_bins"])
        sketch.count = int(state["count"])
        sketch.total = float(state["total"])
        if state["min"] is not None:
            sketch.minimum = float(state["min"])
        if state["max"] is not None:
            sketch.maximum = float(state["max"])
        sketch.zero_count = int(state["zero"])
        sketch._bins = {int(k): int(v) for k, v in state["bins"].items()}
        sketch._neg_bins = {int(k): int(v)
                            for k, v in state["neg_bins"].items()}
        sketch.collapsed = bool(state["collapsed"])
        return sketch

    def __eq__(self, other) -> bool:
        """Exact equality of the quantile-bearing state (bucket
        counts, extremes, parameters).  ``total`` is a float
        accumulator, so its last ulp depends on merge order; it is
        compared to relative 1e-9 so equality stays order-independent.
        """
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        mine, theirs = self.to_dict(), other.to_dict()
        total_a = mine.pop("total")
        total_b = theirs.pop("total")
        return mine == theirs and math.isclose(
            total_a, total_b, rel_tol=1e-9, abs_tol=1e-12)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"QuantileSketch(count={self.count}, "
                f"bins={len(self._bins) + len(self._neg_bins)}, "
                f"alpha={self.alpha})")


class Density2D:
    """Mergeable 2-D density grid: linear x bins × log-scaled y bins.

    The streaming replacement for a raw scatter: each ``(x, y)`` point
    lands in one cell of a fixed grid, so a million-host population
    compresses to at most ``x_bins * (y_decades * y_per_decade + 1)``
    integer counts — constant memory, and ``merge()`` is plain cell
    addition (exactly associative and commutative, like
    :class:`QuantileSketch`).

    The y axis is logarithmic with a dedicated *zero* bin below
    ``y_floor``, matching how Fig. 1 plots drop rates: the interesting
    structure spans 1e-6..1e-1 and a linear grid would collapse it
    into one bin.  X values are clamped into ``[x_min, x_max]``;
    y values above ``y_ceil`` land in the top bin.

    Cell midpoints (:meth:`x_mid` / :meth:`y_mid`) reconstruct a
    weighted scatter for rendering and for rank statistics
    (:func:`repro.workload.fleet_agg.density_rank_correlation`).
    """

    __slots__ = ("x_min", "x_max", "x_bins", "y_floor", "y_ceil",
                 "y_per_decade", "_cells")

    #: y bin index reserved for values below ``y_floor`` (exact zeros
    #: and negligible magnitudes).
    ZERO_BIN = -1

    def __init__(self, x_min: float = 0.0, x_max: float = 1.1,
                 x_bins: int = 44, y_floor: float = 1e-7,
                 y_ceil: float = 1.0, y_per_decade: int = 8):
        if not x_max > x_min:
            raise ValueError(
                f"x_max must exceed x_min, got [{x_min}, {x_max}]")
        if x_bins < 1 or y_per_decade < 1:
            raise ValueError("x_bins and y_per_decade must be >= 1")
        if not 0.0 < y_floor < y_ceil:
            raise ValueError(
                f"need 0 < y_floor < y_ceil, got [{y_floor}, {y_ceil}]")
        self.x_min = float(x_min)
        self.x_max = float(x_max)
        self.x_bins = int(x_bins)
        self.y_floor = float(y_floor)
        self.y_ceil = float(y_ceil)
        self.y_per_decade = int(y_per_decade)
        self._cells: Dict[Tuple[int, int], int] = {}

    # -- binning ------------------------------------------------------------

    def _x_key(self, x: float) -> int:
        span = self.x_max - self.x_min
        position = (float(x) - self.x_min) / span
        return min(self.x_bins - 1, max(0, int(position * self.x_bins)))

    def _y_key(self, y: float) -> int:
        y = float(y)
        if y < self.y_floor:
            return self.ZERO_BIN
        if y > self.y_ceil:
            y = self.y_ceil
        # Log-decade position above the floor, quantized.
        decades = math.log10(y / self.y_floor)
        key = int(decades * self.y_per_decade)
        top = self._top_y_key()
        return min(key, top)

    def _top_y_key(self) -> int:
        decades = math.log10(self.y_ceil / self.y_floor)
        return int(math.ceil(decades * self.y_per_decade))

    def observe(self, x: float, y: float, n: int = 1) -> None:
        """Fold ``n`` points at ``(x, y)`` into the grid."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if not (math.isfinite(x) and math.isfinite(y)):
            raise ValueError(
                f"cannot observe non-finite point ({x!r}, {y!r})")
        key = (self._x_key(x), self._y_key(y))
        self._cells[key] = self._cells.get(key, 0) + n

    # -- midpoints ----------------------------------------------------------

    def x_mid(self, xi: int) -> float:
        width = (self.x_max - self.x_min) / self.x_bins
        return self.x_min + (xi + 0.5) * width

    def y_mid(self, yi: int) -> float:
        if yi == self.ZERO_BIN:
            return 0.0
        # Geometric midpoint of the log-spaced bin; the top bin is the
        # clamp target for y > y_ceil, so its midpoint must not
        # overshoot the ceiling.
        mid = self.y_floor * 10.0 ** ((yi + 0.5) / self.y_per_decade)
        return min(mid, self.y_ceil)

    # -- merge protocol -----------------------------------------------------

    def _params(self) -> Tuple:
        return (self.x_min, self.x_max, self.x_bins, self.y_floor,
                self.y_ceil, self.y_per_decade)

    def merge(self, other: "Density2D") -> "Density2D":
        """Fold ``other`` into ``self`` (cell-count addition)."""
        if other._params() != self._params():
            raise ValueError(
                "cannot merge density grids with different binning: "
                f"{self._params()} vs {other._params()}")
        for key, occupancy in other._cells.items():
            self._cells[key] = self._cells.get(key, 0) + occupancy
        return self

    # -- queries ------------------------------------------------------------

    @property
    def total(self) -> int:
        return sum(self._cells.values())

    def cells(self) -> List[Tuple[Tuple[int, int], int]]:
        """``((xi, yi), count)`` sorted by bin key (deterministic)."""
        return sorted(self._cells.items())

    def points(self) -> List[Tuple[float, float, int]]:
        """``(x_mid, y_mid, count)`` per occupied cell — the weighted
        scatter the figure renders."""
        return [(self.x_mid(xi), self.y_mid(yi), count)
                for (xi, yi), count in self.cells()]

    def count_where(self, x_test=None, y_test=None) -> int:
        """Points whose cell *midpoints* satisfy the given predicates."""
        total = 0
        for (xi, yi), count in self._cells.items():
            if x_test is not None and not x_test(self.x_mid(xi)):
                continue
            if y_test is not None and not y_test(self.y_mid(yi)):
                continue
            total += count
        return total

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "x_min": self.x_min,
            "x_max": self.x_max,
            "x_bins": self.x_bins,
            "y_floor": self.y_floor,
            "y_ceil": self.y_ceil,
            "y_per_decade": self.y_per_decade,
            "cells": {f"{xi},{yi}": count
                      for (xi, yi), count in self.cells()},
        }

    @classmethod
    def from_dict(cls, state: Dict) -> "Density2D":
        grid = cls(x_min=state["x_min"], x_max=state["x_max"],
                   x_bins=state["x_bins"], y_floor=state["y_floor"],
                   y_ceil=state["y_ceil"],
                   y_per_decade=state["y_per_decade"])
        for key, count in state["cells"].items():
            xi, yi = key.split(",")
            grid._cells[(int(xi), int(yi))] = int(count)
        return grid

    def __eq__(self, other) -> bool:
        if not isinstance(other, Density2D):
            return NotImplemented
        return (self._params() == other._params()
                and self._cells == other._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __repr__(self) -> str:
        return (f"Density2D(total={self.total}, "
                f"occupied={len(self._cells)})")


class CategoryTally:
    """Mergeable label → count map (the per-root-cause counters)."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Dict[str, int]] = None):
        self._counts: Dict[str, int] = dict(counts or {})

    def add(self, label: str, n: int = 1) -> None:
        self._counts[label] = self._counts.get(label, 0) + n

    def merge(self, other: "CategoryTally") -> "CategoryTally":
        for label, n in other._counts.items():
            self.add(label, n)
        return self

    def get(self, label: str) -> int:
        return self._counts.get(label, 0)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def most_common(self) -> List[Tuple[str, int]]:
        """(label, count) sorted by count desc, label asc (stable)."""
        return sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))

    def to_dict(self) -> Dict[str, int]:
        return dict(sorted(self._counts.items()))

    @classmethod
    def from_dict(cls, state: Dict[str, int]) -> "CategoryTally":
        return cls({str(k): int(v) for k, v in state.items()})

    def __eq__(self, other) -> bool:
        if not isinstance(other, CategoryTally):
            return NotImplemented
        return self._counts == other._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return f"CategoryTally({self.to_dict()!r})"
