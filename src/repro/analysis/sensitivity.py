"""Sensitivity analysis of the analytical throughput model.

Which host parameter buys the most throughput back?  For each knob the
paper's §4 discusses (PCIe credits, DMA latency, walk latency, PCIe
goodput, IOTLB capacity via the miss rate), compute the local
elasticity of the Little's-law bound: the % change in throughput per
% change in the parameter, at a chosen operating point.

Pure model arithmetic — instant, no simulation — so it is usable for
capacity-planning sweeps (see ``examples/future_hosts.py``) and is
cross-checked against the simulator by the validation bench.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.config import ExperimentConfig
from repro.core.model import ThroughputModel

__all__ = ["Elasticity", "sensitivity_analysis"]


@dataclass(frozen=True)
class Elasticity:
    """Local elasticity of app throughput w.r.t. one parameter."""

    parameter: str
    baseline_value: float
    baseline_gbps: float
    perturbed_gbps: float
    #: d(log throughput) / d(log parameter), two-sided estimate.
    elasticity: float

    def __str__(self) -> str:
        return (f"{self.parameter}: elasticity {self.elasticity:+.2f} "
                f"({self.baseline_gbps:.1f} → {self.perturbed_gbps:.1f} "
                f"Gbps at +10%)")


def _perturb_config(config: ExperimentConfig, parameter: str,
                    factor: float) -> ExperimentConfig:
    host = config.host
    if parameter == "pcie_credits":
        pcie = dataclasses.replace(
            host.pcie, max_inflight_bytes=int(
                host.pcie.max_inflight_bytes * factor))
        return dataclasses.replace(
            config, host=dataclasses.replace(host, pcie=pcie))
    if parameter == "dma_fixed_latency":
        pcie = dataclasses.replace(
            host.pcie, dma_fixed_latency=host.pcie.dma_fixed_latency
            * factor)
        return dataclasses.replace(
            config, host=dataclasses.replace(host, pcie=pcie))
    if parameter == "pcie_goodput":
        pcie = dataclasses.replace(
            host.pcie,
            goodput_bps=host.pcie.goodput_bps * factor,
            raw_bps=max(host.pcie.raw_bps,
                        host.pcie.goodput_bps * factor))
        return dataclasses.replace(
            config, host=dataclasses.replace(host, pcie=pcie))
    if parameter == "walk_latency":
        memory = dataclasses.replace(
            host.memory,
            walk_base_latency=host.memory.walk_base_latency * factor)
        return dataclasses.replace(
            config, host=dataclasses.replace(host, memory=memory))
    if parameter == "core_rate":
        cpu = dataclasses.replace(
            host.cpu, core_rate_bps=host.cpu.core_rate_bps * factor)
        return dataclasses.replace(
            config, host=dataclasses.replace(host, cpu=cpu))
    raise ValueError(f"unknown parameter {parameter!r}")


_BASELINE_VALUES: Dict[str, Callable[[ExperimentConfig], float]] = {
    "pcie_credits": lambda c: float(c.host.pcie.max_inflight_bytes),
    "dma_fixed_latency": lambda c: c.host.pcie.dma_fixed_latency,
    "pcie_goodput": lambda c: c.host.pcie.goodput_bps,
    "walk_latency": lambda c: c.host.memory.walk_base_latency,
    "core_rate": lambda c: c.host.cpu.core_rate_bps,
}


def sensitivity_analysis(
    config: ExperimentConfig,
    misses_per_packet: float,
    memory_utilization: float = 0.15,
    parameters: List[str] | None = None,
    step: float = 0.10,
) -> List[Elasticity]:
    """Two-sided elasticities at the given operating point.

    ``misses_per_packet`` pins the operating point (e.g. the measured
    value at 16 cores); a positive elasticity means "more of this
    parameter, more throughput".
    """
    if step <= 0 or step >= 1:
        raise ValueError(f"step must be in (0, 1), got {step}")
    names = parameters or list(_BASELINE_VALUES)
    base = ThroughputModel(config).predict(
        misses_per_packet, memory_utilization)
    out: List[Elasticity] = []
    for name in names:
        up = ThroughputModel(
            _perturb_config(config, name, 1 + step)).predict(
            misses_per_packet, memory_utilization)
        down = ThroughputModel(
            _perturb_config(config, name, 1 - step)).predict(
            misses_per_packet, memory_utilization)
        # Two-sided log-derivative estimate.
        import math

        elasticity = (math.log(up) - math.log(down)) / (
            math.log(1 + step) - math.log(1 - step))
        out.append(Elasticity(
            parameter=name,
            baseline_value=_BASELINE_VALUES[name](config),
            baseline_gbps=base / 1e9,
            perturbed_gbps=up / 1e9,
            elasticity=elasticity,
        ))
    return sorted(out, key=lambda e: abs(e.elasticity), reverse=True)
