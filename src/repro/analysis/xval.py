"""Cross-fidelity agreement checks: fluid vs packet.

The fluid engine earns its keep only while it reproduces the packet
kernel's *shapes and crossover points* — the paper's claims are about
knees (the cores value where IOMMU drops start), winners (which
isolation case hurts victims), and trends, not per-packet mechanics.
This module declares those contracts and checks them:

- **Per-point throughput** — app throughput agrees within
  :data:`THROUGHPUT_RTOL` relative error at every axis point.  This is
  the headline metric of every figure; 20% covers the worst observed
  divergence (13.6% at the figure-3 14-core point) with margin.
- **Drop onset** — the first axis point whose drop rate crosses
  :data:`DROP_ONSET_THRESHOLD` lands within
  :data:`ONSET_POSITION_TOLERANCE` grid positions at both fidelities
  (no-drops matches no-drops).  Onset *position* is the knee the paper
  cares about; drop *values* past the knee are deliberately not
  compared — the deterministic fluid sawtooth and the stochastic
  packet engine disagree up to ~3x there while agreeing exactly on
  where dropping starts.
- **Isolation winner** — the case ranking by victim p99 (uncongested
  beats congested) matches, and both engines agree the congested
  victim pays a tail penalty.
- **Fleet / day shapes** — drop rate correlates positively with link
  utilization in both populations, and each day bin's throughput
  agrees within the throughput tolerance *or* the cumulative
  delivered work through that bin agrees within
  :data:`DAY_CUMULATIVE_RTOL`.  The cumulative escape hatch exists
  because both engines carry sender-side demand backlog across bins
  (a reliable open-loop workload retransmits and queues), but they
  drain it on different schedules — packet flows sit out RTOs after a
  heavy-drop bin and then burst, while the deterministic fluid drains
  immediately — so a drain can land one bin apart while total
  delivered bytes agree within a few percent.

Each check either passes or yields a :class:`Disagreement` naming the
scenario, the check, and the axis point — the row format the
``fluid-xval`` CI job prints on failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.results import FailedRun, ResultTable

__all__ = [
    "DAY_CUMULATIVE_RTOL",
    "DROP_ONSET_THRESHOLD",
    "ONSET_POSITION_TOLERANCE",
    "ROUTING_CLAIMS",
    "THROUGHPUT_RTOL",
    "AgreementReport",
    "Disagreement",
    "compare_day",
    "compare_fleet",
    "compare_fleet_aggregate",
    "compare_fleet_backends",
    "compare_isolation",
    "compare_routing_sweep",
    "compare_sweep",
    "drop_onset",
]

#: Relative tolerance on per-point app throughput (see module docstring).
THROUGHPUT_RTOL = 0.20
#: A point "drops" once its drop rate crosses this (2% — well above
#: stochastic noise, well below post-knee saturation).
DROP_ONSET_THRESHOLD = 0.02
#: Onset may land this many grid positions apart and still agree (the
#: knee sits between two grid points; the engines may round opposite
#: ways).
ONSET_POSITION_TOLERANCE = 1
#: Absolute floor (Gbps) under which throughput differences are noise.
_THROUGHPUT_ATOL_GBPS = 1.0
#: A day bin whose per-bin throughput misses :data:`THROUGHPUT_RTOL`
#: still agrees when cumulative delivered work through that bin is
#: this close — backlog-drain timing skew, not a capacity error (see
#: module docstring).
DAY_CUMULATIVE_RTOL = 0.05


@dataclass(frozen=True)
class Disagreement:
    """One failed check: the row the CI failure table prints."""

    scenario: str
    check: str
    point: str
    detail: str

    def format_row(self) -> str:
        return (f"{self.scenario:<20} {self.check:<18} "
                f"{self.point:<28} {self.detail}")


@dataclass
class AgreementReport:
    """Outcome of cross-validating one scenario."""

    scenario: str
    checks: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def check(self, passed: bool, check: str, point: str,
              detail: str) -> None:
        self.checks += 1
        if not passed:
            self.disagreements.append(Disagreement(
                scenario=self.scenario, check=check, point=point,
                detail=detail))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "checks": self.checks,
            "disagreements": [
                {"check": d.check, "point": d.point, "detail": d.detail}
                for d in self.disagreements
            ],
        }


def drop_onset(drop_rates: Sequence[float],
               threshold: float = DROP_ONSET_THRESHOLD,
               ) -> Optional[int]:
    """Index of the first point at or past the drop threshold."""
    for index, rate in enumerate(drop_rates):
        if rate >= threshold:
            return index
    return None


def _throughput_agrees(packet: float, fluid: float,
                       rtol: float) -> bool:
    if abs(fluid - packet) <= _THROUGHPUT_ATOL_GBPS:
        return True
    return abs(fluid - packet) <= rtol * max(abs(packet), 1e-9)


def _series_groups(table: ResultTable,
                   x_key: str) -> List[Tuple[Tuple, List]]:
    """Rows grouped into series (all params but ``x_key``), preserving
    expansion order within and across groups."""
    groups: Dict[Tuple, List] = {}
    for result in table:
        key = tuple(sorted(
            (k, repr(v)) for k, v in result.params.items()
            if k != x_key))
        groups.setdefault(key, []).append(result)
    return list(groups.items())


def compare_sweep(
    scenario: str,
    packet: ResultTable,
    fluid: ResultTable,
    x_key: str,
    *,
    rtol: float = THROUGHPUT_RTOL,
    threshold: float = DROP_ONSET_THRESHOLD,
) -> AgreementReport:
    """Cross-validate two result tables from the same sweep spec."""
    report = AgreementReport(scenario=scenario)
    report.check(len(packet) == len(fluid), "row-count", "-",
                 f"packet has {len(packet)} rows, fluid {len(fluid)}")
    if len(packet) != len(fluid):
        return report
    for p_row, f_row in zip(packet, fluid):
        point = f"{x_key}={p_row.params.get(x_key)}"
        if p_row.params != f_row.params:
            report.check(False, "row-order", point,
                         f"params diverge: {p_row.params} vs "
                         f"{f_row.params}")
            return report
        if isinstance(p_row, FailedRun) or isinstance(f_row, FailedRun):
            report.check(False, "failed-run", point,
                         "a fidelity produced a FAILED row")
            continue
        p_app = p_row.metrics["app_throughput_gbps"]
        f_app = f_row.metrics["app_throughput_gbps"]
        report.check(
            _throughput_agrees(p_app, f_app, rtol),
            "throughput", _point_label(p_row.params, x_key),
            f"packet {p_app:.1f} Gbps vs fluid {f_app:.1f} Gbps "
            f"(rtol {rtol})")
    for key, p_rows in _series_groups(packet, x_key):
        f_rows = dict(_series_groups(fluid, x_key))[key]
        p_onset = drop_onset(
            [r.metrics["drop_rate"] for r in p_rows], threshold)
        f_onset = drop_onset(
            [r.metrics["drop_rate"] for r in f_rows], threshold)
        series = ", ".join(f"{k}={v}" for k, v in key
                           if k not in ("seed", "warmup_ms"))
        xs = [r.params.get(x_key) for r in p_rows]

        def _describe(onset):
            return ("none" if onset is None
                    else f"{x_key}={xs[onset]} (index {onset})")

        if p_onset is None or f_onset is None:
            agree = p_onset == f_onset
        else:
            agree = abs(p_onset - f_onset) <= ONSET_POSITION_TOLERANCE
        report.check(agree, "drop-onset", series or "-",
                     f"packet onset {_describe(p_onset)} vs fluid "
                     f"{_describe(f_onset)} "
                     f"(threshold {threshold:g}, "
                     f"tolerance ±{ONSET_POSITION_TOLERANCE})")
    return report


#: Routing-sweep claim each bundled multipath spec must reproduce
#: (consumed by ``scripts/check_fluid_xval.py``):
#:
#: - ``"host-invariant"`` — the congestion is inside the host, so the
#:   drop onset must land on the same grid position (±1) for every
#:   routing policy, at both fidelities (the incast spec's claim).
#: - ``"fabric-multipath"`` — the congestion is in the fabric, so
#:   routing decides the outcome: fabric drop onset orders static
#:   before ECMP before flowlet, and both engines crown the same
#:   (flowlet) throughput winner at the top load (the dumbbell spec).
ROUTING_CLAIMS: Dict[str, str] = {
    "incast": "host-invariant",
    "dumbbell": "fabric-multipath",
}

#: Routing policies ordered worst-to-best for multipath fabrics; the
#: fabric-multipath onset check asserts onsets are non-decreasing in
#: this order (an absent onset counts as "past the end of the grid").
_ROUTING_ORDER = ("static", "ecmp", "flowlet")


def _routing_series(table: ResultTable,
                    x_key: str) -> Dict[str, List]:
    """Rows per routing policy, in x order (expansion order)."""
    groups: Dict[str, List] = {}
    for result in table:
        if isinstance(result, FailedRun):
            continue
        groups.setdefault(result.params.get("routing"),
                          []).append(result)
    return groups


def compare_routing_sweep(
    scenario: str,
    packet: ResultTable,
    fluid: ResultTable,
    x_key: str,
    claim: str,
    *,
    threshold: float = DROP_ONSET_THRESHOLD,
) -> AgreementReport:
    """Check the routing-policy claim a multipath spec reproduces.

    Complements :func:`compare_sweep` (which already pins per-point
    throughput and per-series onset across fidelities) with the
    *cross-policy* structure: see :data:`ROUTING_CLAIMS`.
    """
    report = AgreementReport(scenario=f"{scenario}/routing")
    if claim not in ("host-invariant", "fabric-multipath"):
        raise ValueError(f"unknown routing claim {claim!r}")
    for label, table in (("packet", packet), ("fluid", fluid)):
        groups = _routing_series(table, x_key)
        report.check(len(groups) >= 2, "routing-series", label,
                     f"need >= 2 routing series, got {sorted(groups)}")
        if len(groups) < 2:
            continue
        if claim == "host-invariant":
            onsets = {
                name: drop_onset(
                    [r.metrics["drop_rate"] for r in rows], threshold)
                for name, rows in groups.items()}
            known = [o for o in onsets.values() if o is not None]
            agree = (len(known) == len(onsets)
                     and max(known) - min(known)
                     <= ONSET_POSITION_TOLERANCE)
            report.check(
                agree, "routing-onset-invariance", label,
                f"host-congestion onset must not move with the "
                f"routing policy; onsets {onsets} "
                f"(tolerance ±{ONSET_POSITION_TOLERANCE})")
        else:
            past_end = max(len(rows) for rows in groups.values())
            onsets = {
                name: drop_onset(
                    [r.metrics["fabric_drop_rate"] for r in rows],
                    threshold)
                for name, rows in groups.items()}
            ordered = [onsets.get(name, past_end)
                       if onsets.get(name) is not None else past_end
                       for name in _ROUTING_ORDER if name in groups]
            report.check(
                ordered == sorted(ordered), "fabric-onset-order", label,
                f"fabric drop onset must be non-decreasing "
                f"static -> ecmp -> flowlet; onsets {onsets}")
    if claim == "fabric-multipath":
        def top_load_winner(table: ResultTable) -> Optional[str]:
            groups = _routing_series(table, x_key)
            if not groups:
                return None
            return max(groups, key=lambda name:
                       groups[name][-1].metrics["app_throughput_gbps"])

        p_winner = top_load_winner(packet)
        f_winner = top_load_winner(fluid)
        report.check(
            p_winner == f_winner, "routing-winner", "top load",
            f"packet winner {p_winner!r} vs fluid {f_winner!r}")
        report.check(
            p_winner == "flowlet", "routing-winner", "top load",
            f"flowlet must win the top-load throughput in the packet "
            f"engine, got {p_winner!r}")
    return report


def _point_label(params: Dict[str, Any], x_key: str) -> str:
    extras = [f"{k}={params[k]}" for k in ("iommu", "hugepages")
              if k in params]
    return f"{x_key}={params.get(x_key)}" + (
        f" ({', '.join(extras)})" if extras else "")


def compare_isolation(scenario: str, packet: Dict[str, Any],
                      fluid: Dict[str, Any]) -> AgreementReport:
    """Cross-validate the isolation study's case ranking."""
    report = AgreementReport(scenario=scenario)
    report.check(set(packet) == set(fluid), "cases", "-",
                 f"case sets differ: {sorted(packet)} vs "
                 f"{sorted(fluid)}")
    if set(packet) != set(fluid):
        return report

    def winner(results):
        return min(results, key=lambda name: results[name].victim.p99)

    p_winner, f_winner = winner(packet), winner(fluid)
    report.check(p_winner == f_winner, "isolation-winner", "victim p99",
                 f"packet winner {p_winner!r} vs fluid {f_winner!r}")
    if "uncongested" in packet and "congested" in packet:
        p_penalty = packet["congested"].victim_penalty_p99(
            packet["uncongested"])
        f_penalty = fluid["congested"].victim_penalty_p99(
            fluid["uncongested"])
        report.check(
            p_penalty > 1.0 and f_penalty > 1.0, "victim-penalty",
            "congested vs uncongested",
            f"penalty must exceed 1 at both fidelities "
            f"(packet {p_penalty:.2f}x, fluid {f_penalty:.2f}x)")
    return report


def _spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    from repro.analysis.figures import spearman

    return spearman(xs, ys)


def compare_fleet(scenario: str, packet: Sequence,
                  fluid: Sequence) -> AgreementReport:
    """Cross-validate fleet populations (Fig. 1's two observations)."""
    report = AgreementReport(scenario=scenario)
    report.check(len(packet) == len(fluid), "population", "-",
                 f"{len(packet)} packet hosts vs {len(fluid)} fluid")
    if not packet or len(packet) != len(fluid):
        return report
    p_corr = _spearman([s.link_utilization for s in packet],
                       [s.drop_rate for s in packet])
    f_corr = _spearman([s.link_utilization for s in fluid],
                       [s.drop_rate for s in fluid])
    report.check(p_corr > 0 and f_corr > 0, "drop-correlation", "-",
                 f"drop rate must correlate positively with "
                 f"utilization at both fidelities "
                 f"(packet {p_corr:.2f}, fluid {f_corr:.2f})")

    def drop_fraction(samples):
        return sum(1 for s in samples if s.drop_rate > 1e-4) \
            / len(samples)

    p_frac, f_frac = drop_fraction(packet), drop_fraction(fluid)
    report.check(abs(p_frac - f_frac) <= 0.25, "dropper-fraction", "-",
                 f"fraction of dropping hosts: packet {p_frac:.2f} vs "
                 f"fluid {f_frac:.2f} (tolerance 0.25)")
    return report


#: Max |packet - fluid| gap in per-stratum median link utilization.
STRATUM_UTIL_TOLERANCE = 0.15


def compare_fleet_aggregate(scenario: str, packet,
                            fluid) -> AgreementReport:
    """Cross-validate streamed fleet aggregates
    (:class:`~repro.workload.fleet_agg.FleetAggregate`).

    The constant-memory sibling of :func:`compare_fleet`: the same
    Fig. 1 contract — positive utilization–drop rank correlation and
    matching dropper fractions at both fidelities — answered from the
    mergeable aggregates, plus per-stratum median link-utilization
    agreement (the strata are the population's ground truth, so their
    medians moving under a fidelity swap would mean the engines model
    different fleets).
    """
    report = AgreementReport(scenario=scenario)
    report.check(packet.hosts == fluid.hosts
                 and packet.failed == fluid.failed, "population", "-",
                 f"{packet.hosts} packet hosts ({packet.failed} "
                 f"failed) vs {fluid.hosts} fluid ({fluid.failed} "
                 f"failed)")
    if not packet.hosts or packet.hosts != fluid.hosts:
        return report
    p_corr = packet.rank_correlation()
    f_corr = fluid.rank_correlation()
    report.check(p_corr > 0 and f_corr > 0, "drop-correlation", "-",
                 f"drop rate must correlate positively with "
                 f"utilization at both fidelities "
                 f"(packet {p_corr:.2f}, fluid {f_corr:.2f})")
    p_frac, f_frac = packet.dropper_fraction, fluid.dropper_fraction
    report.check(abs(p_frac - f_frac) <= 0.25, "dropper-fraction", "-",
                 f"fraction of dropping hosts: packet {p_frac:.2f} vs "
                 f"fluid {f_frac:.2f} (tolerance 0.25)")
    strata = sorted(set(packet.stratum_sketches)
                    | set(fluid.stratum_sketches))
    for stratum in strata:
        point = f"stratum={stratum}"
        in_both = (stratum in packet.stratum_sketches
                   and stratum in fluid.stratum_sketches)
        report.check(in_both, "stratum-coverage", point,
                     "stratum must be populated at both fidelities")
        if not in_both:
            continue
        p_med = packet.stratum_median(stratum, "link_utilization")
        f_med = fluid.stratum_median(stratum, "link_utilization")
        report.check(
            abs(p_med - f_med) <= STRATUM_UTIL_TOLERANCE,
            "stratum-median-util", point,
            f"median link utilization: packet {p_med:.2f} vs fluid "
            f"{f_med:.2f} (tolerance {STRATUM_UTIL_TOLERANCE})")
    return report


def compare_fleet_backends(scenario: str, scalar,
                           batched) -> AgreementReport:
    """Scalar-vs-batched fluid fleet equivalence — an *exactness*
    contract, not a tolerance one.

    The cohort-batched backend
    (:class:`~repro.sim.fluid_batch.BatchFluidSolver` over index
    ranges) promises the *same* per-host outcomes as the scalar fluid
    path, so the two :class:`~repro.workload.fleet_agg.FleetAggregate`
    objects must compare equal under the aggregate's own ``__eq__``
    (exact counters, exact sketch buckets).  When they do not, the
    targeted checks below name which layer drifted: a population
    mismatch means the in-worker config rebuild diverged from the
    ``(seed, i)`` substreams; a counter mismatch with matching
    populations means the vectorized step left the scalar trajectory.
    """
    report = AgreementReport(scenario=scenario)
    report.check(scalar.hosts == batched.hosts
                 and scalar.failed == batched.failed, "population", "-",
                 f"{scalar.hosts} scalar hosts ({scalar.failed} "
                 f"failed) vs {batched.hosts} batched "
                 f"({batched.failed} failed)")
    report.check(scalar.droppers == batched.droppers, "droppers", "-",
                 f"scalar {scalar.droppers} dropping hosts vs "
                 f"batched {batched.droppers} (must match exactly)")
    report.check(
        scalar.root_causes.to_dict() == batched.root_causes.to_dict(),
        "root-causes", "-",
        f"scalar {scalar.root_causes.to_dict()} vs batched "
        f"{batched.root_causes.to_dict()}")
    report.check(scalar == batched, "aggregate-equality", "-",
                 "FleetAggregate.__eq__ must hold between the scalar "
                 "and batched fluid backends for the same seed")
    return report


def compare_day(scenario: str, packet: Sequence, fluid: Sequence,
                *, rtol: float = THROUGHPUT_RTOL) -> AgreementReport:
    """Cross-validate per-bin day traces.

    A bin passes on per-bin throughput agreement, or — when a
    backlog drain lands on different sides of the bin boundary at the
    two fidelities — on cumulative delivered work through that bin
    (see :data:`DAY_CUMULATIVE_RTOL`).
    """
    report = AgreementReport(scenario=scenario)
    report.check(len(packet) == len(fluid), "bin-count", "-",
                 f"{len(packet)} packet bins vs {len(fluid)} fluid")
    if len(packet) != len(fluid):
        return report
    p_cum = f_cum = 0.0
    for p_bin, f_bin in zip(packet, fluid):
        p_cum += p_bin.app_throughput_gbps
        f_cum += f_bin.app_throughput_gbps
        point = (f"bin={p_bin.index} (load={p_bin.offered_load:.2f}, "
                 f"antagonists={p_bin.antagonist_cores})")
        per_bin = _throughput_agrees(p_bin.app_throughput_gbps,
                                     f_bin.app_throughput_gbps, rtol)
        cumulative = (abs(f_cum - p_cum)
                      <= DAY_CUMULATIVE_RTOL * max(p_cum, 1e-9))
        report.check(
            per_bin or cumulative, "throughput", point,
            f"packet {p_bin.app_throughput_gbps:.1f} Gbps vs fluid "
            f"{f_bin.app_throughput_gbps:.1f} Gbps (rtol {rtol}); "
            f"cumulative {p_cum:.0f} vs {f_cum:.0f} Gbps-bins "
            f"(rtol {DAY_CUMULATIVE_RTOL})")
    return report
