"""Named (x, y) series extracted from result tables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.core.results import ResultTable

__all__ = ["Series", "series_from_table"]


@dataclass(frozen=True)
class Series:
    """One labelled curve."""

    label: str
    x: Tuple[float, ...]
    y: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: {len(self.x)} x values but "
                f"{len(self.y)} y values")

    def __len__(self) -> int:
        return len(self.x)

    def ymax(self) -> float:
        return max(self.y) if self.y else 0.0

    def ymin(self) -> float:
        return min(self.y) if self.y else 0.0

    def sorted_by_x(self) -> "Series":
        pairs = sorted(zip(self.x, self.y))
        return Series(
            self.label,
            tuple(p[0] for p in pairs),
            tuple(p[1] for p in pairs),
        )


def series_from_table(
    table: ResultTable,
    x_key: str,
    y_key: str,
    label: str,
    **where: Any,
) -> Series:
    """Build a series from the rows of ``table`` matching ``where``."""
    rows = table.where(**where) if where else table
    xs = [float(v) for v in rows.column(x_key)]
    ys = [float(v) for v in rows.column(y_key)]
    return Series(label, tuple(xs), tuple(ys)).sorted_by_x()
