"""ASCII plots: terminal-friendly rendering of figure series.

No plotting library is assumed; every figure in the benchmark harness
renders through these functions (and also exports CSV for anyone who
wants to re-plot with real tooling).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.series import Series

__all__ = ["line_plot", "scatter_plot"]

_MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, size: int) -> int:
    if hi <= lo:
        return 0
    pos = (value - lo) / (hi - lo)
    return min(int(pos * (size - 1) + 0.5), size - 1)


def _bounds(values: Sequence[float]) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:  # avoid zero span
        pad = abs(lo) * 0.1 or 1.0
        return lo - pad, hi + pad
    return lo, hi


def _render(
    grid: List[List[str]],
    x_lo: float,
    x_hi: float,
    y_lo: float,
    y_hi: float,
    title: str,
    x_label: str,
    y_label: str,
    legend: List[Tuple[str, str]],
) -> str:
    height = len(grid)
    width = len(grid[0])
    lines = [f"  {title}"]
    for row_index, row in enumerate(grid):
        y_value = y_hi - (y_hi - y_lo) * row_index / (height - 1)
        prefix = f"{y_value:10.3g} |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    left = f"{x_lo:.3g}"
    right = f"{x_hi:.3g}"
    gap = max(width - len(left) - len(right), 1)
    lines.append(" " * 12 + left + " " * gap + right)
    lines.append(" " * 12 + f"[x: {x_label}]  [y: {y_label}]")
    for marker, label in legend:
        lines.append(f"    {marker} = {label}")
    return "\n".join(lines)


def line_plot(
    series_list: Sequence[Series],
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    width: int = 64,
    height: int = 18,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render one or more series as an ASCII chart."""
    if not series_list:
        raise ValueError("need at least one series")
    all_x = [v for s in series_list for v in s.x]
    all_y = [v for s in series_list for v in s.y]
    if not all_x:
        raise ValueError("series contain no points")
    x_lo, x_hi = _bounds(all_x)
    y_lo, y_hi = _bounds(all_y)
    if y_min is not None:
        y_lo = y_min
    if y_max is not None:
        y_hi = y_max
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, series in enumerate(series_list):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append((marker, series.label))
        points = sorted(zip(series.x, series.y))
        cols: dict[int, int] = {}
        for x, y in points:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(
                min(max(y, y_lo), y_hi), y_lo, y_hi, height)
            cols[col] = row
        # Connect consecutive columns with vertical fills.
        prev = None
        for col in sorted(cols):
            row = cols[col]
            grid[row][col] = marker
            if prev is not None:
                pcol, prow = prev
                if col - pcol >= 1 and prow != row:
                    step = 1 if row > prow else -1
                    for r in range(prow + step, row, step):
                        mid = pcol + (col - pcol) * (r - prow) // (
                            row - prow)
                        if grid[r][mid] == " ":
                            grid[r][mid] = "."
            prev = (col, row)
    return _render(grid, x_lo, x_hi, y_lo, y_hi, title, x_label,
                   y_label, legend)


def scatter_plot(
    points: Sequence[Tuple[float, float]],
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    width: int = 64,
    height: int = 18,
    marker: str = "o",
) -> str:
    """Render a point cloud (the Fig. 1 fleet scatter)."""
    if not points:
        raise ValueError("need at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = _bounds(xs)
    y_lo, y_hi = _bounds(ys)
    if all(y >= 0 for y in ys):
        y_lo = max(y_lo, 0.0)  # drop rates never go negative
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = _scale(x, x_lo, x_hi, width)
        row = height - 1 - _scale(y, y_lo, y_hi, height)
        grid[row][col] = marker
    return _render(grid, x_lo, x_hi, y_lo, y_hi, title, x_label,
                   y_label, [(marker, f"{len(points)} hosts")])
