"""Regeneration of every evaluation figure in the paper.

One function per figure; each returns a :class:`FigureData` holding the
named series of every panel, renders to ASCII, and exports CSV.  The
``quality`` knob trades run time for grid density / window length:

- ``"quick"`` — coarse grid, short windows (benchmark-harness default);
- ``"full"``  — the paper's grid and longer measurement windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from repro.analysis.series import Series, series_from_table
from repro.analysis.text_plots import line_plot, scatter_plot
from repro.core import calibration as cal
from repro.core.cache import ResultCache
from repro.core.config import ExperimentConfig
from repro.core.model import ThroughputModel
from repro.core.results import ResultTable
from repro.core.sweep import (
    baseline_config,
    sweep_antagonist_cores,
    sweep_receiver_cores,
    sweep_region_size,
)
from repro.workload.fleet import FleetSample, FleetSampler

__all__ = [
    "FigureData",
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
]

_QUALITY = {
    # (warmup, duration, grid density factor)
    "quick": (4e-3, 8e-3),
    "full": (6e-3, 14e-3),
}


def _windows(quality: str) -> Tuple[float, float]:
    try:
        return _QUALITY[quality]
    except KeyError:
        raise ValueError(
            f"quality must be one of {sorted(_QUALITY)}, got {quality!r}"
        ) from None


@dataclass
class FigureData:
    """All panels of one reproduced figure."""

    name: str
    title: str
    #: panel name -> (x label, y label, series list)
    panels: Dict[str, Tuple[str, str, List[Series]]]
    #: raw scatter points for Fig. 1
    scatter: List[Tuple[float, float]] = field(default_factory=list)
    table: ResultTable | None = None
    notes: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        blocks = [f"==== {self.name}: {self.title} ===="]
        if self.scatter:
            blocks.append(
                scatter_plot(
                    self.scatter,
                    title=self.title,
                    x_label="link utilization",
                    y_label="drop rate",
                )
            )
        for panel, (x_label, y_label, series) in self.panels.items():
            blocks.append(
                line_plot(series, title=panel, x_label=x_label,
                          y_label=y_label)
            )
        if self.notes:
            blocks.append("notes: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.notes.items())))
        return "\n\n".join(blocks)

    def to_csv_dir(self, directory: str | Path) -> List[Path]:
        """One CSV per panel (columns: x, one column per series)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for panel, (x_label, _y, series_list) in self.panels.items():
            path = directory / f"{self.name}_{panel}.csv".replace(" ", "_")
            xs = sorted({x for s in series_list for x in s.x})
            with open(path, "w") as fh:
                header = [x_label] + [s.label for s in series_list]
                fh.write(",".join(header) + "\n")
                for x in xs:
                    row = [f"{x:g}"]
                    for s in series_list:
                        lookup = dict(zip(s.x, s.y))
                        row.append(
                            f"{lookup[x]:g}" if x in lookup else "")
                    fh.write(",".join(row) + "\n")
            written.append(path)
        if self.scatter:
            path = directory / f"{self.name}_scatter.csv"
            with open(path, "w") as fh:
                fh.write("link_utilization,drop_rate\n")
                for x, y in self.scatter:
                    fh.write(f"{x:g},{y:g}\n")
            written.append(path)
        return written


def _rank(values: Sequence[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (j + 1 < len(order)
               and values[order[j + 1]] == values[order[i]]):
            j += 1
        mean_rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (no SciPy dependency)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two same-length samples of size >= 2")
    rx, ry = _rank(xs), _rank(ys)
    mx = sum(rx) / len(rx)
    my = sum(ry) / len(ry)
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy) ** 0.5


# ---------------------------------------------------------------------------
# Figure 1 — fleet scatter
# ---------------------------------------------------------------------------

def figure1(n_hosts: int = 60, seed: int = 7,
            quality: str = "quick",
            workers: int | str | None = None) -> FigureData:
    """Fig. 1: host drop rate vs access-link utilization over a fleet.

    Returns the scatter plus summary notes: the Spearman correlation
    (positive in the paper) and the count of low-utilization hosts with
    drops (the paper's second observation).
    """
    warmup, duration = _windows(quality)
    sampler = FleetSampler(seed=seed, warmup=warmup, duration=duration)
    samples: List[FleetSample] = sampler.run(n_hosts, workers=workers)
    points = [(s.link_utilization, s.drop_rate) for s in samples]
    droppers = [s for s in samples if s.drop_rate > 1e-4]
    low_util_droppers = [
        s for s in droppers if s.link_utilization < 0.5
    ]
    corr = spearman([p[0] for p in points], [p[1] for p in points])
    high = [s for s in samples if s.link_utilization > 0.85]
    low = [s for s in samples if s.link_utilization < 0.6]

    def drop_fraction(group):
        if not group:
            return 0.0
        return sum(1 for s in group if s.drop_rate > 1e-4) / len(group)

    return FigureData(
        name="figure1",
        title="Host congestion across a heterogeneous fleet",
        panels={},
        scatter=points,
        notes={
            "hosts": n_hosts,
            "spearman": round(corr, 3),
            "hosts_with_drops": len(droppers),
            "low_util_hosts_with_drops": len(low_util_droppers),
            "drop_fraction_high_util": round(drop_fraction(high), 3),
            "drop_fraction_low_util": round(drop_fraction(low), 3),
        },
    )


# ---------------------------------------------------------------------------
# Figures 3/4 — receiver-core sweeps
# ---------------------------------------------------------------------------

def _core_sweep_panels(
    table: ResultTable,
    left_series: List[Series],
    quality: str,
) -> Dict[str, Tuple[str, str, List[Series]]]:
    max_line = Series(
        "Max Achievable Throughput",
        tuple(sorted({float(c) for c in table.column("cores")})),
        tuple(cal.MAX_APP_GOODPUT_BPS / 1e9
              for _ in sorted({float(c) for c in table.column("cores")})),
    )
    return {
        "throughput": ("receiver cores", "Gbps",
                       left_series + [max_line]),
        "drop rate": ("receiver cores", "percent", []),
        "iotlb misses": ("receiver cores", "misses/packet", []),
    }


def figure3(quality: str = "quick",
            cores: Sequence[int] | None = None,
            workers: int | str | None = None,
            cache: ResultCache | None = None) -> FigureData:
    """Fig. 3: throughput / drop % / IOTLB misses vs receiver cores,
    IOMMU ON vs OFF, plus the Little's-law model line."""
    warmup, duration = _windows(quality)
    cores = tuple(cores) if cores else (
        (2, 6, 8, 10, 12, 16) if quality == "quick"
        else (2, 4, 6, 8, 10, 12, 14, 16))
    base = baseline_config(warmup=warmup, duration=duration)
    table = sweep_receiver_cores(cores=cores, base=base,
                                 workers=workers, cache=cache)

    tput_on = series_from_table(
        table, "cores", "app_throughput_gbps",
        "App Throughput -- IOMMU ON", iommu=True)
    tput_off = series_from_table(
        table, "cores", "app_throughput_gbps",
        "App Throughput -- IOMMU OFF", iommu=False)
    drops_on = series_from_table(
        table, "cores", "drop_rate", "IOMMU ON", iommu=True)
    drops_off = series_from_table(
        table, "cores", "drop_rate", "IOMMU OFF", iommu=False)
    misses_on = series_from_table(
        table, "cores", "iotlb_misses_per_packet", "IOMMU ON",
        iommu=True)

    # The model line: Little's-law bound fed with the measured misses,
    # shown (as in the paper) only where the interconnect binds.
    model_x, model_y = [], []
    for result in table.where(iommu=True):
        n = result.params["cores"]
        if n < 10:
            continue
        model = ThroughputModel(_config_for_cores(base, n))
        bound = model.predict(
            misses_per_packet=result.metrics["iotlb_misses_per_packet"],
            memory_utilization=result.metrics["memory_utilization"],
        )
        model_x.append(float(n))
        model_y.append(bound / 1e9)
    model_series = Series("Modeled App Throughput -- IOMMU ON",
                          tuple(model_x), tuple(model_y)).sorted_by_x()

    panels = _core_sweep_panels(table, [tput_on, tput_off, model_series],
                                quality)
    panels["drop rate"] = (
        "receiver cores", "percent",
        [_percent(drops_on), _percent(drops_off)])
    panels["iotlb misses"] = (
        "receiver cores", "misses/packet", [misses_on])
    return FigureData(
        name="figure3",
        title="IOMMU-induced host congestion vs receiver cores",
        panels=panels,
        table=table,
    )


def figure4(quality: str = "quick",
            cores: Sequence[int] | None = None,
            workers: int | str | None = None,
            cache: ResultCache | None = None) -> FigureData:
    """Fig. 4: hugepages enabled vs disabled (IOMMU always on)."""
    warmup, duration = _windows(quality)
    cores = tuple(cores) if cores else (
        (2, 6, 8, 12, 16) if quality == "quick"
        else (2, 4, 6, 8, 10, 12, 14, 16))
    base = baseline_config(warmup=warmup, duration=duration)
    table_on = sweep_receiver_cores(
        cores=cores, iommu_states=(True,), base=base, hugepages=True,
        workers=workers, cache=cache)
    table_off = sweep_receiver_cores(
        cores=cores, iommu_states=(True,), base=base, hugepages=False,
        workers=workers, cache=cache)
    merged = ResultTable(list(table_on) + list(table_off))

    tput_hp = series_from_table(
        merged, "cores", "app_throughput_gbps",
        "App Throughput -- HugePages Enabled", hugepages=True)
    tput_nohp = series_from_table(
        merged, "cores", "app_throughput_gbps",
        "App Throughput -- HugePages Disabled", hugepages=False)
    drops_hp = series_from_table(
        merged, "cores", "drop_rate", "Hugepages Enabled",
        hugepages=True)
    drops_nohp = series_from_table(
        merged, "cores", "drop_rate", "Hugepages Disabled",
        hugepages=False)
    misses_hp = series_from_table(
        merged, "cores", "iotlb_misses_per_packet",
        "Hugepages Enabled", hugepages=True)
    misses_nohp = series_from_table(
        merged, "cores", "iotlb_misses_per_packet",
        "Hugepages Disabled", hugepages=False)

    return FigureData(
        name="figure4",
        title="Disabling hugepages increases IOMMU contention",
        panels={
            "throughput": ("receiver cores", "Gbps",
                           [tput_hp, tput_nohp]),
            "drop rate": ("receiver cores", "percent",
                          [_percent(drops_hp), _percent(drops_nohp)]),
            "iotlb misses": ("receiver cores", "misses/packet",
                             [misses_hp, misses_nohp]),
        },
        table=merged,
    )


# ---------------------------------------------------------------------------
# Figure 5 — Rx memory region size
# ---------------------------------------------------------------------------

def figure5(quality: str = "quick",
            region_mb: Sequence[int] = (4, 8, 12, 16),
            workers: int | str | None = None,
            cache: ResultCache | None = None) -> FigureData:
    """Fig. 5: provisioning for larger BDPs worsens IOMMU contention."""
    warmup, duration = _windows(quality)
    base = baseline_config(warmup=warmup, duration=duration)
    table = sweep_region_size(region_mb=region_mb, base=base,
                              workers=workers, cache=cache)

    tput_on = series_from_table(
        table, "rx_region_mb", "app_throughput_gbps",
        "App Throughput -- IOMMU ON", iommu=True)
    tput_off = series_from_table(
        table, "rx_region_mb", "app_throughput_gbps",
        "App Throughput -- IOMMU OFF", iommu=False)
    drops_on = series_from_table(
        table, "rx_region_mb", "drop_rate", "IOMMU ON", iommu=True)
    drops_off = series_from_table(
        table, "rx_region_mb", "drop_rate", "IOMMU OFF", iommu=False)
    misses_on = series_from_table(
        table, "rx_region_mb", "iotlb_misses_per_packet", "IOMMU ON",
        iommu=True)

    return FigureData(
        name="figure5",
        title="Larger Rx memory regions increase IOMMU contention",
        panels={
            "throughput": ("Rx region (MB)", "Gbps",
                           [tput_on, tput_off]),
            "drop rate": ("Rx region (MB)", "percent",
                          [_percent(drops_on), _percent(drops_off)]),
            "iotlb misses": ("Rx region (MB)", "misses/packet",
                             [misses_on]),
        },
        table=table,
    )


# ---------------------------------------------------------------------------
# Figure 6 — memory-bus antagonism
# ---------------------------------------------------------------------------

def figure6(quality: str = "quick",
            antagonists: Sequence[int] | None = None,
            workers: int | str | None = None,
            cache: ResultCache | None = None) -> FigureData:
    """Fig. 6: throughput and memory bandwidth vs STREAM cores."""
    warmup, duration = _windows(quality)
    antagonists = tuple(antagonists) if antagonists else (
        (0, 2, 6, 10, 15) if quality == "quick"
        else (0, 1, 2, 4, 6, 8, 10, 12, 14, 15))
    base = baseline_config(warmup=warmup, duration=duration)
    table = sweep_antagonist_cores(antagonists=antagonists, base=base,
                                   workers=workers, cache=cache)

    def s(metric: str, label: str, iommu: bool) -> Series:
        return series_from_table(
            table, "antagonist_cores", metric, label, iommu=iommu)

    return FigureData(
        name="figure6",
        title="Memory-bus contention degrades NIC-to-CPU throughput",
        panels={
            "throughput iommu off": (
                "antagonist cores", "Gbps",
                [s("app_throughput_gbps",
                   "App Throughput -- IOMMU OFF", False)]),
            "throughput iommu on": (
                "antagonist cores", "Gbps",
                [s("app_throughput_gbps",
                   "App Throughput -- IOMMU ON", True)]),
            "memory bandwidth": (
                "antagonist cores", "GB/s",
                [s("memory_total_GBps", "Total -- IOMMU OFF", False),
                 s("memory_total_GBps", "Total -- IOMMU ON", True)]),
            "drop rate": (
                "antagonist cores", "percent",
                [_percent(s("drop_rate", "IOMMU ON", True)),
                 _percent(s("drop_rate", "IOMMU OFF", False))]),
        },
        table=table,
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _percent(series: Series) -> Series:
    return Series(series.label, series.x,
                  tuple(y * 100 for y in series.y))


def _config_for_cores(base: ExperimentConfig, cores: int):
    import dataclasses

    return dataclasses.replace(
        base,
        host=dataclasses.replace(
            base.host,
            cpu=dataclasses.replace(base.host.cpu, cores=cores)))
