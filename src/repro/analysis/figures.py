"""Regeneration of every evaluation figure in the paper.

Each figure is a bundled scenario spec (``src/repro/scenarios/*.toml``)
— sweep axes, quality presets, and panel/series metadata all live in
the spec, not here.  This module is the rendering binding:
:func:`figure_from_scenario` runs a spec through the shared execution
pipeline and materializes its ``[render]`` section into a
:class:`FigureData`.  The historical ``figure1``/``figure3``–
``figure6`` entry points remain as thin wrappers that load their spec
and override the grid from their arguments.

The ``quality`` knob selects a spec preset trading run time for grid
density / window length:

- ``"quick"`` — coarse grid, short windows (benchmark-harness default);
- ``"full"``  — the paper's grid and longer measurement windows.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.series import Series, series_from_table
from repro.analysis.text_plots import line_plot, scatter_plot
from repro.core import calibration as cal
from repro.core.cache import ResultCache
from repro.core.config import ExperimentConfig
from repro.core.model import ThroughputModel
from repro.core.results import ResultTable
from repro.core.scenario import (
    PanelSpec,
    QualityPreset,
    ScenarioSpec,
    SeriesSpec,
    apply_overrides,
    load_bundled,
)

__all__ = [
    "FigureData",
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure_from_scenario",
]


@dataclass
class FigureData:
    """All panels of one reproduced figure."""

    name: str
    title: str
    #: panel name -> (x label, y label, series list)
    panels: Dict[str, Tuple[str, str, List[Series]]]
    #: raw scatter points for Fig. 1
    scatter: List[Tuple[float, float]] = field(default_factory=list)
    table: ResultTable | None = None
    notes: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        blocks = [f"==== {self.name}: {self.title} ===="]
        if self.scatter:
            blocks.append(
                scatter_plot(
                    self.scatter,
                    title=self.title,
                    x_label="link utilization",
                    y_label="drop rate",
                )
            )
        for panel, (x_label, y_label, series) in self.panels.items():
            blocks.append(
                line_plot(series, title=panel, x_label=x_label,
                          y_label=y_label)
            )
        if self.notes:
            blocks.append("notes: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.notes.items())))
        return "\n\n".join(blocks)

    def to_csv_dir(self, directory: str | Path) -> List[Path]:
        """One CSV per panel (columns: x, one column per series)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for panel, (x_label, _y, series_list) in self.panels.items():
            path = directory / f"{self.name}_{panel}.csv".replace(" ", "_")
            xs = sorted({x for s in series_list for x in s.x})
            with open(path, "w") as fh:
                header = [x_label] + [s.label for s in series_list]
                fh.write(",".join(header) + "\n")
                for x in xs:
                    row = [f"{x:g}"]
                    for s in series_list:
                        lookup = dict(zip(s.x, s.y))
                        row.append(
                            f"{lookup[x]:g}" if x in lookup else "")
                    fh.write(",".join(row) + "\n")
            written.append(path)
        if self.scatter:
            path = directory / f"{self.name}_scatter.csv"
            with open(path, "w") as fh:
                fh.write("link_utilization,drop_rate\n")
                for x, y in self.scatter:
                    fh.write(f"{x:g},{y:g}\n")
            written.append(path)
        return written


def _rank(values: Sequence[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (j + 1 < len(order)
               and values[order[j + 1]] == values[order[i]]):
            j += 1
        mean_rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (no SciPy dependency)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two same-length samples of size >= 2")
    rx, ry = _rank(xs), _rank(ys)
    mx = sum(rx) / len(rx)
    my = sum(ry) / len(ry)
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy) ** 0.5


# ---------------------------------------------------------------------------
# Spec -> figure rendering binding
# ---------------------------------------------------------------------------

def _check_quality(spec: ScenarioSpec, quality: Optional[str]) -> None:
    if quality is not None and spec.quality \
            and quality not in spec.quality:
        raise ValueError(
            f"quality must be one of {sorted(spec.quality)}, "
            f"got {quality!r}")


def _override_axis(spec: ScenarioSpec, path: str,
                   values: Sequence) -> ScenarioSpec:
    """A copy of ``spec`` with one axis's grid replaced.

    An explicit grid wins over quality presets, so the preset's values
    for that axis are dropped too.
    """
    axes = tuple(
        dataclasses.replace(axis, values=tuple(values))
        if axis.path == path else axis
        for axis in spec.axes)
    quality = {
        name: QualityPreset(
            overrides=preset.overrides,
            axis_values={k: v for k, v in preset.axis_values.items()
                         if k != path})
        for name, preset in spec.quality.items()
    }
    return dataclasses.replace(spec, axes=axes, quality=quality)


def _metric_series(table: ResultTable, panel: PanelSpec,
                   spec_series: SeriesSpec) -> Series:
    series = series_from_table(table, panel.x, spec_series.metric,
                               spec_series.label, **spec_series.where)
    if spec_series.scale != 1:
        series = Series(series.label, series.x,
                        tuple(y * spec_series.scale for y in series.y))
    return series


def _model_series(table: ResultTable, panel: PanelSpec,
                  spec_series: SeriesSpec,
                  base: ExperimentConfig) -> Series:
    # The model line: Little's-law bound fed with the measured misses,
    # shown (as in the paper) only where the interconnect binds.
    xs: List[float] = []
    ys: List[float] = []
    for result in table.where(**spec_series.where):
        x = result.params[panel.x]
        if spec_series.min_x is not None and x < spec_series.min_x:
            continue
        config = base
        if spec_series.config_path is not None:
            config = apply_overrides(base,
                                     {spec_series.config_path: x})
        bound = ThroughputModel(config).predict(
            misses_per_packet=result.metrics[
                "iotlb_misses_per_packet"],
            memory_utilization=result.metrics["memory_utilization"],
        )
        xs.append(float(x))
        ys.append(bound / 1e9)
    return Series(spec_series.label, tuple(xs),
                  tuple(ys)).sorted_by_x()


def _max_goodput_series(table: ResultTable, panel: PanelSpec,
                        spec_series: SeriesSpec) -> Series:
    xs = tuple(sorted({float(v) for v in table.column(panel.x)}))
    return Series(spec_series.label, xs,
                  tuple(cal.MAX_APP_GOODPUT_BPS / 1e9 for _ in xs))


def _sweep_figure(spec: ScenarioSpec, table: ResultTable,
                  base: ExperimentConfig) -> FigureData:
    panels: Dict[str, Tuple[str, str, List[Series]]] = {}
    render = spec.render
    for panel in (render.panels if render else ()):
        series: List[Series] = []
        for s in panel.series:
            if s.kind == "metric":
                series.append(_metric_series(table, panel, s))
            elif s.kind == "model":
                series.append(_model_series(table, panel, s, base))
            else:
                series.append(_max_goodput_series(table, panel, s))
        panels[panel.name] = (panel.x_label, panel.y_label, series)
    return FigureData(name=spec.name, title=spec.title, panels=panels,
                      table=table)


def _fleet_figure(spec: ScenarioSpec, aggregate) -> FigureData:
    """Materialize Fig. 1 from a streamed
    :class:`~repro.workload.fleet_agg.FleetAggregate`.

    The scatter is the occupied density-cell midpoints (constant-size
    whatever the fleet size) and every summary note is answered by the
    aggregate — no per-host samples exist at million-host scale.  The
    ``spearman`` note is the rank correlation of the binned population
    (see :func:`repro.workload.fleet_agg.density_rank_correlation`).
    """
    return FigureData(
        name=spec.name,
        title=spec.title,
        panels={},
        scatter=aggregate.scatter_points(),
        notes={
            "hosts": aggregate.hosts,
            "spearman": round(aggregate.rank_correlation(), 3),
            "hosts_with_drops": aggregate.droppers,
            "low_util_hosts_with_drops": aggregate.low_util_droppers,
            "drop_fraction_high_util": round(
                aggregate.drop_fraction_high_util, 3),
            "drop_fraction_low_util": round(
                aggregate.drop_fraction_low_util, 3),
        },
    )


def figure_from_scenario(
    spec: ScenarioSpec,
    quality: Optional[str] = None,
    *,
    workers: int | str | None = None,
    cache: ResultCache | None = None,
    base: Optional[ExperimentConfig] = None,
    fidelity: Optional[str] = None,
    events=None,
    failures: str = "raise",
) -> FigureData:
    """Run a scenario and materialize its ``[render]`` section.

    Sweep scenarios yield line-plot panels (with model / max-goodput
    overlays where the spec asks for them); fleet scenarios yield the
    utilization-vs-drops scatter with summary notes.  ``fidelity``
    overrides the spec's engine choice (``--fidelity``); ``events`` and
    ``failures`` pass through to the runner (live telemetry / keep
    failed rows), as in :func:`repro.core.parallel.run_many`.
    """
    _check_quality(spec, quality)
    if spec.driver == "fleet":
        aggregate = spec.run_fleet_aggregate(
            quality=quality, base=base, fidelity=fidelity,
            workers=workers, events=events)
        return _fleet_figure(spec, aggregate)
    if spec.driver != "sweep":
        raise ValueError(
            f"scenario {spec.name!r} (driver {spec.driver!r}) does "
            f"not render as a figure")
    table = spec.run(quality=quality, base=base, fidelity=fidelity,
                     workers=workers, cache=cache, events=events,
                     failures=failures)
    return _sweep_figure(spec, table,
                         spec.base_config(quality, base, fidelity))


# ---------------------------------------------------------------------------
# Figure entry points (thin wrappers over the bundled specs)
# ---------------------------------------------------------------------------

def figure1(n_hosts: int = 60, seed: int = 7,
            quality: str = "quick",
            workers: int | str | None = None,
            fidelity: Optional[str] = None) -> FigureData:
    """Fig. 1: host drop rate vs access-link utilization over a fleet.

    Returns the scatter plus summary notes: the Spearman correlation
    (positive in the paper) and the count of low-utilization hosts with
    drops (the paper's second observation).
    """
    spec = load_bundled("figure1")
    spec = dataclasses.replace(
        spec, driver_args={**spec.driver_args,
                           "n_hosts": n_hosts, "seed": seed})
    return figure_from_scenario(spec, quality=quality, workers=workers,
                                fidelity=fidelity)


def figure3(quality: str = "quick",
            cores: Sequence[int] | None = None,
            workers: int | str | None = None,
            cache: ResultCache | None = None,
            fidelity: Optional[str] = None) -> FigureData:
    """Fig. 3: throughput / drop % / IOTLB misses vs receiver cores,
    IOMMU ON vs OFF, plus the Little's-law model line."""
    spec = load_bundled("figure3")
    if cores:
        spec = _override_axis(spec, "host.cpu.cores", tuple(cores))
    return figure_from_scenario(spec, quality=quality, workers=workers,
                                cache=cache, fidelity=fidelity)


def figure4(quality: str = "quick",
            cores: Sequence[int] | None = None,
            workers: int | str | None = None,
            cache: ResultCache | None = None,
            fidelity: Optional[str] = None) -> FigureData:
    """Fig. 4: hugepages enabled vs disabled (IOMMU always on)."""
    spec = load_bundled("figure4")
    if cores:
        spec = _override_axis(spec, "host.cpu.cores", tuple(cores))
    return figure_from_scenario(spec, quality=quality, workers=workers,
                                cache=cache, fidelity=fidelity)


def figure5(quality: str = "quick",
            region_mb: Sequence[int] = (4, 8, 12, 16),
            workers: int | str | None = None,
            cache: ResultCache | None = None,
            fidelity: Optional[str] = None) -> FigureData:
    """Fig. 5: provisioning for larger BDPs worsens IOMMU contention."""
    spec = load_bundled("figure5")
    if region_mb:
        spec = _override_axis(spec, "host.rx_region_bytes",
                              tuple(region_mb))
    return figure_from_scenario(spec, quality=quality, workers=workers,
                                cache=cache, fidelity=fidelity)


def figure6(quality: str = "quick",
            antagonists: Sequence[int] | None = None,
            workers: int | str | None = None,
            cache: ResultCache | None = None,
            fidelity: Optional[str] = None) -> FigureData:
    """Fig. 6: throughput and memory bandwidth vs STREAM cores."""
    spec = load_bundled("figure6")
    if antagonists:
        spec = _override_axis(spec, "host.antagonist_cores",
                              tuple(antagonists))
    return figure_from_scenario(spec, quality=quality, workers=workers,
                                cache=cache, fidelity=fidelity)
