"""Markdown report generation from saved figure results.

``scripts/generate_figures.py`` saves one JSON per figure; this module
turns a results directory into a paper-vs-measured markdown report —
the machine-generated companion to the hand-written EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["ledger_section", "load_results", "metrics_section",
           "render_report"]

_FIGURE_ORDER = ("figure1", "figure3", "figure4", "figure5", "figure6")


def load_results(directory: str | Path) -> Dict[str, dict]:
    """Load every ``figure*.json`` in ``directory`` (sorted)."""
    directory = Path(directory)
    out: Dict[str, dict] = {}
    for name in _FIGURE_ORDER:
        path = directory / f"{name}.json"
        if path.exists():
            out[name] = json.loads(path.read_text())
    if not out:
        raise FileNotFoundError(
            f"no figure*.json results under {directory}")
    return out


def _series_table(panel: dict) -> List[str]:
    lines: List[str] = []
    series_list = panel["series"]
    if not series_list:
        return lines
    xs = series_list[0]["x"]
    header = "| " + panel["x_label"] + " | " + " | ".join(
        s["label"] for s in series_list) + " |"
    lines.append(header)
    lines.append("|" + "---|" * (len(series_list) + 1))
    for i, x in enumerate(xs):
        row = [f"{x:g}"]
        for s in series_list:
            lookup = dict(zip(s["x"], s["y"]))
            row.append(f"{lookup[x]:g}" if x in lookup else "")
        lines.append("| " + " | ".join(row) + " |")
    return lines


#: Registry metrics worth a row in the report, with display labels —
#: the paper's headline hardware counters by their registry names.
_HEADLINE_METRICS = (
    ("gauges", "host.app_throughput_gbps", "app throughput (Gbps)"),
    ("gauges", "nic.drop_rate", "NIC drop rate"),
    ("gauges", "host.iotlb_misses_per_packet", "IOTLB misses/packet"),
    ("gauges", "memory.bandwidth_GBps", "memory bandwidth (GB/s)"),
    ("counters", "nic.dropped_packets", "dropped packets"),
    ("counters", "transport.retransmissions", "retransmissions"),
    ("gauges", "transport.mean_cwnd", "mean cwnd (packets)"),
)


def metrics_section(snapshot: dict,
                    heading: str = "## Metrics snapshot") -> List[str]:
    """Markdown lines for one metrics-registry snapshot
    (:meth:`~repro.core.experiment.ExperimentHandle.metrics_snapshot`,
    i.e. a ``--metrics-out`` payload)."""
    lines = [heading, ""]
    params = snapshot.get("meta", {}).get("params")
    if params:
        lines.append("*" + ", ".join(
            f"{k}={v}" for k, v in sorted(params.items())) + "*")
        lines.append("")
    lines.append("| metric | value |")
    lines.append("|---|---|")
    for kind, name, label in _HEADLINE_METRICS:
        value = snapshot.get(kind, {}).get(name)
        if value is not None:
            lines.append(f"| {label} | {value:g} |")
    delay = snapshot.get("histograms", {}).get("nic.host_delay_us")
    if delay and delay["count"]:
        lines.append(f"| host delay p50 (us) | {delay['p50']:g} |")
        lines.append(f"| host delay p99 (us) | {delay['p99']:g} |")
    lines.append("")
    lines.extend(_per_host_rows(snapshot))
    return lines


def _per_host_rows(snapshot: dict) -> List[str]:
    """Per-host table for multi-receiver snapshots, where each host's
    subtree is namespaced ``hostN/...`` (gauges ``hostN.*`` for the
    host-level derived values)."""
    gauges = snapshot.get("gauges", {})
    hosts = sorted(
        {m.group(1) for name in gauges
         if (m := re.match(r"^(host\d+)[./]", name))},
        key=lambda h: int(h[4:]))
    if not hosts:
        return []
    lines = ["### Per-host", "",
             "| host | throughput (Gbps) | drop rate | misses/pkt |",
             "|---|---|---|---|"]
    for host in hosts:
        tput = gauges.get(f"{host}.app_throughput_gbps")
        drops = gauges.get(f"{host}/nic.drop_rate")
        misses = gauges.get(f"{host}.iotlb_misses_per_packet")
        fmt = lambda v: f"{v:g}" if v is not None else "—"  # noqa: E731
        lines.append(
            f"| {host} | {fmt(tput)} | {fmt(drops)} | {fmt(misses)} |")
    lines.append("")
    return lines


#: (aggregate sketch key, display label) rows of the ledger table.
_LEDGER_SKETCHES = (
    ("wall_s", "wall time per run (s)"),
    ("events_per_sec", "engine events/sec"),
    ("throughput_gbps", "app throughput (Gbps)"),
    ("drop_rate", "drop rate"),
    ("link_utilization", "link utilization"),
)


def ledger_section(aggregate: dict,
                   heading: str = "## Run ledger") -> List[str]:
    """Markdown lines for one run-ledger aggregate
    (:meth:`repro.obs.telemetry.RunAggregate.to_dict`, i.e. a
    ``repro runs show --json-out`` payload)."""
    lines = [heading, ""]
    run_id = aggregate.get("run_id") or aggregate.get("label")
    if run_id:
        lines.append(f"*{run_id}*")
        lines.append("")
    total = aggregate.get("total", 0)
    done = (aggregate.get("finished", 0) + aggregate.get("failed", 0)
            + aggregate.get("cached", 0))
    lines.append(
        f"Runs: **{done}/{total or done}** — "
        f"{aggregate.get('finished', 0)} finished, "
        f"{aggregate.get('cached', 0)} cached, "
        f"{aggregate.get('failed', 0)} failed.")
    lines.append("")
    lines.append("| statistic | p50 | p90 | p99 | n |")
    lines.append("|---|---|---|---|---|")
    from repro.obs.sketch import QuantileSketch

    for key, label in _LEDGER_SKETCHES:
        state = aggregate.get("sketches", {}).get(key)
        if not state or not state.get("count"):
            continue
        sketch = QuantileSketch.from_dict(state)
        lines.append(
            f"| {label} | {sketch.quantile(50):g} | "
            f"{sketch.quantile(90):g} | {sketch.quantile(99):g} | "
            f"{sketch.count} |")
    causes = aggregate.get("root_causes", {})
    if causes:
        parts = ", ".join(f"{label} {count}" for label, count
                          in sorted(causes.items(),
                                    key=lambda kv: (-kv[1], kv[0])))
        lines.append("")
        lines.append(f"Root causes: {parts}.")
    lines.append("")
    return lines


def render_report(results: Dict[str, dict],
                  title: str = "Reproduction report",
                  metrics: Optional[dict] = None,
                  ledger: Optional[dict] = None) -> str:
    """One markdown document: findings + data tables per figure, plus
    optional metrics-snapshot (``metrics``) and run-ledger aggregate
    (``ledger``) sections."""
    lines = [f"# {title}", ""]
    total = passed = 0
    for payload in results.values():
        for finding in payload["findings"]:
            total += 1
            passed += bool(finding["passed"])
    lines.append(f"Shape criteria passing: **{passed}/{total}**.")
    lines.append("")
    for name, payload in results.items():
        lines.append(f"## {name} — {payload['title']}")
        lines.append("")
        if payload.get("notes"):
            notes = ", ".join(f"{k}={v}"
                              for k, v in sorted(payload["notes"].items()))
            lines.append(f"*{notes}*")
            lines.append("")
        for finding in payload["findings"]:
            status = "PASS" if finding["passed"] else "FAIL"
            lines.append(
                f"- **[{status}]** {finding['criterion']} "
                f"({finding['detail']})")
        lines.append("")
        for panel_name, panel in payload.get("panels", {}).items():
            table = _series_table(panel)
            if table:
                lines.append(f"### {panel_name}")
                lines.append("")
                lines.extend(table)
                lines.append("")
        lines.append(
            f"_regenerated in {payload.get('elapsed_s', '?')} s_")
        lines.append("")
    if metrics is not None:
        lines.extend(metrics_section(metrics))
    if ledger is not None:
        lines.extend(ledger_section(ledger))
    return "\n".join(lines)


def write_report(directory: str | Path,
                 output: Optional[str | Path] = None) -> Path:
    """Load results from ``directory`` and write the report next to
    them (default ``<directory>/REPORT.md``).

    A ``metrics.json`` in the directory (a ``--metrics-out`` payload,
    or a list of them from ``sweep``) is appended as a metrics
    section; a ``ledger.json`` (``repro runs show --json-out``) as a
    run-ledger section.
    """
    directory = Path(directory)
    results = load_results(directory)
    metrics: Optional[dict] = None
    metrics_path = directory / "metrics.json"
    if metrics_path.exists():
        loaded = json.loads(metrics_path.read_text())
        metrics = loaded[0] if isinstance(loaded, list) and loaded else (
            loaded if isinstance(loaded, dict) else None)
    ledger: Optional[dict] = None
    ledger_path = directory / "ledger.json"
    if ledger_path.exists():
        ledger = json.loads(ledger_path.read_text())
    path = Path(output) if output else directory / "REPORT.md"
    path.write_text(render_report(results, metrics=metrics,
                                  ledger=ledger))
    return path
