"""Shape checks: does each reproduced figure match the paper?

Each check encodes the DESIGN.md "shape criteria" — the qualitative
claims of the corresponding paper figure (who wins, where the knees
fall) — and returns a list of human-readable pass/fail findings.  The
benchmark harness prints these next to the regenerated series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.analysis.figures import FigureData
from repro.analysis.series import Series

__all__ = ["Finding", "check_figure"]


@dataclass(frozen=True)
class Finding:
    """One shape criterion's outcome."""

    figure: str
    criterion: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.figure}: {self.criterion} ({self.detail})"


def _series(fig: FigureData, panel: str, label_prefix: str) -> Series:
    for candidate in fig.panels[panel][2]:
        if candidate.label.startswith(label_prefix):
            return candidate
    raise KeyError(f"no series starting with {label_prefix!r} in "
                   f"panel {panel!r} of {fig.name}")


def _at(series: Series, x: float) -> float:
    lookup = dict(zip(series.x, series.y))
    return lookup[x]


def check_figure1(fig: FigureData) -> List[Finding]:
    notes = fig.notes
    high = notes["drop_fraction_high_util"]
    low = notes["drop_fraction_low_util"]
    return [
        Finding(
            "figure1", "drops correlate positively with utilization",
            notes["spearman"] > 0.1 and high > low,
            f"spearman={notes['spearman']}, "
            f"P(drop|util>0.85)={high} vs P(drop|util<0.6)={low}"),
        Finding(
            "figure1", "some hosts drop at low (<50%) utilization",
            notes["low_util_hosts_with_drops"] >= 1,
            f"{notes['low_util_hosts_with_drops']} hosts"),
    ]


def check_figure3(fig: FigureData) -> List[Finding]:
    on = _series(fig, "throughput", "App Throughput -- IOMMU ON")
    off = _series(fig, "throughput", "App Throughput -- IOMMU OFF")
    misses = _series(fig, "iotlb misses", "IOMMU ON")
    drops = _series(fig, "drop rate", "IOMMU ON")
    model = _series(fig, "throughput", "Modeled App Throughput")
    findings = [
        Finding("figure3", "CPU-bound region ~linear to 8 cores",
                abs(_at(on, 8) - 4 * _at(on, 2)) / (4 * _at(on, 2)) < 0.1
                and _at(on, 8) > 85,
                f"2→{_at(on, 2):.0f}, 8→{_at(on, 8):.0f} Gbps"),
        Finding("figure3", "IOMMU OFF sustains ≈92 Gbps beyond 8 cores",
                min(_at(off, x) for x in off.x if x >= 8) > 85,
                f"min={min(_at(off, x) for x in off.x if x >= 8):.1f}"),
        Finding("figure3", "IOMMU ON degrades ≥10% at 16 cores vs OFF",
                _at(on, 16) < 0.9 * _at(off, 16),
                f"ON={_at(on, 16):.1f} OFF={_at(off, 16):.1f}"),
        Finding("figure3", "IOTLB misses ≈0 below 8 cores, ≥1 at 16",
                _at(misses, 6) < 0.2 and _at(misses, 16) >= 1.0,
                f"6→{_at(misses, 6):.2f}, 16→{_at(misses, 16):.2f}"),
        Finding("figure3", "drops ≥1.5% in the blind-spot regime",
                max(_at(drops, x) for x in drops.x if 10 <= x <= 14)
                >= 1.5,
                f"peak={max(_at(drops, x) for x in drops.x if 10 <= x <= 14):.2f}%"),
    ]
    # Model line tracks measured ON throughput within 15% where shown.
    on_lookup = dict(zip(on.x, on.y))
    errors = [
        abs(y - on_lookup[x]) / on_lookup[x]
        for x, y in zip(model.x, model.y) if x in on_lookup
    ]
    findings.append(
        Finding("figure3", "model line tracks measurement (≤15%)",
                bool(errors) and max(errors) < 0.15,
                f"max err={max(errors) * 100:.1f}%" if errors else "no points"))
    return findings


def check_figure4(fig: FigureData) -> List[Finding]:
    hp = _series(fig, "throughput", "App Throughput -- HugePages Enabled")
    nohp = _series(fig, "throughput",
                   "App Throughput -- HugePages Disabled")
    misses_nohp = _series(fig, "iotlb misses", "Hugepages Disabled")
    return [
        Finding("figure4", "hugepages-off degrades >20% at high cores",
                _at(nohp, 16) < 0.8 * _at(hp, 16),
                f"hp={_at(hp, 16):.1f} nohp={_at(nohp, 16):.1f}"),
        Finding("figure4", "hugepages-off bottleneck arrives earlier",
                _at(nohp, 8) < 0.9 * _at(hp, 8),
                f"hp@8={_at(hp, 8):.1f} nohp@8={_at(nohp, 8):.1f}"),
        Finding("figure4", "hugepages-off misses ≥2/packet throughout",
                min(misses_nohp.y) >= 1.5,
                f"min={min(misses_nohp.y):.2f}"),
    ]


def check_figure5(fig: FigureData) -> List[Finding]:
    on = _series(fig, "throughput", "App Throughput -- IOMMU ON")
    off = _series(fig, "throughput", "App Throughput -- IOMMU OFF")
    misses = _series(fig, "iotlb misses", "IOMMU ON")
    on_sorted = on.sorted_by_x()
    misses_sorted = misses.sorted_by_x()
    non_increasing = all(
        a >= b - 1.0 for a, b in zip(on_sorted.y, on_sorted.y[1:]))
    increasing = all(
        a <= b + 0.05 for a, b in zip(misses_sorted.y, misses_sorted.y[1:]))
    return [
        Finding("figure5", "IOMMU ON throughput non-increasing in size",
                non_increasing and on_sorted.y[-1] < on_sorted.y[0],
                f"{on_sorted.y[0]:.1f}→{on_sorted.y[-1]:.1f}"),
        Finding("figure5", "misses/packet increase with region size",
                increasing and misses_sorted.y[-1] > misses_sorted.y[0],
                f"{misses_sorted.y[0]:.2f}→{misses_sorted.y[-1]:.2f}"),
        Finding("figure5", "IOMMU OFF flat across sizes",
                max(off.y) - min(off.y) < 5.0,
                f"range={max(off.y) - min(off.y):.1f} Gbps"),
    ]


def check_figure6(fig: FigureData) -> List[Finding]:
    off = _series(fig, "throughput iommu off", "App Throughput")
    on = _series(fig, "throughput iommu on", "App Throughput")
    bw = _series(fig, "memory bandwidth", "Total -- IOMMU OFF")
    max_ant = max(off.x)
    return [
        Finding("figure6",
                "IOMMU OFF degrades ≥8% only near bus saturation",
                _at(off, max_ant) < 0.92 * max(off.y)
                and _at(off, min(off.x)) > 0.95 * max(off.y),
                f"0→{_at(off, min(off.x)):.1f}, "
                f"{max_ant:.0f}→{_at(off, max_ant):.1f}"),
        Finding("figure6", "IOMMU ON degrades further (≥15Gbps drop)",
                _at(on, max_ant) < _at(on, min(on.x)) - 15,
                f"{_at(on, min(on.x)):.1f}→{_at(on, max_ant):.1f}"),
        Finding("figure6", "IOMMU ON ends below IOMMU OFF",
                _at(on, max_ant) < _at(off, max_ant) - 10,
                f"ON={_at(on, max_ant):.1f} OFF={_at(off, max_ant):.1f}"),
        Finding("figure6", "memory bandwidth saturates near ~90 GB/s",
                80 <= _at(bw, max_ant) <= 95,
                f"{_at(bw, max_ant):.1f} GB/s"),
        Finding("figure6", "memory bandwidth ≈linear at low antagonism",
                _at(bw, min(bw.x)) < 25,
                f"baseline={_at(bw, min(bw.x)):.1f} GB/s"),
    ]


_CHECKS: Dict[str, Callable[[FigureData], List[Finding]]] = {
    "figure1": check_figure1,
    "figure3": check_figure3,
    "figure4": check_figure4,
    "figure5": check_figure5,
    "figure6": check_figure6,
}


def check_figure(fig: FigureData) -> List[Finding]:
    """Run the paper-shape checks registered for ``fig``."""
    try:
        checker = _CHECKS[fig.name]
    except KeyError:
        raise ValueError(f"no shape checks registered for {fig.name!r}")
    return checker(fig)
