"""Analysis and figure regeneration: series building, ASCII plots, and
one function per paper figure."""

from repro.analysis.convergence import (
    SawtoothMetrics,
    convergence_time,
    sawtooth_metrics,
)
from repro.analysis.figures import (
    FigureData,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
)
from repro.analysis.sensitivity import Elasticity, sensitivity_analysis
from repro.analysis.series import Series, series_from_table
from repro.analysis.text_plots import line_plot, scatter_plot
from repro.analysis.validation import (
    ValidationPoint,
    ValidationReport,
    validate_model,
)

__all__ = [
    "Elasticity",
    "FigureData",
    "SawtoothMetrics",
    "Series",
    "ValidationPoint",
    "ValidationReport",
    "convergence_time",
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "line_plot",
    "sawtooth_metrics",
    "scatter_plot",
    "sensitivity_analysis",
    "series_from_table",
    "validate_model",
]
