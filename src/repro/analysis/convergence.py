"""Time-series analysis: sawtooth detection and convergence measures.

The paper attributes residual drops to the classic congestion-control
sawtooth: "upon reducing the rate, the host delay reduces, resulting in
a corresponding increase in rate, leading to subsequent host congestion
and drops."  These helpers quantify that behaviour from recorded time
series (NIC buffer occupancy, arrival rate, cwnd).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.metrics import percentile

__all__ = ["SawtoothMetrics", "convergence_time", "sawtooth_metrics"]


@dataclass(frozen=True)
class SawtoothMetrics:
    """Oscillation summary of one series."""

    mean: float
    amplitude: float          # p95 - p5
    relative_amplitude: float  # amplitude / mean (0 if mean == 0)
    cycles: int               # downward mean-crossings
    period: Optional[float]   # mean time between crossings, if any

    @property
    def oscillating(self) -> bool:
        """Heuristic: several cycles with non-trivial amplitude."""
        return self.cycles >= 3 and self.relative_amplitude > 0.2


def sawtooth_metrics(times: Sequence[float],
                     values: Sequence[float]) -> SawtoothMetrics:
    """Quantify oscillation of ``values`` sampled at ``times``."""
    if len(times) != len(values):
        raise ValueError("times and values must have equal length")
    if len(values) < 3:
        raise ValueError("need at least 3 samples")
    mean = sum(values) / len(values)
    amplitude = percentile(values, 95) - percentile(values, 5)
    relative = amplitude / mean if mean > 0 else 0.0
    crossings: List[float] = []
    for i in range(1, len(values)):
        if values[i - 1] >= mean > values[i]:
            crossings.append(times[i])
    period = None
    if len(crossings) >= 2:
        gaps = [b - a for a, b in zip(crossings, crossings[1:])]
        period = sum(gaps) / len(gaps)
    return SawtoothMetrics(
        mean=mean,
        amplitude=amplitude,
        relative_amplitude=relative,
        cycles=len(crossings),
        period=period,
    )


def convergence_time(
    times: Sequence[float],
    values: Sequence[float],
    tolerance: float = 0.1,
    window: int = 5,
) -> Optional[float]:
    """First time from which the series stays within ``tolerance``
    (relative) of its final level.

    The final level is the mean of the last ``window`` samples.
    Returns None if the series never settles.
    """
    if len(times) != len(values):
        raise ValueError("times and values must have equal length")
    if len(values) < window + 1:
        raise ValueError("series shorter than the settling window")
    final = sum(values[-window:]) / window
    if final == 0:
        band = tolerance
    else:
        band = abs(final) * tolerance
    for i in range(len(values)):
        if all(abs(v - final) <= band for v in values[i:]):
            return times[i]
    return None
