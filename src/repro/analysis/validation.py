"""Cross-validation of the simulator against the analytical model.

The Little's-law model (:mod:`repro.core.model`) and the packet-level
simulator are independent implementations of the same physics; running
both over a grid of operating points and comparing them is the
repository's internal consistency check (and reproduces the paper's
"observed throughput closely matches the above model").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.config import CpuConfig
from repro.core.experiment import run_experiment
from repro.core.model import ThroughputModel
from repro.core.sweep import baseline_config

__all__ = ["ValidationPoint", "ValidationReport", "validate_model"]


@dataclass(frozen=True)
class ValidationPoint:
    """One operating point: measured vs model-predicted throughput."""

    cores: int
    iommu: bool
    antagonist_cores: int
    measured_gbps: float
    predicted_gbps: float
    misses_per_packet: float

    @property
    def relative_error(self) -> float:
        if self.measured_gbps == 0:
            return float("inf")
        return abs(self.predicted_gbps - self.measured_gbps) \
            / self.measured_gbps


@dataclass(frozen=True)
class ValidationReport:
    points: List[ValidationPoint]

    @property
    def max_error(self) -> float:
        return max(p.relative_error for p in self.points)

    @property
    def mean_error(self) -> float:
        return sum(p.relative_error for p in self.points) / len(
            self.points)

    def worst(self) -> ValidationPoint:
        return max(self.points, key=lambda p: p.relative_error)

    def render(self) -> str:
        lines = [
            f"{'cores':>6} {'iommu':>6} {'antag':>6} {'measured':>9} "
            f"{'model':>9} {'err %':>6}"
        ]
        for p in self.points:
            lines.append(
                f"{p.cores:>6} {str(p.iommu):>6} "
                f"{p.antagonist_cores:>6} {p.measured_gbps:>9.1f} "
                f"{p.predicted_gbps:>9.1f} "
                f"{p.relative_error * 100:>6.1f}")
        lines.append(
            f"mean error {self.mean_error * 100:.1f} %, "
            f"max {self.max_error * 100:.1f} %")
        return "\n".join(lines)


def validate_model(
    cores: Sequence[int] = (4, 8, 12, 16),
    iommu_states: Sequence[bool] = (True, False),
    antagonists: Sequence[int] = (0,),
    warmup: float = 4e-3,
    duration: float = 8e-3,
    seed: int = 1,
) -> ValidationReport:
    """Run the grid in simulation and through the model; compare.

    The model is fed the *measured* miss rate and memory utilization
    (it predicts throughput given translation behaviour, not the
    translation behaviour itself).
    """
    points: List[ValidationPoint] = []
    for antagonist in antagonists:
        for iommu in iommu_states:
            for n in cores:
                base = baseline_config(warmup=warmup, duration=duration,
                                       seed=seed)
                config = dataclasses.replace(
                    base,
                    host=dataclasses.replace(
                        base.host,
                        cpu=CpuConfig(cores=n),
                        iommu=dataclasses.replace(
                            base.host.iommu, enabled=iommu),
                        antagonist_cores=antagonist,
                    ))
                result = run_experiment(config)
                model = ThroughputModel(config)
                predicted = model.predict(
                    misses_per_packet=result.metrics[
                        "iotlb_misses_per_packet"],
                    memory_utilization=result.metrics[
                        "memory_utilization"],
                )
                points.append(ValidationPoint(
                    cores=n,
                    iommu=iommu,
                    antagonist_cores=antagonist,
                    measured_gbps=result.metrics["app_throughput_gbps"],
                    predicted_gbps=predicted / 1e9,
                    misses_per_packet=result.metrics[
                        "iotlb_misses_per_packet"],
                ))
    return ValidationReport(points)
