"""The paper's minimal host-congestion workload (§3).

"40 sender machines and one receiver machine exchange traffic ...
The receiver machine runs one or more threads, each on a dedicated
core ...; each receiver thread issues 16KB remote reads using one
connection per sender."

This module wires senders, fabric, host, and transport together: one
:class:`~repro.transport.base.Connection` per (receiver thread, sender)
pair, all continuously backlogged with 16 KB read responses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import ExperimentConfig
from repro.host.host import ReceiverHost
from repro.net.fabric import Fabric
from repro.sim.engine import Simulator
from repro.sim.randoms import RngRegistry
from repro.sim.tracing import Tracer
from repro.transport.base import Connection
from repro.transport.receiver import ReceiverEndpoint
from repro.transport.swift import make_cc

__all__ = ["RemoteReadWorkload"]


class RemoteReadWorkload:
    """Builds and owns the full sender/fabric/host/transport graph."""

    def __init__(self, sim: Simulator, config: ExperimentConfig,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.config = config
        rngs = RngRegistry(config.sim.seed)
        self._arrival_rng = rngs.stream("arrivals")
        self.host = ReceiverHost(
            sim, config.host, rngs.stream("host"), tracer=tracer)
        self.fabric = Fabric(
            sim,
            config.link,
            n_senders=config.workload.senders,
            deliver_to_host=self.host.deliver_packet,
        )
        self.receiver = ReceiverEndpoint(
            send_ack=self.host.send_ack,
            packets_per_read=config.workload.packets_per_read,
            now=lambda: sim.now,
        )
        self.host.attach_receiver(self.receiver.on_packet)
        self.host.attach_ack_egress(self.fabric.route_ack)
        self.connections: List[Connection] = []
        self._by_flow: Dict[int, Connection] = {}
        flow_id = 0
        cores = config.host.cpu.cores
        for thread_id in range(cores):
            for sender_id in range(config.workload.senders):
                conn = self._make_connection(flow_id, sender_id, thread_id)
                self.connections.append(conn)
                self._by_flow[flow_id] = conn
                flow_id += 1

    def _make_connection(self, flow_id: int, sender_id: int,
                         thread_id: int) -> Connection:
        cfg = self.config
        cc = make_cc(cfg.transport, cfg.swift, initial_cwnd=1.0)
        open_loop = cfg.workload.offered_load is not None
        conn = Connection(
            sim=self.sim,
            flow_id=flow_id,
            sender_id=sender_id,
            thread_id=thread_id,
            cc=cc,
            send=lambda pkt, s=sender_id: self.fabric.send_packet(s, pkt),
            payload_bytes=cfg.workload.mtu_payload,
            wire_bytes=cfg.workload.wire_bytes_per_packet,
            rto=cfg.swift.rto,
            reorder_threshold=cfg.swift.loss_retx_threshold,
            always_backlogged=not open_loop,
        )
        self.fabric.register_flow(flow_id, conn.on_ack)
        if open_loop:
            self._start_arrivals(conn)
        return conn

    def set_offered_load(self, fraction: float) -> None:
        """Change the open-loop offered load at run time (payload
        fraction of the link rate).  Only valid when the workload was
        built open-loop (``offered_load`` set)."""
        if self.config.workload.offered_load is None:
            raise ValueError(
                "workload was built closed-loop; offered load is fixed")
        if not 0 < fraction <= 2:
            raise ValueError(f"offered load {fraction} out of (0, 2]")
        self._offered_load = fraction

    def _per_flow_read_rate(self) -> float:
        cfg = self.config
        n_flows = cfg.host.cpu.cores * cfg.workload.senders
        aggregate_reads_per_s = (
            self._offered_load * self.config.link.rate_bps
            / (cfg.workload.read_size_bytes * 8))
        return aggregate_reads_per_s / n_flows

    def _start_arrivals(self, conn: Connection) -> None:
        """Poisson arrivals of whole reads to one connection.

        The aggregate arrival rate across all flows equals
        ``offered_load × link rate`` in payload terms; the rate is
        re-read on every arrival so :meth:`set_offered_load` takes
        effect immediately (time-varying load).
        """
        if not hasattr(self, "_offered_load"):
            self._offered_load = self.config.workload.offered_load
        packets_per_read = self.config.workload.packets_per_read
        rng = self._arrival_rng

        def arrive():
            conn.add_backlog(packets_per_read)
            self.sim.call(rng.expovariate(self._per_flow_read_rate()),
                          arrive)

        self.sim.call(rng.expovariate(self._per_flow_read_rate()),
                      arrive)

    # -- aggregate statistics ---------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Register host + transport observables in ``registry``.

        Transport metrics are fleet aggregates over all connections
        (per-flow metrics would register cores × senders entries).
        """
        self.host.bind_metrics(registry)
        for name, fn in (
            ("packets_sent", self.total_packets_sent),
            ("retransmissions", self.total_retransmissions),
            ("timeouts", self.total_timeouts),
            ("acks_received",
             lambda: sum(c.acks_received for c in self.connections)),
            ("losses_detected",
             lambda: sum(c.losses_detected for c in self.connections)),
        ):
            registry.counter(name, "transport", fn=fn)
        registry.gauge("mean_cwnd", "transport", unit="packets",
                       fn=self.mean_cwnd)
        registry.gauge(
            "mean_srtt_us", "transport", unit="us",
            fn=lambda: (sum(c.srtt for c in self.connections)
                        / len(self.connections) * 1e6
                        if self.connections else 0.0))
        registry.counter("messages_completed", "receiver",
                         fn=lambda: float(
                             self.receiver.messages_completed()))
        registry.counter("fabric_drops", "fabric",
                         fn=lambda: float(self.fabric.fabric_drops()))

    def total_packets_sent(self) -> int:
        return sum(c.packets_sent for c in self.connections)

    def total_retransmissions(self) -> int:
        return sum(c.retransmissions for c in self.connections)

    def total_timeouts(self) -> int:
        return sum(c.timeouts for c in self.connections)

    def mean_cwnd(self) -> float:
        if not self.connections:
            return 0.0
        return sum(c.cc.cwnd() for c in self.connections) / len(
            self.connections)

    def reset_stats(self) -> None:
        """Warmup boundary for sender-side counters."""
        for conn in self.connections:
            conn.packets_sent = 0
            conn.retransmissions = 0
            conn.acks_received = 0
            conn.losses_detected = 0
            conn.timeouts = 0
        self.receiver.reset_stats()
