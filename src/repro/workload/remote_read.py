"""The paper's minimal host-congestion workload (§3).

"40 sender machines and one receiver machine exchange traffic ...
The receiver machine runs one or more threads, each on a dedicated
core ...; each receiver thread issues 16KB remote reads using one
connection per sender."

This module wires senders, fabric, host, and transport together: one
:class:`~repro.transport.base.Connection` per (receiver thread, sender)
pair, all continuously backlogged with 16 KB read responses.

Two granularities are exposed:

- :func:`build_remote_read_graph` — the general form: M receiver hosts
  behind one fabric, each with its own ``senders``-way incast (one
  :class:`HostWorkload` per host).
- :class:`RemoteReadWorkload` — the historical single-host facade over
  the same builder, kept because most studies (and the paper itself)
  are single-receiver.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import ExperimentConfig
from repro.host.host import ReceiverHost
from repro.net.fabric import Fabric
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.randoms import RngRegistry
from repro.sim.tracing import Tracer
from repro.transport.base import Connection
from repro.transport.receiver import ReceiverEndpoint
from repro.transport.registry import create as make_cc

__all__ = ["HostWorkload", "RemoteReadWorkload", "build_remote_read_graph"]


class _TransportStats(Component):
    """Fleet-aggregate sender-side observables for one host's flows.

    A component of its own so the transport counters keep their
    historical ``transport.*`` namespace (per-host: ``host0/transport``)
    without the workload hand-rolling registration loops.
    """

    label = "transport"

    def __init__(self, connections: List[Connection]):
        #: shared list object, owned by the enclosing HostWorkload.
        self._connections = connections

    def bind_own_metrics(self, registry, component: str) -> None:
        conns = self._connections
        for name, fn in (
            ("packets_sent", lambda: sum(c.packets_sent for c in conns)),
            ("retransmissions",
             lambda: sum(c.retransmissions for c in conns)),
            ("timeouts", lambda: sum(c.timeouts for c in conns)),
            ("acks_received",
             lambda: sum(c.acks_received for c in conns)),
            ("losses_detected",
             lambda: sum(c.losses_detected for c in conns)),
        ):
            registry.counter(name, component, fn=fn)
        registry.gauge(
            "mean_cwnd", component, unit="packets",
            fn=lambda: (sum(c.cc.cwnd() for c in conns) / len(conns)
                        if conns else 0.0))
        registry.gauge(
            "mean_srtt_us", component, unit="us",
            fn=lambda: (sum(c.srtt for c in conns) / len(conns) * 1e6
                        if conns else 0.0))

    def reset_own_stats(self) -> None:
        for conn in self._connections:
            conn.reset_stats()


class HostWorkload(Component):
    """One receiver host's share of the incast: its transport endpoint
    and one connection per (receiver thread, sender)."""

    def __init__(
        self,
        sim: Simulator,
        config: ExperimentConfig,
        host: ReceiverHost,
        fabric: Fabric,
        host_index: int = 0,
        arrival_rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.config = config
        self.host = host
        self.fabric = fabric
        self.host_index = host_index
        self._arrival_rng = arrival_rng
        cores = config.host.cpu.cores
        senders = config.workload.senders
        #: global ids: flows and sender machines are disjoint per host.
        self._flow_base = host_index * cores * senders
        self._sender_base = host_index * senders
        self.receiver = ReceiverEndpoint(
            send_ack=host.send_ack,
            packets_per_read=config.workload.packets_per_read,
            now=lambda: sim.now,
        )
        host.attach_receiver(self.receiver.on_packet)
        host.attach_ack_egress(fabric.route_ack)
        self.connections: List[Connection] = []
        self._by_flow: Dict[int, Connection] = {}
        flow_id = self._flow_base
        for thread_id in range(cores):
            for sender_id in range(senders):
                conn = self._make_connection(flow_id, sender_id, thread_id)
                self.connections.append(conn)
                self._by_flow[flow_id] = conn
                flow_id += 1
        self.transport = _TransportStats(self.connections)

    def children(self) -> Tuple[Tuple[str, Component], ...]:
        return (
            ("", self.host),
            ("receiver", self.receiver),
            ("transport", self.transport),
        )

    def _make_connection(self, flow_id: int, sender_id: int,
                         thread_id: int) -> Connection:
        cfg = self.config
        cc = make_cc(cfg.transport, cfg.swift, initial_cwnd=1.0)
        open_loop = cfg.workload.offered_load is not None
        global_sender = self._sender_base + sender_id
        conn = Connection(
            sim=self.sim,
            flow_id=flow_id,
            sender_id=sender_id,
            thread_id=thread_id,
            cc=cc,
            send=lambda pkt, s=global_sender: self.fabric.send_packet(s, pkt),
            payload_bytes=cfg.workload.mtu_payload,
            wire_bytes=cfg.workload.wire_bytes_per_packet,
            rto=cfg.swift.rto,
            reorder_threshold=cfg.swift.loss_retx_threshold,
            always_backlogged=not open_loop,
        )
        self.fabric.register_flow(flow_id, conn.on_ack,
                                  host=self.host_index)
        if open_loop:
            self._start_arrivals(conn)
        return conn

    def set_offered_load(self, fraction: float) -> None:
        """Change the open-loop offered load at run time (payload
        fraction of the link rate).  Only valid when the workload was
        built open-loop (``offered_load`` set)."""
        if self.config.workload.offered_load is None:
            raise ValueError(
                "workload was built closed-loop; offered load is fixed")
        if not 0 < fraction <= 2:
            raise ValueError(f"offered load {fraction} out of (0, 2]")
        self._offered_load = fraction

    def _per_flow_read_rate(self) -> float:
        cfg = self.config
        n_flows = cfg.host.cpu.cores * cfg.workload.senders
        aggregate_reads_per_s = (
            self._offered_load * self.config.link.rate_bps
            / (cfg.workload.read_size_bytes * 8))
        return aggregate_reads_per_s / n_flows

    def _start_arrivals(self, conn: Connection) -> None:
        """Poisson arrivals of whole reads to one connection.

        The aggregate arrival rate across this host's flows equals
        ``offered_load × link rate`` in payload terms; the rate is
        re-read on every arrival so :meth:`set_offered_load` takes
        effect immediately (time-varying load).
        """
        if not hasattr(self, "_offered_load"):
            self._offered_load = self.config.workload.offered_load
        packets_per_read = self.config.workload.packets_per_read
        rng = self._arrival_rng

        def arrive():
            conn.add_backlog(packets_per_read)
            self.sim.call(rng.expovariate(self._per_flow_read_rate()),
                          arrive)

        self.sim.call(rng.expovariate(self._per_flow_read_rate()),
                      arrive)

    # -- aggregate statistics ---------------------------------------------

    def total_packets_sent(self) -> int:
        return sum(c.packets_sent for c in self.connections)

    def total_retransmissions(self) -> int:
        return sum(c.retransmissions for c in self.connections)

    def total_timeouts(self) -> int:
        return sum(c.timeouts for c in self.connections)

    def mean_cwnd(self) -> float:
        if not self.connections:
            return 0.0
        return sum(c.cc.cwnd() for c in self.connections) / len(
            self.connections)


def build_remote_read_graph(
    sim: Simulator,
    config: ExperimentConfig,
    receivers: int = 1,
    tracer: Optional[Tracer] = None,
    fabric_factory: Optional[
        Callable[[Sequence[Callable]], Fabric]] = None,
) -> Tuple[List[ReceiverHost], Fabric, List[HostWorkload]]:
    """Construct {N×M senders → fabric → M receiver hosts}.

    Each receiver host gets its own disjoint set of ``senders`` sender
    machines and ``cores × senders`` flows, so per-host congestion is
    independent by construction (the headline multi-receiver claim).

    ``fabric_factory`` — called with the per-host delivery callbacks —
    lets :class:`~repro.core.topology.GraphBuilder` substitute a
    multi-tier fabric; the default builds the historical one-hop star.
    The fabric only needs the star's surface: ``send_packet``,
    ``register_flow``, ``route_ack``, ``fabric_drops``.

    With ``receivers == 1`` the build order — RNG streams, host, fabric,
    endpoint, connections — replays the historical single-host
    construction event for event, which is what keeps single-host
    results bit-identical.
    """
    if receivers < 1:
        raise ValueError(f"need at least one receiver, got {receivers}")
    rngs = RngRegistry(config.sim.seed)
    arrival_rng = rngs.stream("arrivals")
    hosts = [
        ReceiverHost(
            sim, config.host,
            rngs.stream("host" if receivers == 1 else f"host{i}"),
            tracer=tracer)
        for i in range(receivers)
    ]
    deliver = [host.deliver_packet for host in hosts]
    if fabric_factory is not None:
        fabric = fabric_factory(deliver)
    else:
        fabric = Fabric(
            sim,
            config.link,
            n_senders=config.workload.senders * receivers,
            receivers=deliver,
        )
    workloads = [
        HostWorkload(sim, config, host, fabric,
                     host_index=i, arrival_rng=arrival_rng)
        for i, host in enumerate(hosts)
    ]
    return hosts, fabric, workloads


class RemoteReadWorkload(Component):
    """The historical single-host facade over the graph builder."""

    def __init__(self, sim: Simulator, config: ExperimentConfig,
                 tracer: Optional[Tracer] = None):
        if config.workload.receivers != 1:
            raise ValueError(
                "RemoteReadWorkload is single-host; build a multi-host "
                "graph with repro.core.topology.GraphBuilder or "
                "build_remote_read_graph")
        if config.fabric.topology != "star":
            raise ValueError(
                "RemoteReadWorkload is star-only; multi-tier fabrics "
                "are built by repro.core.topology.GraphBuilder")
        self.sim = sim
        self.config = config
        hosts, fabric, workloads = build_remote_read_graph(
            sim, config, receivers=1, tracer=tracer)
        self._hw = workloads[0]
        self.host = hosts[0]
        self.fabric = fabric
        self.receiver = self._hw.receiver
        self.connections = self._hw.connections
        self._by_flow = self._hw._by_flow

    def children(self) -> Tuple[Tuple[str, Component], ...]:
        return (("", self._hw), ("", self.fabric))

    def set_offered_load(self, fraction: float) -> None:
        self._hw.set_offered_load(fraction)

    def total_packets_sent(self) -> int:
        return self._hw.total_packets_sent()

    def total_retransmissions(self) -> int:
        return self._hw.total_retransmissions()

    def total_timeouts(self) -> int:
        return self._hw.total_timeouts()

    def mean_cwnd(self) -> float:
        return self._hw.mean_cwnd()
