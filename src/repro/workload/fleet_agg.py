"""Constant-memory mergeable aggregation for the streaming fleet.

The paper's Figure 1 is a *population* claim over a production fleet.
Reproducing it at fleet scale (``repro fleet --hosts 1000000``) means
the parent can never hold per-host samples: every outcome is folded
into a :class:`FleetAggregate` — quantile sketches, category tallies,
and a 2-D density grid, all of them constant-size and exactly
mergeable — and then dropped.

Merge algebra: for any partition of the host population into shards
and any fold order,

    ``fold(all) == merge(fold(shard_0), ..., fold(shard_k))``

because every statistic inside is itself associative and
order-independent (bucket/cell/count addition; min/max).  That is the
property that makes a multi-machine backend a config change: each node
folds its shard, writes the aggregate as JSON, and ``repro fleet
merge`` combines them.

Checkpointing: :class:`FleetCheckpoint` snapshots every shard's
``(cursor, aggregate)`` pair atomically (write-temp + ``os.replace``),
so a SIGKILLed run resumes from the last folded host.  Because host
configs come from per-index RNG substreams
(:meth:`repro.workload.fleet.FleetSampler.draw_config` is a pure
function of ``(seed, index)``), a resumed run re-derives exactly the
hosts it never folded and the final aggregate is identical to an
uninterrupted run's.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.sketch import CategoryTally, Density2D, QuantileSketch

__all__ = [
    "DROP_THRESHOLD",
    "FleetAggregate",
    "FleetCheckpoint",
    "density_rank_correlation",
    "shard_bounds",
]

#: A host "drops" once its measured drop rate crosses this — the same
#: threshold the figure-1 shape checks have always used.
DROP_THRESHOLD = 1e-4

#: Utilization bands for the figure's conditional drop fractions.
HIGH_UTIL = 0.85
LOW_UTIL = 0.60
#: The paper's "low-utilization dropper" criterion (Fig. 1, left side).
LOW_UTIL_STRICT = 0.50

#: Metric keys sketched per stratum and per root cause.
SKETCHED = ("drop_rate", "link_utilization")


def shard_bounds(n_hosts: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal ``[start, stop)`` host ranges.

    Deterministic in ``(n_hosts, shards)`` — the population assignment
    must not depend on anything environmental.
    """
    if n_hosts < 0:
        raise ValueError(f"n_hosts must be >= 0, got {n_hosts}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, max(1, n_hosts))
    return [(i * n_hosts // shards, (i + 1) * n_hosts // shards)
            for i in range(shards)]


def density_rank_correlation(density: Density2D) -> float:
    """Spearman rank correlation computed from a 2-D density grid.

    Exact Spearman needs per-sample ranks, which a streaming fold
    cannot keep; but with samples grouped into ordered bins the
    tie-corrected midrank of every cell is a pure function of the
    cumulative cell counts — so this is *exactly* Spearman's rho of
    the binned population (ties broken by bin), computed in
    O(cells).
    """
    cells = density.cells()
    total = sum(count for _, count in cells)
    if total < 2:
        return 0.0

    def midranks(axis: int) -> Dict[int, float]:
        per_bin: Dict[int, int] = {}
        for key, count in cells:
            per_bin[key[axis]] = per_bin.get(key[axis], 0) + count
        ranks: Dict[int, float] = {}
        cumulative = 0
        for bin_key in sorted(per_bin):
            count = per_bin[bin_key]
            ranks[bin_key] = cumulative + (count + 1) / 2.0
            cumulative += count
        return ranks

    x_rank = midranks(0)
    y_rank = midranks(1)
    mean_rank = (total + 1) / 2.0
    cov = var_x = var_y = 0.0
    for (xi, yi), count in cells:
        dx = x_rank[xi] - mean_rank
        dy = y_rank[yi] - mean_rank
        cov += count * dx * dy
        var_x += count * dx * dx
        var_y += count * dy * dy
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


class FleetAggregate:
    """Mergeable constant-memory summary of a fleet population.

    Fold :class:`~repro.workload.fleet.FleetSample` instances with
    :meth:`add` (crashed hosts with :meth:`add_failed`); merge shard
    aggregates with :meth:`merge`.  Everything Figure 1 renders — the
    utilization × drop-rate scatter, the Spearman correlation, the
    conditional drop fractions, per-stratum and per-root-cause
    distributions — is answerable from this object alone.
    """

    def __init__(self, alpha: float = 0.01):
        self.alpha = alpha
        self.hosts = 0
        self.failed = 0
        self.droppers = 0
        #: droppers with utilization < 50% — the paper's headline
        #: "drops at low utilization" population.
        self.low_util_droppers = 0
        self.high_util_hosts = 0
        self.high_util_droppers = 0
        self.low_util_hosts = 0
        self.low_util_band_droppers = 0
        self.strata = CategoryTally()
        self.root_causes = CategoryTally()
        self.transports = CategoryTally()
        self.failure_kinds = CategoryTally()
        self.drop_sketch = QuantileSketch(alpha=alpha)
        self.util_sketch = QuantileSketch(alpha=alpha)
        #: stratum -> metric -> sketch (and the same per root cause).
        self.stratum_sketches: Dict[str, Dict[str, QuantileSketch]] = {}
        self.cause_sketches: Dict[str, Dict[str, QuantileSketch]] = {}
        self.density = Density2D()

    # -- folding ------------------------------------------------------------

    def _group(self, table: Dict[str, Dict[str, QuantileSketch]],
               label: str) -> Dict[str, QuantileSketch]:
        group = table.get(label)
        if group is None:
            group = {key: QuantileSketch(alpha=self.alpha)
                     for key in SKETCHED}
            table[label] = group
        return group

    def add(self, sample) -> "FleetAggregate":
        """Fold one host's :class:`FleetSample` into the aggregate."""
        utilization = float(sample.link_utilization)
        drop_rate = float(sample.drop_rate)
        self.hosts += 1
        dropper = drop_rate > DROP_THRESHOLD
        if dropper:
            self.droppers += 1
            if utilization < LOW_UTIL_STRICT:
                self.low_util_droppers += 1
        if utilization > HIGH_UTIL:
            self.high_util_hosts += 1
            if dropper:
                self.high_util_droppers += 1
        if utilization < LOW_UTIL:
            self.low_util_hosts += 1
            if dropper:
                self.low_util_band_droppers += 1
        stratum = getattr(sample, "stratum", "") or "unknown"
        self.strata.add(stratum)
        self.root_causes.add(sample.congestion_class)
        self.transports.add(sample.transport)
        self.drop_sketch.observe(drop_rate)
        self.util_sketch.observe(utilization)
        values = {"drop_rate": drop_rate,
                  "link_utilization": utilization}
        for key, value in values.items():
            self._group(self.stratum_sketches, stratum)[key].observe(
                value)
            self._group(self.cause_sketches,
                        sample.congestion_class)[key].observe(value)
        self.density.observe(utilization, drop_rate)
        return self

    def add_failed(self, failed) -> "FleetAggregate":
        """Account a host whose run crashed or timed out."""
        self.failed += 1
        self.failure_kinds.add(getattr(failed, "kind", "error"))
        return self

    # -- merge protocol -----------------------------------------------------

    def merge(self, other: "FleetAggregate") -> "FleetAggregate":
        if other.alpha != self.alpha:
            raise ValueError(
                "cannot merge fleet aggregates with different alpha: "
                f"{self.alpha} vs {other.alpha}")
        self.hosts += other.hosts
        self.failed += other.failed
        self.droppers += other.droppers
        self.low_util_droppers += other.low_util_droppers
        self.high_util_hosts += other.high_util_hosts
        self.high_util_droppers += other.high_util_droppers
        self.low_util_hosts += other.low_util_hosts
        self.low_util_band_droppers += other.low_util_band_droppers
        self.strata.merge(other.strata)
        self.root_causes.merge(other.root_causes)
        self.transports.merge(other.transports)
        self.failure_kinds.merge(other.failure_kinds)
        self.drop_sketch.merge(other.drop_sketch)
        self.util_sketch.merge(other.util_sketch)
        for table_mine, table_theirs in (
                (self.stratum_sketches, other.stratum_sketches),
                (self.cause_sketches, other.cause_sketches)):
            for label, group in table_theirs.items():
                mine = self._group(table_mine, label)
                for key in SKETCHED:
                    mine[key].merge(group[key])
        self.density.merge(other.density)
        return self

    # -- queries ------------------------------------------------------------

    @property
    def dropper_fraction(self) -> float:
        return self.droppers / self.hosts if self.hosts else 0.0

    @property
    def drop_fraction_high_util(self) -> float:
        if not self.high_util_hosts:
            return 0.0
        return self.high_util_droppers / self.high_util_hosts

    @property
    def drop_fraction_low_util(self) -> float:
        if not self.low_util_hosts:
            return 0.0
        return self.low_util_band_droppers / self.low_util_hosts

    def rank_correlation(self) -> float:
        """Spearman rho of (utilization, drop rate) over the binned
        population (see :func:`density_rank_correlation`)."""
        return density_rank_correlation(self.density)

    def scatter_points(self) -> List[Tuple[float, float]]:
        """Occupied density-cell midpoints — the renderable scatter."""
        return [(x, y) for x, y, _count in self.density.points()]

    def stratum_median(self, stratum: str, key: str) -> float:
        """p50 of ``key`` (one of :data:`SKETCHED`) within a stratum."""
        group = self.stratum_sketches.get(stratum)
        if group is None or group[key].count == 0:
            raise KeyError(
                f"no {key!r} samples for stratum {stratum!r}")
        return group[key].quantile(50)

    # -- serialization ------------------------------------------------------

    @staticmethod
    def _table_to_dict(table: Dict[str, Dict[str, QuantileSketch]]
                       ) -> Dict:
        return {label: {key: sketch.to_dict()
                        for key, sketch in sorted(group.items())}
                for label, group in sorted(table.items())}

    def to_dict(self) -> Dict:
        return {
            "v": 1,
            "alpha": self.alpha,
            "hosts": self.hosts,
            "failed": self.failed,
            "droppers": self.droppers,
            "low_util_droppers": self.low_util_droppers,
            "high_util_hosts": self.high_util_hosts,
            "high_util_droppers": self.high_util_droppers,
            "low_util_hosts": self.low_util_hosts,
            "low_util_band_droppers": self.low_util_band_droppers,
            "strata": self.strata.to_dict(),
            "root_causes": self.root_causes.to_dict(),
            "transports": self.transports.to_dict(),
            "failure_kinds": self.failure_kinds.to_dict(),
            "drop_sketch": self.drop_sketch.to_dict(),
            "util_sketch": self.util_sketch.to_dict(),
            "stratum_sketches": self._table_to_dict(
                self.stratum_sketches),
            "cause_sketches": self._table_to_dict(self.cause_sketches),
            "density": self.density.to_dict(),
        }

    @classmethod
    def from_dict(cls, state: Dict) -> "FleetAggregate":
        aggregate = cls(alpha=state["alpha"])
        for key in ("hosts", "failed", "droppers", "low_util_droppers",
                    "high_util_hosts", "high_util_droppers",
                    "low_util_hosts", "low_util_band_droppers"):
            setattr(aggregate, key, int(state[key]))
        aggregate.strata = CategoryTally.from_dict(state["strata"])
        aggregate.root_causes = CategoryTally.from_dict(
            state["root_causes"])
        aggregate.transports = CategoryTally.from_dict(
            state["transports"])
        aggregate.failure_kinds = CategoryTally.from_dict(
            state["failure_kinds"])
        aggregate.drop_sketch = QuantileSketch.from_dict(
            state["drop_sketch"])
        aggregate.util_sketch = QuantileSketch.from_dict(
            state["util_sketch"])
        for attr in ("stratum_sketches", "cause_sketches"):
            table = getattr(aggregate, attr)
            for label, group in state[attr].items():
                table[label] = {
                    key: QuantileSketch.from_dict(sketch_state)
                    for key, sketch_state in group.items()}
        aggregate.density = Density2D.from_dict(state["density"])
        return aggregate

    def __eq__(self, other) -> bool:
        """Order-independent equality: integer state must match
        exactly; sketches compare through their own merge-order-
        tolerant ``__eq__``."""
        if not isinstance(other, FleetAggregate):
            return NotImplemented
        counters = ("alpha", "hosts", "failed", "droppers",
                    "low_util_droppers", "high_util_hosts",
                    "high_util_droppers", "low_util_hosts",
                    "low_util_band_droppers")
        if any(getattr(self, key) != getattr(other, key)
               for key in counters):
            return False
        if (self.strata != other.strata
                or self.root_causes != other.root_causes
                or self.transports != other.transports
                or self.failure_kinds != other.failure_kinds
                or self.drop_sketch != other.drop_sketch
                or self.util_sketch != other.util_sketch
                or self.density != other.density):
            return False
        for table_mine, table_theirs in (
                (self.stratum_sketches, other.stratum_sketches),
                (self.cause_sketches, other.cause_sketches)):
            if set(table_mine) != set(table_theirs):
                return False
            for label, group in table_mine.items():
                if any(group[key] != table_theirs[label][key]
                       for key in SKETCHED):
                    return False
        return True

    def __repr__(self) -> str:
        return (f"FleetAggregate(hosts={self.hosts}, "
                f"droppers={self.droppers}, failed={self.failed})")

    # -- rendering ----------------------------------------------------------

    def format_lines(self) -> List[str]:
        """Human-readable population summary (the CLI footer)."""
        lines = [
            f"  hosts: {self.hosts} folded"
            + (f", {self.failed} failed" if self.failed else ""),
            f"  droppers: {self.droppers} "
            f"({self.dropper_fraction * 100:.1f}%), "
            f"{self.low_util_droppers} at <50% utilization",
            f"  rank correlation (util, drops): "
            f"{self.rank_correlation():.3f}",
        ]
        if self.hosts:
            lines.append(
                f"  link util: p50 {self.util_sketch.quantile(50):.2f} "
                f" p90 {self.util_sketch.quantile(90):.2f}")
        for label, count in self.strata.most_common():
            group = self.stratum_sketches[label]
            lines.append(
                f"  stratum {label:<13} {count:>7} hosts  "
                f"util p50 {group['link_utilization'].quantile(50):.2f}"
                f"  drop p50 {group['drop_rate'].quantile(50):.2g}")
        if len(self.root_causes):
            parts = ", ".join(f"{label} {count}" for label, count
                              in self.root_causes.most_common())
            lines.append(f"  root causes: {parts}")
        return lines


class FleetCheckpoint:
    """Atomic on-disk snapshot of a sharded fleet run in progress.

    One JSON document per run: immutable ``meta`` (the population
    identity — seed, host count, shard count, fidelity, windows) and a
    per-shard ``{cursor, done, aggregate}`` record.  ``cursor`` is the
    next *global* host index the shard has not folded; because
    outcomes stream in index order, the folded set is always the
    contiguous prefix ``[start, cursor)`` and resume is exact.

    Writes go through a temp file + ``os.replace`` in the checkpoint's
    directory, so a kill at any instant leaves either the previous
    complete snapshot or the new one — never a torn file.
    """

    VERSION = 1

    def __init__(self, path: str | Path, meta: Dict):
        self.path = Path(path)
        self.meta = dict(meta)
        #: shard index (as int) -> {"cursor": int, "done": bool,
        #: "aggregate": FleetAggregate}
        self.shards: Dict[int, Dict] = {}

    @classmethod
    def fresh(cls, path: str | Path, meta: Dict,
              bounds: List[Tuple[int, int]],
              alpha: float = 0.01) -> "FleetCheckpoint":
        checkpoint = cls(path, meta)
        for shard, (start, _stop) in enumerate(bounds):
            checkpoint.shards[shard] = {
                "cursor": start, "done": False,
                "aggregate": FleetAggregate(alpha=alpha)}
        return checkpoint

    @classmethod
    def load(cls, path: str | Path) -> "FleetCheckpoint":
        path = Path(path)
        state = json.loads(path.read_text())
        if state.get("v") != cls.VERSION:
            raise ValueError(
                f"{path}: unsupported checkpoint version "
                f"{state.get('v')!r} (expected {cls.VERSION})")
        checkpoint = cls(path, state["meta"])
        for shard, record in state["shards"].items():
            checkpoint.shards[int(shard)] = {
                "cursor": int(record["cursor"]),
                "done": bool(record["done"]),
                "aggregate": FleetAggregate.from_dict(
                    record["aggregate"])}
        return checkpoint

    def check_meta(self, expected: Dict) -> None:
        """Refuse to resume into a different population."""
        for key, value in expected.items():
            if self.meta.get(key) != value:
                raise ValueError(
                    f"{self.path}: checkpoint meta mismatch on "
                    f"{key!r}: checkpoint has {self.meta.get(key)!r}, "
                    f"this invocation wants {value!r} — refusing to "
                    f"resume a different population")

    def save(self) -> None:
        payload = {
            "v": self.VERSION,
            "meta": self.meta,
            "shards": {str(shard): {
                "cursor": record["cursor"],
                "done": record["done"],
                "aggregate": record["aggregate"].to_dict(),
            } for shard, record in sorted(self.shards.items())},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent),
            prefix=self.path.name + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def merged(self) -> FleetAggregate:
        """Merge every shard's aggregate (associative, shard order)."""
        alpha = None
        merged: Optional[FleetAggregate] = None
        for shard in sorted(self.shards):
            aggregate = self.shards[shard]["aggregate"]
            if merged is None:
                alpha = aggregate.alpha
                merged = FleetAggregate(alpha=alpha)
            merged.merge(aggregate)
        return merged if merged is not None else FleetAggregate()

    def remove(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


#: Signature of the per-fold progress callback: (hosts_done, total).
ProgressFn = Callable[[int, int], None]
