"""Isolation study: small-RPC victims sharing a congested host.

Paper §1: "host congestion ... can lead to hundreds of microseconds of
tail latency, significant throughput drop, and violation of isolation
properties due to packet drops" — all applications share one NIC
buffer, so an application that did nothing wrong pays for its
neighbours' congestion.

This study runs the standard incast with one *victim* connection per
receiver thread issuing single-MTU (4 KB) RPCs, while every other
connection issues the usual 16 KB elephant reads.  Comparing victim
tail latency between an uncongested and a congested host quantifies the
isolation violation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import ExperimentConfig
from repro.core.metrics import Summary, summarize
from repro.sim.engine import Simulator
from repro.workload.remote_read import RemoteReadWorkload

__all__ = ["IsolationResult", "run_isolation_study"]

#: The victim is the connection to sender 0 on each thread.
_VICTIM_SENDER = 0


@dataclass(frozen=True)
class IsolationResult:
    """Latency summaries (µs) for victims and elephants."""

    victim: Summary
    elephant: Summary
    drop_rate: float
    app_throughput_gbps: float

    def victim_penalty_p99(self, baseline: "IsolationResult") -> float:
        """p99 blow-up factor of victims vs an uncongested baseline."""
        if baseline.victim.p99 <= 0:
            raise ValueError("baseline has no victim latency samples")
        return self.victim.p99 / baseline.victim.p99


class _IsolationWorkload(RemoteReadWorkload):
    """RemoteReadWorkload with one small-RPC victim per thread."""

    def __init__(self, sim: Simulator, config: ExperimentConfig):
        super().__init__(sim, config)
        victims = self.victim_flow_ids()
        # Victim reads are a single MTU.
        for flow_id in victims:
            self.receiver.per_flow_packets[flow_id] = 1

    def victim_flow_ids(self) -> List[int]:
        return [conn.flow_id for conn in self.connections
                if conn.sender_id == _VICTIM_SENDER]

    def elephant_flow_ids(self) -> List[int]:
        return [conn.flow_id for conn in self.connections
                if conn.sender_id != _VICTIM_SENDER]


def _weighted_summary_us(pairs) -> Summary:
    """A :class:`Summary` (µs) from weighted latency pairs (seconds)."""
    from repro.sim.fluid import weighted_percentile

    if not pairs:
        return summarize([])
    total = sum(w for _, w in pairs)
    mean = sum(v * w for v, w in pairs) / total if total > 0 else 0.0
    return Summary(
        count=int(round(total)),
        mean=mean * 1e6,
        p50=weighted_percentile(pairs, 0.50) * 1e6,
        p90=weighted_percentile(pairs, 0.90) * 1e6,
        p99=weighted_percentile(pairs, 0.99) * 1e6,
        maximum=max(v for v, _ in pairs) * 1e6,
    )


def _run_isolation_fluid(config: ExperimentConfig) -> IsolationResult:
    """Fluid twin of the isolation study: one solver run; victim
    (single-MTU) and elephant (full-read) latency distributions are
    synthesized from the same step trace with their respective
    read sizes, so both classes see the identical congestion signal —
    exactly the shared-NIC-buffer coupling the study measures."""
    from repro.sim.fluid import FluidSolver

    solver = FluidSolver(config)
    solver.run_until(config.sim.warmup)
    solver.reset_stats()
    solver.run_until(config.sim.end_time)
    trace = solver.run.step_trace
    victim_pairs, _ = solver.synthesize_message_pairs(trace, 1.0)
    elephant_pairs, _ = solver.synthesize_message_pairs(
        trace, solver.packets_per_read)
    snap = solver.snapshot()
    return IsolationResult(
        victim=_weighted_summary_us(victim_pairs),
        elephant=_weighted_summary_us(elephant_pairs),
        drop_rate=snap["drop_rate"],
        app_throughput_gbps=snap["app_throughput_gbps"],
    )


def run_isolation_study(config: ExperimentConfig) -> IsolationResult:
    """Run one isolation experiment and split latencies by class."""
    if config.workload.senders < 2:
        raise ValueError("isolation study needs at least 2 senders")
    if config.fidelity == "fluid":
        return _run_isolation_fluid(config)
    sim = Simulator()
    workload = _IsolationWorkload(sim, config)
    sim.run(until=config.sim.warmup)
    workload.reset_stats()  # component recursion covers host + transport
    sim.run(until=config.sim.end_time)
    receiver = workload.receiver
    to_us = lambda values: [v * 1e6 for v in values]  # noqa: E731
    return IsolationResult(
        victim=summarize(to_us(receiver.message_latencies_for(
            workload.victim_flow_ids()))),
        elephant=summarize(to_us(receiver.message_latencies_for(
            workload.elephant_flow_ids()))),
        drop_rate=workload.host.drop_rate(),
        app_throughput_gbps=workload.host.app_throughput_bps() / 1e9,
    )


def congested_vs_uncongested(
    base: ExperimentConfig,
) -> Dict[str, IsolationResult]:
    """Convenience: run the study at a genuinely uncongested operating
    point (light open-loop load, no antagonists — every queue near
    empty) and at the congested one (``base`` as given)."""
    uncongested = dataclasses.replace(
        base,
        host=dataclasses.replace(base.host, antagonist_cores=0),
        workload=dataclasses.replace(base.workload, offered_load=0.25),
    )
    return {
        "uncongested": run_isolation_study(uncongested),
        "congested": run_isolation_study(base),
    }
