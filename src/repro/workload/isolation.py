"""Isolation study: small-RPC victims sharing a congested host.

Paper §1: "host congestion ... can lead to hundreds of microseconds of
tail latency, significant throughput drop, and violation of isolation
properties due to packet drops" — all applications share one NIC
buffer, so an application that did nothing wrong pays for its
neighbours' congestion.

This study runs the standard incast with one *victim* connection per
receiver thread issuing single-MTU (4 KB) RPCs, while every other
connection issues the usual 16 KB elephant reads.  Comparing victim
tail latency between an uncongested and a congested host quantifies the
isolation violation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import ExperimentConfig
from repro.core.metrics import Summary, summarize
from repro.sim.engine import Simulator
from repro.workload.remote_read import RemoteReadWorkload

__all__ = ["IsolationResult", "run_isolation_study"]

#: The victim is the connection to sender 0 on each thread.
_VICTIM_SENDER = 0


@dataclass(frozen=True)
class IsolationResult:
    """Latency summaries (µs) for victims and elephants."""

    victim: Summary
    elephant: Summary
    drop_rate: float
    app_throughput_gbps: float

    def victim_penalty_p99(self, baseline: "IsolationResult") -> float:
        """p99 blow-up factor of victims vs an uncongested baseline."""
        if baseline.victim.p99 <= 0:
            raise ValueError("baseline has no victim latency samples")
        return self.victim.p99 / baseline.victim.p99


class _IsolationWorkload(RemoteReadWorkload):
    """RemoteReadWorkload with one small-RPC victim per thread."""

    def __init__(self, sim: Simulator, config: ExperimentConfig):
        super().__init__(sim, config)
        victims = self.victim_flow_ids()
        # Victim reads are a single MTU.
        for flow_id in victims:
            self.receiver.per_flow_packets[flow_id] = 1

    def victim_flow_ids(self) -> List[int]:
        return [conn.flow_id for conn in self.connections
                if conn.sender_id == _VICTIM_SENDER]

    def elephant_flow_ids(self) -> List[int]:
        return [conn.flow_id for conn in self.connections
                if conn.sender_id != _VICTIM_SENDER]


def run_isolation_study(config: ExperimentConfig) -> IsolationResult:
    """Run one isolation experiment and split latencies by class."""
    if config.workload.senders < 2:
        raise ValueError("isolation study needs at least 2 senders")
    sim = Simulator()
    workload = _IsolationWorkload(sim, config)
    sim.run(until=config.sim.warmup)
    workload.reset_stats()  # component recursion covers host + transport
    sim.run(until=config.sim.end_time)
    receiver = workload.receiver
    to_us = lambda values: [v * 1e6 for v in values]  # noqa: E731
    return IsolationResult(
        victim=summarize(to_us(receiver.message_latencies_for(
            workload.victim_flow_ids()))),
        elephant=summarize(to_us(receiver.message_latencies_for(
            workload.elephant_flow_ids()))),
        drop_rate=workload.host.drop_rate(),
        app_throughput_gbps=workload.host.app_throughput_bps() / 1e9,
    )


def congested_vs_uncongested(
    base: ExperimentConfig,
) -> Dict[str, IsolationResult]:
    """Convenience: run the study at a genuinely uncongested operating
    point (light open-loop load, no antagonists — every queue near
    empty) and at the congested one (``base`` as given)."""
    uncongested = dataclasses.replace(
        base,
        host=dataclasses.replace(base.host, antagonist_cores=0),
        workload=dataclasses.replace(base.workload, offered_load=0.25),
    )
    return {
        "uncongested": run_isolation_study(uncongested),
        "congested": run_isolation_study(base),
    }
