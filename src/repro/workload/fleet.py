"""Fleet sampler — the population behind the paper's Figure 1.

Figure 1 is a 24-hour scatter of (access-link utilization, host drop
rate) over a production cluster running both kernel TCP and SNAP/Swift.
We reproduce the population by sampling heterogeneous host
configurations and workloads — receiver core counts, IOMMU on/off,
hugepage policy, Rx region sizes, memory antagonists, sender fan-in,
transport — and running a short simulation per host.

The two qualitative features of Fig. 1 both emerge:

- drop rate correlates positively with link utilization (IOMMU-driven
  congestion needs high arrival rates to bite);
- a population of hosts drops packets at *low* utilization — the
  memory-antagonized hosts, where the NIC-to-memory path collapses
  below the access-link rate.

Scale: host #``i``'s configuration is a *pure function* of
``(seed, i)`` — each index keys its own RNG substream
(:func:`substream_seed`), so the population is byte-identical however
the fleet is split across shards, workers, or machines, and any host
can be re-derived without drawing its predecessors.  That is what lets
:meth:`FleetSampler.run_aggregate` stream a million hosts through a
bounded window (:func:`repro.core.parallel.run_stream`), fold each
outcome into a constant-memory
:class:`~repro.workload.fleet_agg.FleetAggregate`, checkpoint shard
cursors atomically, and resume a SIGKILLed run to the identical
answer.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    IommuConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.sim.fluid import LOSS_BASED_TRANSPORTS
from repro.workload.fleet_agg import (
    FleetAggregate,
    FleetCheckpoint,
    shard_bounds,
)

__all__ = [
    "FleetSample",
    "FleetSampler",
    "cohort_key",
    "group_cohorts",
    "substream_seed",
]

#: (hosts_done, hosts_total) — invoked after every folded host.
ProgressFn = Callable[[int, int], None]
#: Lifecycle-event sink, as in :mod:`repro.core.parallel`.
EventFn = Callable[[Dict], None]


def cohort_key(config: ExperimentConfig) -> tuple:
    """The structural code-path key of a drawn host config.

    Two configs with equal keys follow the same branches through
    ``FluidSolver.step`` — loss- vs delay-based congestion control,
    open- vs closed-loop workload, IOMMU on/off — and differ only in
    continuous parameters, so they can share one
    :class:`~repro.sim.fluid_batch.BatchFluidSolver` batch.  A pure
    function of the config: identical configs always share a cohort.
    """
    return (config.transport in LOSS_BASED_TRANSPORTS,
            config.workload.offered_load is None,
            config.host.iommu.enabled)


def group_cohorts(indexed_configs) -> Dict[tuple, List[int]]:
    """Partition ``(index, config)`` pairs into structural cohorts.

    Returns ``{cohort_key: [index, ...]}`` with indices in encounter
    order; every input index lands in exactly one cohort.
    """
    groups: Dict[tuple, List[int]] = {}
    for index, config in indexed_configs:
        groups.setdefault(cohort_key(config), []).append(index)
    return groups


@dataclass(frozen=True)
class _FailureStub:
    """Minimal stand-in for a :class:`~repro.core.results.FailedRun`
    when a batched worker reports a failure by kind only (all
    :meth:`FleetAggregate.add_failed` reads is ``.kind``)."""

    kind: str


def _solve_batch_range(seed: int, warmup: float, duration: float,
                       fidelity: str, start: int, stop: int,
                       alpha: float, want_hosts: bool):
    """Top-level (picklable) batched-fleet pool task: rebuild the
    sampler from its defining tuple and solve one host range.  Workers
    receive *index ranges*, never configs — the population is
    re-derived in-worker from the ``(seed, index)`` substreams, so it
    is byte-identical however ranges land on processes, and the
    per-task IPC payload is five scalars instead of ``batch_size``
    config trees."""
    sampler = FleetSampler(seed=seed, warmup=warmup, duration=duration,
                           fidelity=fidelity)
    return sampler._solve_range(start, stop, alpha, want_hosts)


def substream_seed(seed: int, index: int) -> int:
    """Derive host ``index``'s private RNG seed from the fleet seed.

    SHA-256 over the ``(seed, index)`` pair, folded to 64 bits: the
    substreams are statistically independent, stable across platforms
    and Python versions (no reliance on ``hash()``), and computable
    for any index in isolation — the property every sharding and
    resume guarantee in this module rests on.
    """
    digest = hashlib.sha256(f"fleet:{seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class FleetSample:
    """One host's outcome in the fleet scatter."""

    host_index: int
    link_utilization: float
    drop_rate: float
    transport: str
    cores: int
    antagonist_cores: int
    iommu: bool
    hugepages: bool
    #: Sampling stratum the host was drawn from (see
    #: :attr:`FleetSampler.STRATA`); "" on legacy-constructed samples.
    stratum: str = ""

    @property
    def congestion_class(self) -> str:
        """Rough root-cause label for analysis."""
        if self.antagonist_cores >= 8:
            return "memory-bus"
        if self.iommu and self.cores > 8:
            return "iommu"
        return "cpu-or-none"


class FleetSampler:
    """Draws host configurations and runs one short experiment each."""

    def __init__(
        self,
        seed: int = 7,
        warmup: float = 4e-3,
        duration: float = 8e-3,
        fidelity: str = "packet",
    ):
        self.seed = seed
        self.warmup = warmup
        self.duration = duration
        #: Engine for every drawn host.  Stamped on the config *after*
        #: all RNG draws, so packet and fluid fleets share a
        #: byte-identical host population.
        self.fidelity = fidelity

    #: Host classes and their fleet shares.  Stratified sampling: a
    #: production fleet is a mix of host populations, and stratifying
    #: guarantees each population is represented even in small samples.
    STRATA = (
        ("lean", 0.40),          # lightly loaded, healthy hosts
        ("incast-heavy", 0.20),  # saturated receivers (right of Fig. 1)
        ("antagonized", 0.25),   # memory-hungry co-tenants
        ("legacy-4k", 0.15),     # hugepages disabled (old configs)
    )

    def _draw_class(self, index: int) -> str:
        # Deterministic interleaving by cumulative share.
        position = (index % 20) / 20 + 1 / 40
        cumulative = 0.0
        for name, share in self.STRATA:
            cumulative += share
            if position < cumulative:
                return name
        return self.STRATA[-1][0]

    def draw_config(self, index: int) -> ExperimentConfig:
        """Host ``index``'s configuration — a pure function of
        ``(self.seed, index)``, independent of any draw order."""
        rng = random.Random(substream_seed(self.seed, index))
        host_class = self._draw_class(index)
        iommu_on = rng.random() < 0.85
        hugepages = True
        antagonist = 0
        if host_class == "lean":
            cores = rng.choice((2, 4, 6, 8, 10, 12))
            offered = rng.choice((0.25, 0.4, 0.55, 0.7))
            antagonist = rng.choice((0, 0, 0, 4))
        elif host_class == "incast-heavy":
            cores = rng.choice((8, 10, 12, 14, 16))
            offered = rng.choice((None, None, 0.95))
        elif host_class == "antagonized":
            cores = rng.choice((8, 10, 12, 16))
            antagonist = rng.choice((8, 12, 15, 15))
            offered = rng.choice((None, 0.55, 0.7, 0.85))
        else:  # legacy-4k
            hugepages = False
            cores = rng.choice((8, 12, 16))
            antagonist = rng.choice((0, 8, 12, 15))
            offered = rng.choice((None, 0.55, 0.7))
        region_mb = rng.choice((4, 8, 12, 16))
        senders = rng.choice((10, 20, 40))
        # The paper's cluster "runs both the Linux kernel and SNAP
        # network stacks, with TCP and Swift" — an even mix.
        transport = rng.choice(("swift", "cubic"))
        return ExperimentConfig(
            host=HostConfig(
                cpu=CpuConfig(cores=cores),
                iommu=IommuConfig(enabled=iommu_on),
                hugepages=hugepages,
                rx_region_bytes=region_mb * 2**20,
                antagonist_cores=antagonist,
            ),
            workload=WorkloadConfig(senders=senders,
                                    offered_load=offered),
            transport=transport,
            fidelity=self.fidelity,
            sim=SimConfig(
                warmup=self.warmup,
                duration=self.duration,
                seed=rng.randrange(1, 2**31),
            ),
        )

    def iter_configs(self, start: int, stop: int
                     ) -> Iterator[ExperimentConfig]:
        """Lazily draw configs for hosts ``[start, stop)``."""
        for index in range(start, stop):
            yield self.draw_config(index)

    def _sample_from(self, index: int, config: ExperimentConfig,
                     result) -> FleetSample:
        return FleetSample(
            host_index=index,
            link_utilization=result.metrics["link_utilization"],
            drop_rate=result.metrics["drop_rate"],
            transport=config.transport,
            cores=config.host.cpu.cores,
            antagonist_cores=config.host.antagonist_cores,
            iommu=config.host.iommu.enabled,
            hugepages=config.host.hugepages,
            stratum=self._draw_class(index),
        )

    def stream(
        self,
        stop: int,
        *,
        start: int = 0,
        workers: Union[int, str, None] = None,
        events: Optional[EventFn] = None,
        timeout: Optional[float] = None,
        failures: str = "raise",
        announce: bool = True,
    ) -> Iterator:
        """Stream host outcomes for indices ``[start, stop)`` in order.

        Yields a :class:`FleetSample` per healthy host; under
        ``failures="keep"`` a crashed or timed-out host yields its
        :class:`~repro.core.results.FailedRun` instead (inspect
        ``.kind``).  Parent memory is bounded by the in-flight window
        of :func:`repro.core.parallel.run_stream`, never by
        ``stop - start``.
        """
        from repro.core.parallel import run_stream

        if announce and events is not None:
            events({"ev": "plan", "total": stop - start,
                    "pending": stop - start, "cached": 0,
                    "ts": time.time()})
        outcomes = run_stream(
            self.iter_configs(start, stop), workers=workers,
            events=events, failures=failures, timeout=timeout,
            start_index=start)
        for outcome in outcomes:
            result = outcome.result
            if getattr(result, "failed", False):
                yield result
                continue
            # draw_config is pure in (seed, index): re-deriving the
            # config here is cheaper than holding it across the pool.
            yield self._sample_from(outcome.index,
                                    self.draw_config(outcome.index),
                                    result)

    def run(self, n_hosts: int,
            progress: Optional[ProgressFn] = None,
            workers: Union[int, str, None] = None,
            events: Optional[EventFn] = None) -> List[FleetSample]:
        """Simulate ``n_hosts`` and return their scatter points.

        Thin list-materializing wrapper over :meth:`stream` — same
        population, same order, same failure semantics (a crashed host
        raises).  Prefer :meth:`run_aggregate` beyond a few thousand
        hosts.
        """
        samples: List[FleetSample] = []
        for sample in self.stream(n_hosts, workers=workers,
                                  events=events, failures="raise"):
            samples.append(sample)
            if progress is not None:
                progress(len(samples), n_hosts)
        return samples

    def resolve_backend(self, backend: str = "auto") -> str:
        """Normalize a fleet execution ``backend`` argument.

        ``"auto"`` picks ``"batched"`` (the cohort-vectorized
        :class:`~repro.sim.fluid_batch.BatchFluidSolver` path) whenever
        the fidelity is fluid, and ``"scalar"`` (one pool task per
        host) otherwise; the explicit names force a path.  Batching is
        a fluid-only concept — the packet engine has no array form —
        so ``"batched"`` with a packet fleet is an error.

        ``"auto"`` also falls back to ``"scalar"`` when numpy is
        absent (it is a declared dependency, but the scalar engines
        run without it); asking for ``"batched"`` explicitly in that
        situation raises ``ImportError`` instead of silently
        downgrading.
        """
        if backend == "auto":
            if self.fidelity != "fluid":
                return "scalar"
            try:
                import numpy  # noqa: F401
            except ImportError:
                return "scalar"
            return "batched"
        if backend not in ("batched", "scalar"):
            raise ValueError(
                f"backend must be 'auto', 'batched', or 'scalar', "
                f"got {backend!r}")
        if backend == "batched" and self.fidelity != "fluid":
            raise ValueError(
                "batched fleet execution requires fidelity='fluid' "
                f"(sampler has {self.fidelity!r})")
        return backend

    def _solve_range(self, start: int, stop: int, alpha: float,
                     want_hosts: bool):
        """Batch-solve hosts ``[start, stop)`` into a partial aggregate.

        The body of one batched-fleet task: draw the range's configs,
        partition them into structural cohorts (:func:`group_cohorts`),
        step each cohort through one
        :class:`~repro.sim.fluid_batch.BatchFluidSolver`, and fold the
        per-host outcomes — in index order — into a fresh
        :class:`FleetAggregate`.  A cohort that fails to batch-solve
        falls back to per-host scalar runs, and a host that still
        fails is folded via ``add_failed`` — one bad host cannot sink
        the range, exactly like the scalar streaming path.

        Returns ``(aggregate_state_dict, host_rows)`` — plain
        picklable data.  ``host_rows`` is ``None`` unless
        ``want_hosts``; otherwise one ``(index, kind, payload)`` tuple
        per host for the parent's telemetry fan-out.
        """
        from repro.sim.fluid_batch import BatchFluidSolver

        end_time = self.warmup + self.duration
        configs = {i: self.draw_config(i) for i in range(start, stop)}
        outcomes: Dict[int, tuple] = {}

        def scalar_fallback(index: int) -> tuple:
            from repro.core.experiment import run_experiment
            try:
                result = run_experiment(configs[index])
                return ("ok", result.metrics["link_utilization"],
                        result.metrics["drop_rate"],
                        result.metrics.get("app_throughput_gbps", 0.0))
            except Exception as exc:
                return ("failed", "error", repr(exc))

        for indices in group_cohorts(configs.items()).values():
            try:
                solver = BatchFluidSolver([configs[i] for i in indices])
                solver.run_until(self.warmup)
                solver.reset_stats()
                solver.run_until(end_time)
                metrics = solver.fleet_metrics()
            except Exception:
                for index in indices:
                    outcomes[index] = scalar_fallback(index)
                continue
            utils = metrics["link_utilization"]
            drops = metrics["drop_rate"]
            apps = metrics["app_throughput_gbps"]
            for lane, index in enumerate(indices):
                outcomes[index] = ("ok", float(utils[lane]),
                                   float(drops[lane]),
                                   float(apps[lane]))

        aggregate = FleetAggregate(alpha=alpha)
        host_rows: Optional[list] = [] if want_hosts else None
        for index in range(start, stop):
            outcome = outcomes[index]
            if outcome[0] == "ok":
                _, utilization, drop_rate, app_gbps = outcome
                config = configs[index]
                aggregate.add(FleetSample(
                    host_index=index,
                    link_utilization=utilization,
                    drop_rate=drop_rate,
                    transport=config.transport,
                    cores=config.host.cpu.cores,
                    antagonist_cores=config.host.antagonist_cores,
                    iommu=config.host.iommu.enabled,
                    hugepages=config.host.hugepages,
                    stratum=self._draw_class(index),
                ))
                if host_rows is not None:
                    host_rows.append((index, "ok", {
                        "link_utilization": utilization,
                        "drop_rate": drop_rate,
                        "app_throughput_gbps": app_gbps}))
            else:
                _, kind, error = outcome
                aggregate.add_failed(_FailureStub(kind))
                if host_rows is not None:
                    host_rows.append((index, kind,
                                      {"error": error}))
        return aggregate.to_dict(), host_rows

    def run_aggregate(
        self,
        n_hosts: int,
        *,
        shards: int = 1,
        shard_index: Optional[int] = None,
        workers: Union[int, str, None] = None,
        events: Optional[EventFn] = None,
        progress: Optional[ProgressFn] = None,
        checkpoint: Union[str, None] = None,
        resume: bool = False,
        checkpoint_every: int = 2000,
        timeout: Optional[float] = None,
        alpha: float = 0.01,
        stop_after_shard: Optional[int] = None,
        backend: str = "auto",
        batch_size: int = 4096,
    ) -> FleetAggregate:
        """Stream the fleet shard-by-shard into a merged aggregate.

        The constant-memory fleet driver: hosts ``[0, n_hosts)`` are
        split into contiguous shards
        (:func:`~repro.workload.fleet_agg.shard_bounds`), each shard
        streams through a bounded worker window, and every outcome is
        folded into that shard's
        :class:`~repro.workload.fleet_agg.FleetAggregate` and dropped.
        Failures are *kept* (folded via ``add_failed``) — one bad host
        cannot sink a million-host run.

        With ``checkpoint`` set, progress is snapshotted atomically
        every ``checkpoint_every`` folded hosts and at every shard
        boundary; ``resume=True`` reloads the snapshot (refusing a
        mismatched population) and continues from each shard's cursor
        — the final aggregate is identical to an uninterrupted run's,
        because folds happen in index order and every fold/merge in
        the aggregate is associative.  ``shard_index`` restricts the
        run to one shard (the multi-machine path: each node runs its
        shard against its own checkpoint, then ``repro fleet merge``
        combines them).  ``stop_after_shard=k`` exits after shard
        ``k`` completes — a deterministic stand-in for a mid-run kill
        in tests.

        ``backend`` selects the execution engine
        (:meth:`resolve_backend`): under ``"batched"`` — the default
        whenever fidelity is fluid — each shard is cut into
        ``batch_size``-host ranges, every range is one pool task
        (:func:`repro.core.parallel.map_stream`) that re-derives its
        configs in-worker and vectorizes them per structural cohort
        through :class:`~repro.sim.fluid_batch.BatchFluidSolver`, and
        the returned partial aggregates merge in index order.  The
        per-host outcomes are bit-identical to the scalar backend's
        (see ``repro.sim.fluid_batch``), so both backends produce
        equal aggregates for the same population; checkpoint/resume
        semantics carry over, with the cursor advancing a range at a
        time.  ``timeout`` applies per host under the scalar backend
        only (a fluid batch is deterministic compute with no per-host
        waiting to bound).
        """
        batched = self.resolve_backend(backend) == "batched"
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        bounds = shard_bounds(n_hosts, shards)
        meta = {"seed": self.seed, "n_hosts": n_hosts,
                "shards": len(bounds), "fidelity": self.fidelity,
                "warmup": self.warmup, "duration": self.duration,
                "alpha": alpha}

        ckpt: Optional[FleetCheckpoint] = None
        if checkpoint is not None:
            from pathlib import Path
            if resume and Path(checkpoint).exists():
                ckpt = FleetCheckpoint.load(checkpoint)
                ckpt.check_meta(meta)
            else:
                ckpt = FleetCheckpoint.fresh(checkpoint, meta, bounds,
                                             alpha=alpha)
                ckpt.save()
        else:
            ckpt = FleetCheckpoint.fresh("", meta, bounds, alpha=alpha)

        if shard_index is not None:
            if not 0 <= shard_index < len(bounds):
                raise ValueError(
                    f"shard_index {shard_index} out of range for "
                    f"{len(bounds)} shards")
            todo = [shard_index]
        else:
            todo = list(range(len(bounds)))

        done_hosts = sum(record["cursor"] - bounds[shard][0]
                         for shard, record in ckpt.shards.items())
        if events is not None:
            events({"ev": "plan", "total": n_hosts,
                    "pending": n_hosts - done_hosts,
                    "cached": 0, "ts": time.time()})

        persist = checkpoint is not None
        for shard in todo:
            record = ckpt.shards[shard]
            start, stop = bounds[shard]
            if record["done"]:
                continue
            cursor = record["cursor"]
            if events is not None:
                events({"ev": "shard", "shard": shard, "start": start,
                        "stop": stop, "cursor": cursor,
                        "ts": time.time()})
            aggregate = record["aggregate"]
            since_save = 0
            if batched:
                from repro.core.parallel import map_stream
                ranges = [(lo, min(lo + batch_size, stop))
                          for lo in range(cursor, stop, batch_size)]
                tasks = ((self.seed, self.warmup, self.duration,
                          self.fidelity, lo, hi, alpha,
                          events is not None)
                         for lo, hi in ranges)
                for _pos, (state, host_rows) in map_stream(
                        _solve_batch_range, tasks, workers=workers):
                    partial = FleetAggregate.from_dict(state)
                    aggregate.merge(partial)
                    folded = partial.hosts + partial.failed
                    cursor += folded
                    done_hosts += folded
                    since_save += folded
                    record["cursor"] = cursor
                    if events is not None and host_rows:
                        stamp = time.time()
                        for index, kind, payload in host_rows:
                            if kind == "ok":
                                events({"ev": "finished",
                                        "index": index,
                                        "metrics": payload,
                                        "ts": stamp})
                            else:
                                events({"ev": "failed", "index": index,
                                        "failure_kind": kind,
                                        "ts": stamp, **payload})
                    if progress is not None:
                        progress(done_hosts, n_hosts)
                    if persist and since_save >= checkpoint_every:
                        ckpt.save()
                        since_save = 0
            else:
                for item in self.stream(stop, start=cursor,
                                        workers=workers, events=events,
                                        timeout=timeout,
                                        failures="keep",
                                        announce=False):
                    if isinstance(item, FleetSample):
                        aggregate.add(item)
                    else:
                        aggregate.add_failed(item)
                    cursor += 1
                    done_hosts += 1
                    since_save += 1
                    record["cursor"] = cursor
                    if progress is not None:
                        progress(done_hosts, n_hosts)
                    if persist and since_save >= checkpoint_every:
                        ckpt.save()
                        since_save = 0
            record["done"] = True
            record["cursor"] = stop
            if persist:
                ckpt.save()
            if events is not None:
                events({"ev": "shard", "shard": shard, "start": start,
                        "stop": stop, "cursor": stop, "done": True,
                        "ts": time.time()})
            if stop_after_shard is not None and shard >= stop_after_shard:
                break

        return ckpt.merged()
