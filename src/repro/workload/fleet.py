"""Fleet sampler — the population behind the paper's Figure 1.

Figure 1 is a 24-hour scatter of (access-link utilization, host drop
rate) over a production cluster running both kernel TCP and SNAP/Swift.
We reproduce the population by sampling heterogeneous host
configurations and workloads — receiver core counts, IOMMU on/off,
hugepage policy, Rx region sizes, memory antagonists, sender fan-in,
transport — and running a short simulation per host.

The two qualitative features of Fig. 1 both emerge:

- drop rate correlates positively with link utilization (IOMMU-driven
  congestion needs high arrival rates to bite);
- a population of hosts drops packets at *low* utilization — the
  memory-antagonized hosts, where the NIC-to-memory path collapses
  below the access-link rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    IommuConfig,
    SimConfig,
    WorkloadConfig,
)

__all__ = ["FleetSample", "FleetSampler"]


@dataclass(frozen=True)
class FleetSample:
    """One host's outcome in the fleet scatter."""

    host_index: int
    link_utilization: float
    drop_rate: float
    transport: str
    cores: int
    antagonist_cores: int
    iommu: bool
    hugepages: bool

    @property
    def congestion_class(self) -> str:
        """Rough root-cause label for analysis."""
        if self.antagonist_cores >= 8:
            return "memory-bus"
        if self.iommu and self.cores > 8:
            return "iommu"
        return "cpu-or-none"


class FleetSampler:
    """Draws host configurations and runs one short experiment each."""

    def __init__(
        self,
        seed: int = 7,
        warmup: float = 4e-3,
        duration: float = 8e-3,
        fidelity: str = "packet",
    ):
        self.rng = random.Random(seed)
        self.warmup = warmup
        self.duration = duration
        #: Engine for every drawn host.  Stamped on the config *after*
        #: all RNG draws, so packet and fluid fleets share a
        #: byte-identical host population.
        self.fidelity = fidelity

    #: Host classes and their fleet shares.  Stratified sampling: a
    #: production fleet is a mix of host populations, and stratifying
    #: guarantees each population is represented even in small samples.
    STRATA = (
        ("lean", 0.40),          # lightly loaded, healthy hosts
        ("incast-heavy", 0.20),  # saturated receivers (right of Fig. 1)
        ("antagonized", 0.25),   # memory-hungry co-tenants
        ("legacy-4k", 0.15),     # hugepages disabled (old configs)
    )

    def _draw_class(self, index: int) -> str:
        # Deterministic interleaving by cumulative share.
        position = (index % 20) / 20 + 1 / 40
        cumulative = 0.0
        for name, share in self.STRATA:
            cumulative += share
            if position < cumulative:
                return name
        return self.STRATA[-1][0]

    def draw_config(self, index: int) -> ExperimentConfig:
        rng = self.rng
        host_class = self._draw_class(index)
        iommu_on = rng.random() < 0.85
        hugepages = True
        antagonist = 0
        if host_class == "lean":
            cores = rng.choice((2, 4, 6, 8, 10, 12))
            offered = rng.choice((0.25, 0.4, 0.55, 0.7))
            antagonist = rng.choice((0, 0, 0, 4))
        elif host_class == "incast-heavy":
            cores = rng.choice((8, 10, 12, 14, 16))
            offered = rng.choice((None, None, 0.95))
        elif host_class == "antagonized":
            cores = rng.choice((8, 10, 12, 16))
            antagonist = rng.choice((8, 12, 15, 15))
            offered = rng.choice((None, 0.55, 0.7, 0.85))
        else:  # legacy-4k
            hugepages = False
            cores = rng.choice((8, 12, 16))
            antagonist = rng.choice((0, 8, 12, 15))
            offered = rng.choice((None, 0.55, 0.7))
        region_mb = rng.choice((4, 8, 12, 16))
        senders = rng.choice((10, 20, 40))
        # The paper's cluster "runs both the Linux kernel and SNAP
        # network stacks, with TCP and Swift" — an even mix.
        transport = rng.choice(("swift", "cubic"))
        return ExperimentConfig(
            host=HostConfig(
                cpu=CpuConfig(cores=cores),
                iommu=IommuConfig(enabled=iommu_on),
                hugepages=hugepages,
                rx_region_bytes=region_mb * 2**20,
                antagonist_cores=antagonist,
            ),
            workload=WorkloadConfig(senders=senders,
                                    offered_load=offered),
            transport=transport,
            fidelity=self.fidelity,
            sim=SimConfig(
                warmup=self.warmup,
                duration=self.duration,
                seed=rng.randrange(1, 2**31),
            ),
        )

    def run(self, n_hosts: int,
            progress: Optional[callable] = None,
            workers: int | str | None = None,
            events: Optional[callable] = None) -> List[FleetSample]:
        """Simulate ``n_hosts`` and return their scatter points.

        ``workers`` fans the per-host simulations out to worker
        processes.  The configs are drawn serially from the sampler's
        RNG *before* any run starts, so the population — and therefore
        every sample — is identical whatever the worker count.
        ``events`` streams lifecycle telemetry, as in
        :func:`repro.core.parallel.run_many`.
        """
        from repro.core.parallel import run_many

        configs = [self.draw_config(index) for index in range(n_hosts)]
        outcomes = run_many(
            configs, workers=workers, events=events,
            progress=(None if progress is None
                      else lambda index, _result: progress(index + 1,
                                                           n_hosts)))
        samples: List[FleetSample] = []
        for index, (config, outcome) in enumerate(zip(configs, outcomes)):
            result = outcome.result
            samples.append(
                FleetSample(
                    host_index=index,
                    link_utilization=result.metrics["link_utilization"],
                    drop_rate=result.metrics["drop_rate"],
                    transport=config.transport,
                    cores=config.host.cpu.cores,
                    antagonist_cores=config.host.antagonist_cores,
                    iommu=config.host.iommu.enabled,
                    hugepages=config.host.hugepages,
                )
            )
        return samples
