"""A host's day: time-varying load, binned measurements (Fig. 1's
footnote: "Data collected over a 24-hour period, and binned at a
10-minute granularity").

One receiver host is simulated through a schedule of bins; in each bin
the open-loop offered load and the memory-antagonist intensity change
(diurnal pattern plus noise), and the host's (link utilization, drop
rate) is measured per bin — yielding Fig. 1-style scatter points from
a *single* host over time, complementary to the cross-sectional fleet
sampler.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.config import ExperimentConfig
from repro.sim.engine import Simulator
from repro.workload.remote_read import RemoteReadWorkload

__all__ = ["DayBin", "diurnal_schedule", "simulate_day"]


@dataclass(frozen=True)
class DayBin:
    """One measurement bin: inputs and measured outputs."""

    index: int
    offered_load: float
    antagonist_cores: int
    link_utilization: float
    drop_rate: float
    app_throughput_gbps: float


def diurnal_schedule(
    n_bins: int,
    seed: int = 0,
    base_load: float = 0.6,
    swing: float = 0.55,
    antagonist_peak: int = 15,
) -> List[tuple]:
    """(offered_load, antagonist_cores) per bin: a sinusoidal daily
    cycle with noise, plus bursts of memory-antagonist activity."""
    if n_bins < 1:
        raise ValueError("need at least one bin")
    if not 0 < base_load <= 1:
        raise ValueError("base_load must be in (0, 1]")
    rng = random.Random(seed)
    schedule = []
    for i in range(n_bins):
        phase = 2 * math.pi * i / n_bins
        load = base_load + swing / 2 * math.sin(phase)
        load += rng.gauss(0, 0.07)
        load = min(max(load, 0.05), 1.0)
        # Batch jobs land in bursts, mostly off-peak.
        if rng.random() < 0.25:
            antagonists = rng.choice(
                (antagonist_peak, antagonist_peak, 8, 12))
        else:
            antagonists = rng.choice((0, 0, 0, 4))
        schedule.append((load, antagonists))
    return schedule


def _simulate_day_fluid(
    config: ExperimentConfig,
    schedule: Sequence[tuple],
    bin_duration: float,
    warmup_per_bin: float,
) -> List[DayBin]:
    """Fluid twin of the packet day loop: one solver carried across
    bins (CC and queue state persist, as in the packet run), per-bin
    load/antagonist changes applied through the solver's setters."""
    from repro.sim.fluid import FluidSolver

    solver = FluidSolver(config)
    bins: List[DayBin] = []
    for index, (load, antagonists) in enumerate(schedule):
        solver.set_offered_load(load)
        solver.set_antagonist_cores(antagonists)
        solver.run_until(solver.now + warmup_per_bin)
        solver.reset_stats()
        solver.run_until(solver.now + bin_duration)
        snap = solver.snapshot()
        bins.append(DayBin(
            index=index,
            offered_load=load,
            antagonist_cores=antagonists,
            link_utilization=snap["wire_arrival_gbps"] * 1e9
            / config.link.rate_bps,
            drop_rate=snap["drop_rate"],
            app_throughput_gbps=snap["app_throughput_gbps"],
        ))
    return bins


def simulate_day(
    config: ExperimentConfig,
    schedule: Sequence[tuple],
    bin_duration: float = 5e-3,
    warmup_per_bin: float = 1e-3,
) -> List[DayBin]:
    """Run one host through ``schedule``; one :class:`DayBin` each.

    ``config.workload.offered_load`` must be set (open loop); the
    schedule overrides it per bin.
    """
    if config.workload.offered_load is None:
        raise ValueError("simulate_day requires an open-loop workload "
                         "(set workload.offered_load)")
    if config.fidelity == "fluid":
        return _simulate_day_fluid(config, schedule, bin_duration,
                                   warmup_per_bin)
    sim = Simulator()
    workload = RemoteReadWorkload(sim, config)
    host = workload.host
    bins: List[DayBin] = []
    for index, (load, antagonists) in enumerate(schedule):
        workload.set_offered_load(load)
        host.antagonist.set_cores(antagonists)
        sim.run(until=sim.now + warmup_per_bin)
        host.reset_stats()
        sim.run(until=sim.now + bin_duration)
        bins.append(DayBin(
            index=index,
            offered_load=load,
            antagonist_cores=antagonists,
            link_utilization=host.wire_arrival_bps()
            / config.link.rate_bps,
            drop_rate=host.drop_rate(),
            app_throughput_gbps=host.app_throughput_bps() / 1e9,
        ))
    return bins
