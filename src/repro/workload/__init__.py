"""Workload generators: the paper's remote-read incast, the Fig. 1
fleet sampler, the one-host-day time series, and the isolation study."""

from repro.workload.day import DayBin, diurnal_schedule, simulate_day
from repro.workload.fleet import FleetSample, FleetSampler
from repro.workload.isolation import IsolationResult, run_isolation_study
from repro.workload.remote_read import RemoteReadWorkload

__all__ = [
    "DayBin",
    "FleetSample",
    "FleetSampler",
    "IsolationResult",
    "RemoteReadWorkload",
    "diurnal_schedule",
    "run_isolation_study",
    "simulate_day",
]
