"""Reproducible, named random-number streams.

Every stochastic component draws from its own stream, derived from one
root seed and the component's name.  Adding a new component therefore
never perturbs the draws of existing ones, which keeps calibrated
experiments stable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses BLAKE2b so the mapping is stable across Python versions and
    processes (unlike ``hash()``).
    """
    digest = hashlib.blake2b(
        name.encode("utf-8"),
        digest_size=8,
        key=root_seed.to_bytes(8, "little", signed=False),
    ).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """A factory of named :class:`random.Random` streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("iotlb")
    >>> b = rngs.stream("iotlb")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.seed, name))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(derive_seed(self.seed, "registry:" + name))

    def names(self) -> list[str]:
        return sorted(self._streams)
