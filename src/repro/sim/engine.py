"""Event loop, events, and generator processes.

Time is a ``float`` in **seconds**. Events scheduled at equal times fire
in insertion order (a monotonically increasing sequence number breaks
ties), which keeps runs fully deterministic for a given seed.

Hot-path layout (see DESIGN.md "Kernel performance"):

- Heap entries are mutable lists ``[time, seq, fn, args]`` so a timer
  can be cancelled in place (``entry[2] = entry[3] = None``) without
  touching the heap structure.
- The dispatch loop is specialized per ``(hook, until)`` case, hoists
  ``heappop`` into a local, unpacks entries once, and defers the
  ``events_dispatched`` store to a local counter written back when the
  loop exits.
- Entries whose ``fn`` is ``None`` are engine housekeeping: cancelled
  timers (``args is None``) are skipped, timer-wheel service visits
  (``args`` is the bucket key) cascade one wheel bucket into the heap.
  Neither counts toward ``events_dispatched`` — the counter only ever
  reflects user callbacks actually invoked, so cancelled timers never
  surface as no-op dispatches.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.wheel import TimerHandle, TimerWheel

__all__ = ["Event", "Interrupt", "Process", "Simulator", "SimulationError",
           "TimerHandle"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the engine (e.g. scheduling in the past)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` triggers it
    exactly once, after which its callbacks run within the current
    simulation step.

    Events are recyclable: :meth:`recycle` parks a spent event on a
    free list and :meth:`Simulator.event` reuses it, so steady-state
    event churn allocates nothing.  Recycling is strictly opt-in — only
    the owner of an event may recycle it, and only once nothing else
    holds a reference.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_ok", "triggered")

    #: Free list shared by all simulators (events carry no cross-run
    #: state once recycled).
    _free: list = []

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self.triggered = False

    @classmethod
    def acquire(cls, sim: "Simulator") -> "Event":
        """A fresh pending event, reusing a recycled one if available."""
        free = cls._free
        if free:
            ev = free.pop()
            ev.sim = sim
            ev._value = None
            ev._ok = None
            ev.triggered = False
            return ev
        return cls(sim)

    def recycle(self) -> None:
        """Return this event to the free list for reuse.

        The caller asserts ownership: no other component may still hold
        a reference or expect a callback.  Pending callbacks make the
        event unreclaimable and raise.
        """
        if self._callbacks:
            raise SimulationError(
                "cannot recycle an event with pending callbacks")
        self.sim = None  # break the reference cycle while parked
        Event._free.append(self)

    @property
    def value(self) -> Any:
        return self._value

    @property
    def ok(self) -> Optional[bool]:
        """True/False once triggered, None while pending."""
        return self._ok

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.triggered:
            # Fire immediately but asynchronously, preserving run-to-
            # completion semantics of the current step.
            self.sim.call(0.0, fn, self)
        else:
            self._callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> bool:
        """Detach a pending callback; True if it was registered.

        Lets race constructs (:meth:`Simulator.any_of`) drop their
        closures from losing events instead of leaking them for the
        event's lifetime.
        """
        try:
            self._callbacks.remove(fn)
            return True
        except ValueError:
            return False

    def succeed(self, value: Any = None) -> "Event":
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise TypeError("Event.fail() requires an exception instance")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Process:
    """A generator running inside the simulation.

    The generator may ``yield``:

    - a ``float``/``int`` — sleep for that many seconds;
    - an :class:`Event` — resume when it triggers (the ``yield``
      expression evaluates to the event's value, or raises if it failed);
    - another :class:`Process` — wait for it to finish.

    A process is itself an :class:`Event` facade: waiting on it resumes
    when the generator returns (value = the ``StopIteration`` value).
    """

    __slots__ = ("sim", "name", "_gen", "_done", "_waiting_on", "_interrupted")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc"):
        self.sim = sim
        self.name = name
        self._gen = gen
        self._done = Event(sim)
        self._waiting_on: Optional[Event] = None
        self._interrupted = False
        sim.call(0.0, self._step, None, None)

    @property
    def done(self) -> Event:
        return self._done

    @property
    def is_alive(self) -> bool:
        return not self._done.triggered

    def add_callback(self, fn: Callable[[Event], None]) -> None:
        self._done.add_callback(fn)

    @property
    def triggered(self) -> bool:
        return self._done.triggered

    @property
    def value(self) -> Any:
        return self._done.value

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next step."""
        if not self.is_alive:
            return
        self._interrupted = True
        self.sim.call(0.0, self._step, None, Interrupt(cause))

    def _on_event(self, event: Event) -> None:
        if event.ok:
            self._step(event.value, None)
        else:
            self._step(None, event.value)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done.triggered:
            return
        if isinstance(exc, Interrupt):
            self._interrupted = False
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._done.succeed(stop.value)
            return
        except BaseException as err:  # propagate process crashes loudly
            self._done.fail(err)
            raise
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            if target < 0:
                self._step(None, SimulationError("negative delay"))
                return
            self.sim.call(float(target), self._step, None, None)
        elif isinstance(target, Process):
            target._done.add_callback(self._on_event)
            self._waiting_on = target._done
        elif isinstance(target, Event):
            target.add_callback(self._on_event)
            self._waiting_on = target
        else:
            self._step(
                None,
                SimulationError(f"process {self.name!r} yielded {target!r}"),
            )


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.call(1e-6, my_callback, arg)        # callback API (hot path)
        handle = sim.schedule_timer(1e-3, rto_fired)   # cancellable
        sim.process(my_generator())              # process API
        sim.run(until=0.01)
    """

    __slots__ = ("now", "_heap", "_seq", "_stopped", "_n_dispatched",
                 "_dispatch_hook", "_wheel")

    def __init__(self) -> None:
        #: Current simulation time in seconds.  A plain attribute — the
        #: datapath reads it hundreds of thousands of times per run and
        #: a property call per read is measurable; treat it as
        #: read-only outside the engine.
        self.now = 0.0
        self._heap: list = []
        self._seq = 0
        self._stopped = False
        self._n_dispatched = 0
        self._dispatch_hook: Optional[Callable] = None
        #: Created lazily on the first schedule_timer() call; plain
        #: call()/at() traffic never pays for it.
        self._wheel: Optional[TimerWheel] = None

    @property
    def events_dispatched(self) -> int:
        """Total number of callbacks dispatched so far.

        Counts user callbacks only: cancelled timers and timer-wheel
        service visits are skipped without incrementing this counter.
        """
        return self._n_dispatched

    def at(self, time: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} < now {self.now}"
            )
        seq = self._seq = self._seq + 1
        heappush(self._heap, [time, seq, fn, args])

    def call(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        seq = self._seq = self._seq + 1
        heappush(self._heap, [self.now + delay, seq, fn, args])

    def schedule_timer(self, delay: float, fn: Callable,
                       *args: Any) -> TimerHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds, cancellably.

        Same dispatch semantics as :meth:`call` (identical time and
        tie-break ordering), but the entry is filed through the
        hierarchical timer wheel and the returned
        :class:`~repro.sim.wheel.TimerHandle` cancels it in O(1).
        Cancelled timers are never dispatched — not even as no-ops —
        and do not count toward :attr:`events_dispatched`.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        seq = self._seq = self._seq + 1
        entry = [self.now + delay, seq, fn, args]
        wheel = self._wheel
        if wheel is None:
            wheel = self._wheel = TimerWheel(self._emit_entry,
                                             self._arm_service)
        wheel.schedule(entry, self.now)
        return TimerHandle(entry)

    def _emit_entry(self, entry: list) -> None:
        """Timer-wheel callback: a timer entry migrates into the heap
        with its original (time, seq) key, so order is unchanged."""
        heappush(self._heap, entry)

    def _arm_service(self, time: float, key: Any) -> None:
        """Timer-wheel callback: request a bucket-service visit.

        seq ``-1`` sorts the visit ahead of every user event at the
        same timestamp, so a bucket is always drained before any
        same-time user event can dispatch.
        """
        heappush(self._heap, [time, -1, None, key])

    def event(self) -> Event:
        return Event.acquire(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds after ``delay`` seconds."""
        ev = Event.acquire(self)
        self.call(delay, ev.succeed, value)
        return ev

    def process(self, gen: Generator, name: str = "proc") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when the first of ``events`` does.

        The winner detaches the race's callback from every still-pending
        loser, so long-lived events that keep losing races do not
        accumulate dead closures.
        """
        out = Event(self)
        entrants = list(events)

        def fire(ev: Event) -> None:
            if not out.triggered:
                out.succeed(ev.value)
                for other in entrants:
                    if other is not ev and not other.triggered:
                        other.remove_callback(fire)
                entrants.clear()

        for ev in entrants:
            ev.add_callback(fire)
        return out

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when all of ``events`` have."""
        out = Event(self)
        pending = list(events)
        remaining = len(pending)
        if remaining == 0:
            out.succeed([])
            return out
        values: list[Any] = [None] * remaining

        def make(i: int) -> Callable[[Event], None]:
            def fire(ev: Event) -> None:
                nonlocal remaining
                values[i] = ev.value
                remaining -= 1
                if remaining == 0 and not out.triggered:
                    out.succeed(values)

            return fire

        for i, ev in enumerate(pending):
            ev.add_callback(make(i))
        return out

    def stop(self) -> None:
        """Stop :meth:`run` after the current callback returns."""
        self._stopped = True

    def set_dispatch_hook(
        self, hook: Optional[Callable[[float, Callable, tuple], None]],
    ) -> None:
        """Route every dispatch through ``hook(time, fn, args)``.

        The hook is responsible for calling ``fn(*args)`` itself (so a
        profiler can time it).  ``None`` restores direct dispatch.  The
        loop in :meth:`run` reads the hook once per ``run`` call, so a
        change takes effect at the next ``run``; with no hook the loop
        pays nothing for the feature.
        """
        self._dispatch_hook = hook

    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events until the heap drains or ``until`` is reached.

        Returns the simulation time at which the run stopped. When
        ``until`` is given, time always advances to exactly ``until``
        (even if the heap drained earlier), so repeated ``run`` calls
        compose predictably.
        """
        self._stopped = False
        heap = self._heap
        hook = self._dispatch_hook
        pop = heappop
        n = 0
        try:
            if hook is not None:
                n = self._run_hooked(hook, until)
            elif until is None:
                while heap:
                    t, _seq, fn, args = pop(heap)
                    if fn is None:
                        if args is not None:
                            self._wheel.service(args, t)
                        continue
                    self.now = t
                    n += 1
                    fn(*args)
                    if self._stopped:
                        break
            else:
                while heap:
                    entry = pop(heap)
                    t, _seq, fn, args = entry
                    if t > until:
                        heappush(heap, entry)
                        break
                    if fn is None:
                        if args is not None:
                            self._wheel.service(args, t)
                        continue
                    self.now = t
                    n += 1
                    fn(*args)
                    if self._stopped:
                        break
        finally:
            self._n_dispatched += n
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now

    def _run_hooked(self, hook: Callable, until: Optional[float]) -> int:
        """Slow-path loop used while a dispatch hook (profiler) is set."""
        heap = self._heap
        n = 0
        try:
            while heap:
                entry = heappop(heap)
                t, _seq, fn, args = entry
                if until is not None and t > until:
                    heappush(heap, entry)
                    break
                if fn is None:
                    if args is not None:
                        self._wheel.service(args, t)
                    continue
                self.now = t
                n += 1
                hook(t, fn, args)
                if self._stopped:
                    break
        finally:
            # run() adds the returned n once more only on a clean exit,
            # so account here and return 0 to keep the total exact.
            self._n_dispatched += n
        return 0

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None if none is pending.

        Skims engine housekeeping off the top of the heap: cancelled
        timers are discarded, and wheel buckets whose service time has
        reached the top are expanded (early expansion is safe — entries
        keep their original keys) until a real event surfaces.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2] is None:
                heappop(heap)
                if entry[3] is not None:
                    self._wheel.service(entry[3], entry[0])
                continue
            return entry[0]
        return None
