"""Event loop, events, and generator processes.

Time is a ``float`` in **seconds**. Events scheduled at equal times fire
in insertion order (a monotonically increasing sequence number breaks
ties), which keeps runs fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = ["Event", "Interrupt", "Process", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the engine (e.g. scheduling in the past)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` triggers it
    exactly once, after which its callbacks run within the current
    simulation step.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_ok", "triggered")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self.triggered = False

    @property
    def value(self) -> Any:
        return self._value

    @property
    def ok(self) -> Optional[bool]:
        """True/False once triggered, None while pending."""
        return self._ok

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.triggered:
            # Fire immediately but asynchronously, preserving run-to-
            # completion semantics of the current step.
            self.sim.call(0.0, fn, self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise TypeError("Event.fail() requires an exception instance")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Process:
    """A generator running inside the simulation.

    The generator may ``yield``:

    - a ``float``/``int`` — sleep for that many seconds;
    - an :class:`Event` — resume when it triggers (the ``yield``
      expression evaluates to the event's value, or raises if it failed);
    - another :class:`Process` — wait for it to finish.

    A process is itself an :class:`Event` facade: waiting on it resumes
    when the generator returns (value = the ``StopIteration`` value).
    """

    __slots__ = ("sim", "name", "_gen", "_done", "_waiting_on", "_interrupted")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc"):
        self.sim = sim
        self.name = name
        self._gen = gen
        self._done = Event(sim)
        self._waiting_on: Optional[Event] = None
        self._interrupted = False
        sim.call(0.0, self._step, None, None)

    @property
    def done(self) -> Event:
        return self._done

    @property
    def is_alive(self) -> bool:
        return not self._done.triggered

    def add_callback(self, fn: Callable[[Event], None]) -> None:
        self._done.add_callback(fn)

    @property
    def triggered(self) -> bool:
        return self._done.triggered

    @property
    def value(self) -> Any:
        return self._done.value

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next step."""
        if not self.is_alive:
            return
        self._interrupted = True
        self.sim.call(0.0, self._step, None, Interrupt(cause))

    def _on_event(self, event: Event) -> None:
        if event.ok:
            self._step(event.value, None)
        else:
            self._step(None, event.value)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done.triggered:
            return
        if isinstance(exc, Interrupt):
            self._interrupted = False
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._done.succeed(stop.value)
            return
        except BaseException as err:  # propagate process crashes loudly
            self._done.fail(err)
            raise
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            if target < 0:
                self._step(None, SimulationError("negative delay"))
                return
            self.sim.call(float(target), self._step, None, None)
        elif isinstance(target, Process):
            target._done.add_callback(self._on_event)
            self._waiting_on = target._done
        elif isinstance(target, Event):
            target.add_callback(self._on_event)
            self._waiting_on = target
        else:
            self._step(
                None,
                SimulationError(f"process {self.name!r} yielded {target!r}"),
            )


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.call(1e-6, my_callback, arg)        # callback API (hot path)
        sim.process(my_generator())              # process API
        sim.run(until=0.01)
    """

    __slots__ = ("_now", "_heap", "_seq", "_stopped", "_n_dispatched",
                 "_dispatch_hook")

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list = []
        self._seq = 0
        self._stopped = False
        self._n_dispatched = 0
        self._dispatch_hook: Optional[Callable] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total number of callbacks dispatched so far."""
        return self._n_dispatched

    def at(self, time: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now {self._now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    def call(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds after ``delay`` seconds."""
        ev = Event(self)
        self.call(delay, ev.succeed, value)
        return ev

    def process(self, gen: Generator, name: str = "proc") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when the first of ``events`` does."""
        out = Event(self)

        def fire(ev: Event) -> None:
            if not out.triggered:
                out.succeed(ev.value)

        for ev in events:
            ev.add_callback(fire)
        return out

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when all of ``events`` have."""
        out = Event(self)
        pending = list(events)
        remaining = len(pending)
        if remaining == 0:
            out.succeed([])
            return out
        values: list[Any] = [None] * remaining

        def make(i: int) -> Callable[[Event], None]:
            def fire(ev: Event) -> None:
                nonlocal remaining
                values[i] = ev.value
                remaining -= 1
                if remaining == 0 and not out.triggered:
                    out.succeed(values)

            return fire

        for i, ev in enumerate(pending):
            ev.add_callback(make(i))
        return out

    def stop(self) -> None:
        """Stop :meth:`run` after the current callback returns."""
        self._stopped = True

    def set_dispatch_hook(
        self, hook: Optional[Callable[[float, Callable, tuple], None]],
    ) -> None:
        """Route every dispatch through ``hook(time, fn, args)``.

        The hook is responsible for calling ``fn(*args)`` itself (so a
        profiler can time it).  ``None`` restores direct dispatch.  The
        loop in :meth:`run` reads the hook once per ``run`` call, so a
        change takes effect at the next ``run``; with no hook the loop
        pays a single ``is None`` branch per event.
        """
        self._dispatch_hook = hook

    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events until the heap drains or ``until`` is reached.

        Returns the simulation time at which the run stopped. When
        ``until`` is given, time always advances to exactly ``until``
        (even if the heap drained earlier), so repeated ``run`` calls
        compose predictably.
        """
        self._stopped = False
        heap = self._heap
        hook = self._dispatch_hook
        while heap and not self._stopped:
            time, _seq, fn, args = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            self._now = time
            self._n_dispatched += 1
            if hook is None:
                fn(*args)
            else:
                hook(time, fn, args)
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None
