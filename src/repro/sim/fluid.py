"""Flow-level fluid engine: the repo's second simulation fidelity.

Where the packet kernel dispatches one event per packet, this solver
steps *rates* over RTT-scale intervals (Zhao et al.'s "Scalable Tail
Latency Estimation" two-tier pattern): an aggregate congestion window
and two queue fluid levels evolve under closed-form host bounds.  The
host pipeline has two stages, mirroring where congestion actually sits
in the packet engine:

- **NIC stage** — the bounded NIC buffer drained over PCIe at the
  Little's-law rate set by per-DMA latency (fixed cost, serialization,
  memory write, IOTLB walks from the working-set miss model).  Overflow
  here is packet drop, and the buffer bounds the delay Swift can ever
  observe — the paper's blind spot emerges from exactly this cap.
- **CPU stage** — receiver processing at the per-core rate (slowed by
  memory-bus contention).  Its backlog lives in host memory, so it
  drops nothing and its delay is fully visible to congestion control.

Everything is derived from the same frozen config tree and calibration
constants as the packet path, so a config means the same operating
point at either fidelity; ``tests/test_fluid_xval.py`` and the
``fluid-xval`` CI job hold the two engines to agreement on knees and
winners.

Layering: this module lives in the simulation kernel (layer 0).  It may
import only its ``repro.sim`` neighbours and the pinned kernel modules
(``repro.core.config`` / ``calibration`` / ``metrics``) — never host,
transport, or workload (enforced by ``scripts/check_layering.py``).
The handful of host-layer constants it needs (page sizes, the
load-latency knee, the NIC's per-packet control writes) are mirrored
here as local copies and asserted equal to their host-layer originals
in ``tests/test_fluid_engine.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import ExperimentConfig
from repro.net.routing import create_policy

__all__ = [
    "FabricProfile",
    "FluidRun",
    "FluidSolver",
    "fluid_fabric_profile",
    "fluid_working_set",
    "message_latency_summary",
    "predicted_misses_per_packet",
    "registered_iommu_entries",
    "weighted_percentile",
]

# -- host-layer constants mirrored into the kernel (see module docstring)
#: 4 KB / 2 MB page sizes (repro.host.addressing).
PAGE_4K = 4096
PAGE_2M = 2 * 2**20
#: Load-latency curve shape (repro.host.memory).
QUEUE_KNEE = 0.55
QUEUE_GAMMA = 3.0
#: Descriptor/completion writes the NIC issues per packet
#: (repro.host.nic).
NIC_CONTROL_WRITE_BYTES = 96
#: Hot ring pages per thread in the active working set
#: (repro.core.model.iotlb_working_set).
HOT_RING_PAGES = 4
#: Non-payload page touches per packet: conn×2, rx ring×2, tx ring×3.
CONTROL_ACCESSES_PER_PACKET = 7
#: Fraction of the ideal Little's-law rate the DMA pipeline sustains.
#: Credit-return gaps and bursty walk stalls keep the packet engine's
#: achieved service a consistent ~6% short of ``C / E[T]`` across the
#: figure-3/5 operating points; calibrated once against those runs.
DMA_PIPELINE_EFFICIENCY = 0.94
#: Transports whose fluid congestion response is loss-based (drop
#: events, not delay, trigger multiplicative decrease).  DCTCP's ECN
#: marks live at the *fabric* switch, so host congestion reaches it
#: only through drops — same aggregate response as Cubic here.
LOSS_BASED_TRANSPORTS = ("cubic", "dctcp")
#: Aggregate loss-based response: classic 1 packet/RTT/flow additive
#: increase, Cubic's 0.7 window-reduction factor on a loss round.
LOSS_CC_AI = 1.0
LOSS_CC_BETA = 0.7


#: Width of the convex region of the load-latency curve.
_KNEE_SPAN = 1.0 - QUEUE_KNEE


def _cube(x: float) -> float:
    """``x ** QUEUE_GAMMA`` spelled as multiplications.  ``pow`` routes
    through libm and numpy's ``power`` through its own kernel, and the
    two differ in the last ulp for the same input; plain multiplication
    is a single IEEE operation, so the scalar solver and the lane-wise
    batched solver (``repro.sim.fluid_batch``) produce bit-identical
    queue delays from it."""
    return x * x * x


# ``_cube`` hardcodes the exponent; keep it honest against the mirrored
# curve-shape constant.
assert QUEUE_GAMMA == 3.0


def _queue_delay(rho: float, max_queue_delay: float) -> float:
    """The memory bus load-latency curve (repro.host.memory.
    queue_delay_for): flat below the knee, convex rise to the cap."""
    if rho <= QUEUE_KNEE:
        return 0.0
    x = min((rho - QUEUE_KNEE) / _KNEE_SPAN, 1.0)
    return max_queue_delay * _cube(x)


def fluid_working_set(config: ExperimentConfig) -> Tuple[int, int]:
    """(active IOMMU pages, page accesses per packet) — the working-set
    model of ``repro.core.model.iotlb_working_set``, recomputed here
    from the raw config so the kernel layer stays closed."""
    host = config.host
    data_page = PAGE_2M if host.hugepages else PAGE_4K
    data_pages = -(-host.rx_region_bytes // data_page)
    per_thread = (data_pages + host.nic.conn_state_pages
                  + host.nic.ack_staging_pages + HOT_RING_PAGES)
    payload_pages = 1 if host.hugepages else 2
    accesses = payload_pages + CONTROL_ACCESSES_PER_PACKET
    return per_thread * host.cpu.cores, accesses


#: Memo for :func:`predicted_misses_per_packet`, keyed on the config
#: values the model actually reads.  Fleet populations draw from small
#: discrete parameter sets, so a million hosts hit a few dozen distinct
#: keys — and the 60-iteration bisection runs once per key, not per
#: host.  Bounded: evicted wholesale if it ever grows past 4096 keys.
_MISSES_MEMO: Dict[Tuple, float] = {}


def predicted_misses_per_packet(config: ExperimentConfig) -> float:
    """IOTLB misses per received packet, via the Che approximation.

    The access stream has two populations with very different reuse:
    payload pages, drawn uniformly from the large Rx data pool, and the
    per-thread control pages (rings, connection state) every packet
    touches.  A single uniform ``1 - K/W`` LRU ratio ignores that skew
    and overestimates misses severalfold; the Che characteristic-time
    model — solve ``Σ_i N_i (1 - e^{-λ_i T}) = K`` for ``T``, then miss
    probability per access to population ``i`` is ``e^{-λ_i T}`` —
    tracks the packet engine's measured IOTLB across the figure-3/4/5
    ladders.  Zero with the IOMMU off or when everything fits.
    """
    host = config.host
    if not host.iommu.enabled:
        return 0.0
    cores = host.cpu.cores
    data_page = PAGE_2M if host.hugepages else PAGE_4K
    n_data = -(-host.rx_region_bytes // data_page) * cores
    n_hot = (host.nic.conn_state_pages + host.nic.ack_staging_pages
             + HOT_RING_PAGES) * cores
    capacity = host.iommu.iotlb_entries
    if n_data + n_hot <= capacity:
        return 0.0
    key = (n_data, n_hot, capacity, host.hugepages)
    cached = _MISSES_MEMO.get(key)
    if cached is not None:
        return cached
    a_data = 1 if host.hugepages else 2
    a_hot = CONTROL_ACCESSES_PER_PACKET
    lam_data = a_data / n_data
    lam_hot = a_hot / n_hot

    def occupied(t: float) -> float:
        return (n_data * -math.expm1(-lam_data * t)
                + n_hot * -math.expm1(-lam_hot * t))

    lo, hi = 0.0, 1.0
    while occupied(hi) < capacity:
        hi *= 2.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if occupied(mid) < capacity:
            lo = mid
        else:
            hi = mid
    t_char = (lo + hi) / 2.0
    misses = (a_data * math.exp(-lam_data * t_char)
              + a_hot * math.exp(-lam_hot * t_char))
    if len(_MISSES_MEMO) >= 4096:
        _MISSES_MEMO.clear()
    _MISSES_MEMO[key] = misses
    return misses


def registered_iommu_entries(config: ExperimentConfig) -> int:
    """Pages registered with the IOMMU up front ("loose mode"): the
    data region plus every control ring page, per thread — mirrors
    ``repro.host.addressing.build_thread_layouts``."""
    host = config.host
    data_page = PAGE_2M if host.hugepages else PAGE_4K
    data_pages = -(-host.rx_region_bytes // data_page)
    nic = host.nic
    control = (nic.desc_ring_pages + nic.completion_ring_pages
               + nic.tx_desc_ring_pages + nic.tx_completion_ring_pages
               + nic.ack_staging_pages + nic.conn_state_pages)
    return (data_pages + control) * host.cpu.cores


def weighted_percentile(pairs: List[Tuple[float, float]],
                        fraction: float) -> float:
    """Percentile of a weighted sample: smallest value whose cumulative
    weight reaches ``fraction`` of the total."""
    if not pairs:
        return 0.0
    ordered = sorted(pairs)
    total = sum(weight for _, weight in ordered)
    if total <= 0:
        return 0.0
    cut = fraction * total
    running = 0.0
    for value, weight in ordered:
        running += weight
        if running >= cut:
            return value
    return ordered[-1][0]


def message_latency_summary(
        pairs: List[Tuple[float, float]]) -> Dict[str, float]:
    """p50/p90/p99/mean of a weighted latency sample — the same four
    keys ``ExperimentResult.message_latency_us`` carries (units follow
    the input values)."""
    total = sum(weight for _, weight in pairs)
    mean = (sum(value * weight for value, weight in pairs) / total
            if total > 0 else 0.0)
    return {
        "p50": weighted_percentile(pairs, 0.50),
        "p90": weighted_percentile(pairs, 0.90),
        "p99": weighted_percentile(pairs, 0.99),
        "mean": mean,
    }


@dataclass(frozen=True)
class FabricProfile:
    """Calibrated aggregate treatment of a multi-tier fabric stage.

    Built by :func:`fluid_fabric_profile` from the same config the
    packet engine's :class:`~repro.net.fabric.FabricPlan` is built
    from, mirroring the plan's canonical path enumeration and the
    shared :mod:`repro.net.routing` hash — so static and ECMP per-path
    flow counts are *exact*, not estimated (flowlet is modelled as the
    ideal balance it converges to).  ``terms`` describe, host-averaged,
    the bottleneck multipath tier (the dumbbell trunks; the agg→edge
    down-links into the receiver's pod in a fat-tree): for each used
    link, the fraction of the host's window routed through it, its
    capacity share (link capacity × this host's flow share on it), and
    its buffer share.  ``free_fraction`` is the share of flows that
    never cross a constrained link (same-edge traffic).
    """

    #: (window fraction, capacity bits/s, buffer bytes) per used link,
    #: already divided by the receiver count (host-averaged).
    terms: Tuple[Tuple[float, float, float], ...]
    free_fraction: float


def fluid_fabric_profile(
        config: ExperimentConfig) -> Optional[FabricProfile]:
    """The fluid fabric stage for ``config.fabric`` (None for star).

    Mirrors the multi-tier plan math of :mod:`repro.net.fabric` —
    endpoint placement (``index % n_edges``), equal-cost set sizes, and
    the canonical path-index → receiver-side link mapping (cross-pod
    index ``j·(k/2)+m`` descends through agg ``j``) — and reuses the
    actual routing-policy hash for per-path flow counts.  Asserted
    against the packet plan in ``tests/test_fluid_fabric.py``.
    """
    fc = config.fabric
    if fc.topology == "star":
        return None
    wl = config.workload
    receivers = wl.receivers
    cores = config.host.cpu.cores
    senders = wl.senders
    n_h = cores * senders
    cap_link = fc.uplink_scale * config.link.rate_bps
    buf = float(fc.buffer_bytes if fc.buffer_bytes is not None
                else config.link.switch_buffer_bytes)
    policy = create_policy(fc.routing, seed=config.sim.seed,
                           flowlet_gap=fc.flowlet_gap)
    #: Flowlet rehashes every burst boundary; over a run it converges
    #: to the uniform split, which is what the fluid stage models.
    ideal = fc.routing == "flowlet"
    host_loads: List[Dict[object, float]] = [{} for _ in range(receivers)]
    totals: Dict[object, float] = {}
    free = [0.0] * receivers

    def add(host: int, key: object, weight: float) -> None:
        host_loads[host][key] = host_loads[host].get(key, 0.0) + weight
        totals[key] = totals.get(key, 0.0) + weight

    if fc.topology == "dumbbell":
        n_paths = fc.trunk_links
        for h in range(receivers):
            base = h * n_h
            for f in range(n_h):
                if ideal:
                    for j in range(n_paths):
                        add(h, j, 1.0 / n_paths)
                else:
                    add(h, policy.select(base + f, n_paths, 0.0), 1.0)
    else:  # fattree
        half = fc.fattree_k // 2
        n_edges = fc.fattree_k * half
        for h in range(receivers):
            host_edge = h % n_edges
            dpod = host_edge // half
            base = h * n_h
            for f in range(n_h):
                sender = h * senders + f % senders
                src_edge = sender % n_edges
                if src_edge == host_edge:
                    free[h] += 1.0
                    continue
                spod = src_edge // half
                n_paths = half if spod == dpod else half * half
                if ideal:
                    for j in range(half):
                        add(h, (dpod, j, host_edge), 1.0 / half)
                else:
                    idx = policy.select(base + f, n_paths, 0.0)
                    j = idx if spod == dpod else idx // half
                    add(h, (dpod, j, host_edge), 1.0)
    terms: List[Tuple[float, float, float]] = []
    for h in range(receivers):
        for key, n_hj in host_loads[h].items():
            terms.append((n_hj / n_h / receivers,
                          cap_link * (n_hj / totals[key]) / receivers,
                          buf / receivers))
    return FabricProfile(tuple(sorted(terms)),
                         sum(free) / (n_h * receivers))


@dataclass
class FluidRun:
    """Accumulated measurement-window outputs of one solved host."""

    elapsed: float = 0.0
    rx_packets: float = 0.0
    dropped_packets: float = 0.0
    #: Multi-tier fabric stage accounting (zero on star topologies):
    #: packets offered to the fabric and packets tail-dropped at
    #: fabric switch ports before ever reaching the host NIC.
    fabric_offered_packets: float = 0.0
    fabric_dropped_packets: float = 0.0
    dma_packets: float = 0.0
    drained_packets: float = 0.0
    drained_payload_bytes: float = 0.0
    retransmissions: float = 0.0
    timeouts: float = 0.0
    #: Packet-weighted integrals of the per-step latencies.
    dma_latency_weighted: float = 0.0
    nic_delay_weighted: float = 0.0
    #: Time integrals of bus state.
    utilization_integral: float = 0.0
    achieved_bw_integral: float = 0.0
    cwnd_integral: float = 0.0
    peak_queue_bytes: float = 0.0
    #: (latency_seconds, weight) pairs for message-latency percentiles.
    latency_pairs: List[Tuple[float, float]] = field(default_factory=list)
    #: (nic_delay_seconds, packets) pairs for the host-delay summary.
    delay_pairs: List[Tuple[float, float]] = field(default_factory=list)
    #: Per-step ``(host_delay, rtt_eff, p_pkt, drained, per_flow_w)``
    #: records, kept so other traffic classes sharing the host (e.g.
    #: isolation victims issuing single-packet reads) can synthesize
    #: their own message latencies over the same congested trace.
    step_trace: List[Tuple[float, float, float, float, float]] = \
        field(default_factory=list)

    def drop_rate(self) -> float:
        return (self.dropped_packets / self.rx_packets
                if self.rx_packets > 0 else 0.0)


class FluidSolver:
    """One receiver host's fluid dynamics, stepped at RTT granularity.

    State: ``W`` — the aggregate congestion window (packets, summed
    over every flow into this host) — ``q_nic`` (NIC buffer level,
    wire bytes, bounded and lossy) and ``q_cpu`` (receiver processing
    backlog, wire bytes, unbounded and loss-free).  Each step
    recomputes the closed-form stage capacities, integrates both
    queues, and applies one aggregate Swift-style AIMD update against
    the *one-RTT-delayed* total host delay; the NIC buffer caps the
    observable delay, so the packet engine's Swift blind spot (drops
    the CC never sees because the full buffer still drains inside the
    target delay) emerges here too.

    Multi-host topologies are symmetric (every receiver serves an
    identical incast), so one solver models one host and the runner
    aggregates exactly as ``repro.core.topology.Topology.snapshot``.
    """

    def __init__(self, config: ExperimentConfig):
        self.config = config
        host, wl = config.host, config.workload
        self.wire_bytes = wl.wire_bytes_per_packet
        self.payload_bytes = wl.mtu_payload
        self.payload_fraction = self.payload_bytes / self.wire_bytes
        self.packets_per_read = wl.packets_per_read
        self.n_flows = host.cpu.cores * wl.senders
        self.base_rtt = 2 * config.link.one_way_delay
        #: Step size: one base RTT (the CC update granularity); guarded
        #: for degenerate zero-delay links.
        self.dt = max(self.base_rtt, 1e-6)
        self.misses_per_packet = predicted_misses_per_packet(config)
        self.serialization = self.wire_bytes * 8 / host.pcie.goodput_bps
        self.antagonist_Bps = (host.antagonist_cores
                               * host.antagonist_per_core_Bps)
        copy_read, copy_write = host.ddio.copy_demand_fractions()
        self.copy_fraction = copy_read + copy_write
        swift = config.swift
        # -- hoisted per-step constants (hot-path micro-opt).  ``step``
        # touches only these instance floats, never the config tree.
        # Every closed-form below is the former helper-method physics;
        # ``repro.sim.fluid_batch`` mirrors the step expressions built
        # from these constants operation-for-operation, so any change
        # here must be made there too (the batched-equality tests will
        # catch a divergence).
        mem = host.memory
        #: Memory-bus bytes the NIC writes per packet (payload +
        #: descriptor/completion control writes).
        self.nic_write_bytes = float(self.payload_bytes
                                     + NIC_CONTROL_WRITE_BYTES)
        #: Memory-bus bytes the CPU copy path moves per drained packet.
        self.copy_bytes_per_packet = (self.payload_bytes
                                      * self.copy_fraction)
        self.achievable_Bps = mem.achievable_Bps
        self.max_queue_delay = mem.max_queue_delay
        self.walk_base = mem.walk_base_latency
        self.walk_fraction = mem.walk_contention_fraction
        self.iommu_on = host.iommu.enabled
        #: Per-DMA latency with zero queueing and zero misses (T_base):
        #: fixed PCIe overhead + serialization + one memory write —
        #: ``repro.core.model.dma_base_latency``.
        self.t_base = (host.pcie.dma_fixed_latency + self.serialization
                       + mem.idle_latency)
        #: Little's-law numerator: inflight DMA bits, derated by the
        #: pipeline efficiency.
        self.littles_bits = (host.pcie.max_inflight_bytes * 8
                             * DMA_PIPELINE_EFFICIENCY)
        self.pcie_goodput_bps = host.pcie.goodput_bps
        #: CPU-stage capacity in *wire* bits/s at an idle memory bus.
        self.cpu_wire_bps = (host.cpu.cores * host.cpu.core_rate_bps
                             / self.payload_fraction)
        self.cpu_slowdown = host.cpu.contention_slowdown
        self.link_rate_bps = config.link.rate_bps
        self.buffer_bytes = float(host.nic.buffer_bytes)
        self.wire_bits = self.wire_bytes * 8
        self.swift_target = swift.host_target
        #: Additive-increase numerators pre-multiplied by the flow
        #: count (the per-step terms divide by ``rtt_eff`` only).
        self.swift_ai_n = swift.additive_increase * self.n_flows
        self.loss_ai_n = LOSS_CC_AI * self.n_flows
        self.swift_beta = swift.beta
        self.swift_max_mdf = swift.max_mdf
        self.min_cwnd = swift.min_cwnd
        self.rto = swift.rto
        # State: start one packet per flow (the transport's initial
        # window), empty queues, and an uncongested delay estimate.
        self.W = float(self.n_flows)
        self.min_W = self.n_flows * swift.min_cwnd
        self.max_W = self.n_flows * swift.max_cwnd
        self.q_nic = 0.0
        self.q_cpu = 0.0
        #: Open-loop sender-side demand backlog (wire bytes): reads
        #: arrive at the offered rate whether or not the window lets
        #: them out, exactly like ``Connection.add_backlog`` in the
        #: packet engine.  Demand unmet in an overloaded interval
        #: persists and drains later at window rate.
        self.q_demand = 0.0
        self.now = 0.0
        self.steps = 0
        self._host_delay = self.t_base
        self._delayed_signal = self._host_delay
        self._nic_drain_pps = 0.0
        self._cpu_drain_pps = 0.0
        self._last_decrease = -math.inf
        self.loss_based = config.transport in LOSS_BASED_TRANSPORTS
        self._delayed_loss = 0.0
        # Multi-tier fabric stage (None on the star: the guarded branch
        # in step() is never entered and the solver's arithmetic is
        # bit-identical to the pre-fabric implementation).
        profile = fluid_fabric_profile(config)
        self.fabric_profile = profile
        if profile is not None:
            self._fab_terms: Optional[Tuple[Tuple[float, float, float],
                                            ...]] = profile.terms
            self._fab_free = profile.free_fraction
            self._fab_frac_sum = sum(f for f, _, _ in profile.terms)
            self._fab_q = [0.0] * len(profile.terms)
        else:
            self._fab_terms = None
        self._fab_delay = 0.0
        self.set_offered_load(wl.offered_load)
        self.run = FluidRun()

    # -- per-step physics --------------------------------------------------

    def step(self) -> None:
        # One fused update: memory bus -> stage capacities -> arrivals
        # -> NIC/CPU queue integration -> AIMD -> accumulators.  The
        # physics is documented piecewise below; it is the same math the
        # pre-batching helper methods carried, inlined so the hot loop
        # reads locals only.
        dt = self.dt
        run = self.run

        # Memory bus (the fluid half of ``repro.host.memory``): NIC DMA
        # writes + CPU copy traffic + the STREAM antagonist against the
        # achievable bandwidth give utilization, the load-latency queue
        # delay, and the achieved bandwidth.
        total_Bps = (self._nic_drain_pps * self.nic_write_bytes
                     + self._cpu_drain_pps * self.copy_bytes_per_packet
                     + self.antagonist_Bps)
        achievable_Bps = self.achievable_Bps
        rho = total_Bps / achievable_Bps
        if rho <= QUEUE_KNEE:
            queue_delay = 0.0
        else:
            x = (rho - QUEUE_KNEE) / _KNEE_SPAN
            if x > 1.0:
                x = 1.0
            queue_delay = self.max_queue_delay * _cube(x)
        achieved_Bps = (total_Bps if total_Bps < achievable_Bps
                        else achievable_Bps)

        # NIC-stage capacity (wire bits/s): the Little's-law PCIe bound
        # over the per-DMA latency (T_base + queueing + IOTLB walks),
        # capped by PCIe goodput.
        t_total = self.t_base + queue_delay
        if self.iommu_on:
            walk = self.walk_base + self.walk_fraction * queue_delay
            t_total += self.misses_per_packet * walk
        littles = self.littles_bits / t_total
        nic_bps = (littles if littles < self.pcie_goodput_bps
                   else self.pcie_goodput_bps)

        # CPU-stage capacity (wire bits/s): per-core processing slowed
        # by memory-bus contention (copies stall on a loaded bus).
        rho_c = rho if rho < 1.0 else 1.0
        cpu_bps = self.cpu_wire_bps * (1.0 - self.cpu_slowdown * rho_c)

        # Arrivals: the window-limited closed loop.  An open-loop
        # workload accrues reads into the sender-side demand backlog
        # and the window drains *that* — demand unmet in an overloaded
        # interval carries over (``Connection.add_backlog``) instead of
        # being capped at the instantaneous offered rate.
        rtt_eff = self.base_rtt + self._host_delay
        if self._fab_terms is not None:
            rtt_eff += self._fab_delay
        window_bps = self.W * self.wire_bits / rtt_eff
        if self.open_loop:
            q_demand = self.q_demand + self.demand_step_bytes
            arrival_bps = min(window_bps, q_demand * 8 / dt,
                              self.link_rate_bps)
            q_demand = q_demand - arrival_bps / 8 * dt
            self.q_demand = q_demand if q_demand > 0.0 else 0.0
        else:
            arrival_bps = (window_bps if window_bps < self.link_rate_bps
                           else self.link_rate_bps)

        # Fabric stage (multi-tier topologies only): per-used-link fluid
        # queues at the bottleneck multipath tier.  Each link passes its
        # window share through up to its capacity share, buffers the
        # excess, and tail-drops past its buffer — drops the host NIC
        # never sees, at whichever link the routing policy overloaded.
        inflow = arrival_bps / 8 * dt
        fab_dropped_bytes = 0.0
        if self._fab_terms is not None:
            served_bytes = arrival_bps * self._fab_free / 8.0 * dt
            delay_num = 0.0
            fab_q = self._fab_q
            for i, (frac, cap_bps, fab_buf) in enumerate(self._fab_terms):
                backlog = fab_q[i] + arrival_bps * frac / 8.0 * dt
                cap_bytes = cap_bps / 8.0 * dt
                served_t = backlog if backlog < cap_bytes else cap_bytes
                level = backlog - served_t
                over = level - fab_buf
                if over > 0.0:
                    fab_dropped_bytes += over
                    level = fab_buf
                fab_q[i] = level
                served_bytes += served_t
                delay_num += level / (cap_bps / 8.0) * frac
            self._fab_delay = (delay_num / self._fab_frac_sum
                               if self._fab_frac_sum > 0.0 else 0.0)
            run.fabric_offered_packets += inflow / self.wire_bytes
            run.fabric_dropped_packets += (fab_dropped_bytes
                                           / self.wire_bytes)
            run.retransmissions += fab_dropped_bytes / self.wire_bytes
            if self.open_loop:
                # Reliable transport: fabric-dropped reads come back.
                self.q_demand += fab_dropped_bytes
            inflow = served_bytes

        # NIC stage: bounded buffer, tail drop on overflow.
        nic_capacity = nic_bps / 8 * dt
        nic_backlog = self.q_nic + inflow
        dma_bytes = (nic_capacity if nic_capacity < nic_backlog
                     else nic_backlog)
        level = nic_backlog - dma_bytes
        buffer_bytes = self.buffer_bytes
        dropped_bytes = level - buffer_bytes
        if dropped_bytes < 0.0:
            dropped_bytes = 0.0
        q_nic = level if level < buffer_bytes else buffer_bytes
        self.q_nic = q_nic
        if self.open_loop:
            # Reliable transport: lost packets are retransmitted, so
            # their bytes return to the sender-side demand backlog
            # rather than vanishing from the open-loop workload.
            self.q_demand += dropped_bytes
        nic_Bps = nic_bps / 8
        if nic_Bps < 1.0:
            nic_Bps = 1.0
        nic_delay = t_total + q_nic / nic_Bps

        # CPU stage: unbounded in-memory backlog, loss-free.
        cpu_capacity = cpu_bps / 8 * dt
        cpu_backlog = self.q_cpu + dma_bytes
        done_bytes = (cpu_capacity if cpu_capacity < cpu_backlog
                      else cpu_backlog)
        q_cpu = cpu_backlog - done_bytes
        self.q_cpu = q_cpu
        cpu_Bps = cpu_bps / 8
        if cpu_Bps < 1.0:
            cpu_Bps = 1.0
        host_delay = nic_delay + q_cpu / cpu_Bps

        # Aggregate Swift AIMD against the one-RTT-delayed signal.
        # No hold band: the aggregate sawtooth must keep probing, or a
        # deterministic fluid settles into a frozen dead zone the
        # per-flow packet engine never reaches.
        signal = self._delayed_signal
        now = self.now
        if self.loss_based:
            # Loss-based transports (Cubic; DCTCP, whose ECN marks live
            # at the fabric switch) only see host congestion as drops:
            # probe at 1 pkt/RTT/flow until a loss round, then cut.
            if self._delayed_loss <= 0.0:
                self.W += self.loss_ai_n * dt / rtt_eff
            elif now - self._last_decrease >= rtt_eff:
                self.W *= LOSS_CC_BETA
                self._last_decrease = now
        elif signal < self.swift_target:
            self.W += self.swift_ai_n * dt / rtt_eff
        elif now - self._last_decrease >= rtt_eff:
            mdf = (self.swift_beta * (signal - self.swift_target)
                   / signal)
            if mdf > self.swift_max_mdf:
                mdf = self.swift_max_mdf
            self.W *= 1.0 - mdf
            self._last_decrease = now
        W = self.W
        if W < self.min_W:
            W = self.min_W
        elif W > self.max_W:
            W = self.max_W
        self.W = W

        # Accumulators (the former ``_accumulate``, inlined: no per-step
        # argument tuples or record lists on the common path).
        rx = inflow / self.wire_bytes
        dropped = dropped_bytes / self.wire_bytes
        dma = dma_bytes / self.wire_bytes
        drained = done_bytes / self.wire_bytes
        run.elapsed += dt
        run.rx_packets += rx
        run.dropped_packets += dropped
        run.dma_packets += dma
        run.drained_packets += drained
        run.drained_payload_bytes += drained * self.payload_bytes
        run.retransmissions += dropped
        run.dma_latency_weighted += t_total * dma
        run.nic_delay_weighted += nic_delay * dma
        run.utilization_integral += rho * dt
        run.achieved_bw_integral += achieved_Bps * dt
        run.cwnd_integral += W / self.n_flows * dt
        if q_nic > run.peak_queue_bytes:
            run.peak_queue_bytes = q_nic
        if drained > 0.0:
            run.delay_pairs.append((nic_delay, dma))
            if rx > 0.0:
                p_pkt = dropped / rx
                if p_pkt > 1.0:
                    p_pkt = 1.0
            else:
                p_pkt = 0.0
            per_flow_w = W / self.n_flows
            if per_flow_w < self.min_cwnd:
                per_flow_w = self.min_cwnd
            run.step_trace.append(
                (host_delay, rtt_eff, p_pkt, drained, per_flow_w))
            # Inline of ``synthesize_message_pairs`` for this step's
            # record: same outcome classes, but the loss-free fast path
            # skips the ``pow`` and the zero-weight bookkeeping.
            ppr = self.packets_per_read
            messages = drained / ppr
            rounds = ppr / per_flow_w
            if rounds < 1.0:
                rounds = 1.0
            base = (self.base_rtt + host_delay
                    + (rounds - 1.0) * rtt_eff)
            pairs = run.latency_pairs
            if p_pkt > 0.0:
                p_msg = 1.0 - (1.0 - p_pkt) ** ppr
                p_timeout = p_msg * p_pkt
                run.timeouts += messages * p_timeout
                pairs.append((base, messages * (1.0 - p_msg)))
                if p_msg > 0.0:
                    pairs.append((base + rtt_eff,
                                  messages * (p_msg - p_timeout)))
                if p_timeout > 0.0:
                    pairs.append((base + self.rto,
                                  messages * p_timeout))
            else:
                pairs.append((base, messages))

        # Roll the delayed signals forward one step.
        self._delayed_signal = self._host_delay
        self._host_delay = host_delay
        # Loss-based CC sees fabric drops too (they trigger the same
        # retransmit/decrease machinery in the packet engine).
        self._delayed_loss = dropped_bytes + fab_dropped_bytes
        self._nic_drain_pps = dma / dt
        self._cpu_drain_pps = drained / dt
        self.now = now + dt
        self.steps += 1

    def synthesize_message_pairs(
            self, records, packets_per_read: float,
    ) -> Tuple[List[Tuple[float, float]], float]:
        """Weighted message-latency samples for a traffic class issuing
        ``packets_per_read``-packet reads over the given step records.

        One sample per step per outcome class: a clean read finishes in
        ``rounds`` effective RTTs; a read that lost a packet pays one
        extra round trip (fast retransmit); a read that lost the
        retransmit too pays the RTO.  Returns ``(pairs, timeouts)``.
        """
        ppr = packets_per_read
        rto = self.config.swift.rto
        pairs: List[Tuple[float, float]] = []
        timeouts = 0.0
        for host_delay, rtt_eff, p_pkt, drained, per_flow_w in records:
            messages = drained / ppr
            rounds = max(1.0, ppr / per_flow_w)
            base = (self.base_rtt + host_delay
                    + (rounds - 1.0) * rtt_eff)
            p_msg = 1.0 - (1.0 - p_pkt) ** ppr
            p_timeout = p_msg * p_pkt
            timeouts += messages * p_timeout
            pairs.append((base, messages * (1.0 - p_msg)))
            if p_msg > 0:
                pairs.append(
                    (base + rtt_eff, messages * (p_msg - p_timeout)))
            if p_timeout > 0:
                pairs.append((base + rto, messages * p_timeout))
        return pairs, timeouts

    # -- run control -------------------------------------------------------

    def run_until(self, until: float) -> None:
        while self.now < until - 1e-12:
            self.step()

    def reset_stats(self) -> None:
        """Warmup boundary: restart accumulators, keep CC/queue state."""
        self.run = FluidRun()

    def set_offered_load(self, load: Optional[float]) -> None:
        """Mid-run load change (the day driver's per-bin schedule) —
        mirrors ``RemoteReadWorkload.set_offered_load``.  Precomputes
        the per-step open-loop demand accrual so :meth:`step` only adds
        a constant."""
        self.offered_load = load
        self.open_loop = load is not None
        if self.open_loop:
            reads_per_s = (load * self.link_rate_bps
                           / (self.config.workload.read_size_bytes * 8))
            open_bps = reads_per_s * self.packets_per_read \
                * self.wire_bytes * 8
            self.demand_step_bytes = open_bps / 8 * self.dt
        else:
            self.demand_step_bytes = 0.0

    def set_antagonist_cores(self, cores: int) -> None:
        """Mid-run antagonist change — mirrors
        ``MemoryAntagonist.set_cores``."""
        self.antagonist_Bps = (cores
                               * self.config.host.antagonist_per_core_Bps)

    # -- reporting ---------------------------------------------------------

    def mean_cwnd(self) -> float:
        if self.run.elapsed <= 0:
            return self.W / self.n_flows
        return self.run.cwnd_integral / self.run.elapsed

    def snapshot(self) -> Dict[str, float]:
        """The 11-key host headline dict, same names and units as
        ``repro.host.host.ReceiverHost.snapshot``."""
        run = self.run
        elapsed = run.elapsed
        config = self.config
        if elapsed <= 0:
            app_gbps = wire_gbps = 0.0
            utilization = bandwidth = 0.0
        else:
            app_gbps = run.drained_payload_bytes * 8 / elapsed / 1e9
            wire_gbps = (run.rx_packets * self.wire_bytes * 8
                         / elapsed / 1e9)
            utilization = run.utilization_integral / elapsed
            bandwidth = run.achieved_bw_integral / elapsed
        dma = run.dma_packets
        mean_dma = run.dma_latency_weighted / dma if dma > 0 else 0.0
        mean_delay = run.nic_delay_weighted / dma if dma > 0 else 0.0
        remote_Bps = min(
            config.host.remote_antagonist_cores
            * config.host.antagonist_per_core_Bps,
            config.host.memory.achievable_Bps)
        return {
            "app_throughput_gbps": app_gbps,
            "wire_arrival_gbps": wire_gbps,
            "drop_rate": run.drop_rate(),
            "iotlb_misses_per_packet": self.misses_per_packet,
            "memory_utilization": utilization,
            "memory_total_GBps": bandwidth / 1e9,
            "mean_dma_latency_us": mean_dma * 1e6,
            "mean_nic_delay_us": mean_delay * 1e6,
            "nic_buffer_peak_fraction":
                run.peak_queue_bytes / config.host.nic.buffer_bytes,
            "iommu_entries": float(registered_iommu_entries(config)),
            "remote_memory_GBps": remote_Bps / 1e9,
        }
