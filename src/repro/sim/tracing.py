"""Lightweight event tracing with spans and a flight recorder.

Components call ``tracer.emit(component, event, **fields)``; when
tracing is disabled (the default) every entry point is a single
attribute check, so the hot path stays cheap.  Tests and debugging
sessions enable it to assert on exact event orderings.

Three record phases exist (mirroring the Chrome trace-event format the
Perfetto exporter in :mod:`repro.obs.perfetto` emits):

- ``"i"`` — instant events from :meth:`Tracer.emit`;
- ``"B"``/``"E"`` — span begin/end pairs from :meth:`Tracer.begin` /
  :meth:`Tracer.end` (e.g. one span per DMA, descriptor fetch →
  IOMMU translate → memory write → completion);
- ``"X"`` — complete spans with a known duration from
  :meth:`Tracer.complete` (sub-stages whose latency is computed up
  front, like one DMA's translation time).

Storage is a bounded **flight-recorder ring**: the last ``max_records``
records are always retained, older ones are evicted and counted in
:attr:`Tracer.dropped` (with a one-time warning) instead of silently
vanishing.  Sinks always see every record regardless of the ring.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator

__all__ = ["TraceRecord", "Tracer", "null_tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    component: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)
    phase: str = "i"
    span_id: int = 0

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        tag = "" if self.phase == "i" else f" <{self.phase}>"
        return (f"[{self.time * 1e6:10.3f}us] "
                f"{self.component}.{self.event}{tag} {kv}")


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled."""

    def __init__(self, sim: Simulator, enabled: bool = False,
                 max_records: int = 1_000_000):
        if max_records <= 0:
            raise ValueError(
                f"max_records must be positive, got {max_records}")
        self.sim = sim
        self.enabled = enabled
        self.max_records = max_records
        #: Records evicted from the ring (never silently lost).
        self.dropped = 0
        self._ring: Deque[TraceRecord] = deque()
        self._sinks: List[Callable[[TraceRecord], None]] = []
        self._next_span_id = 1
        self._open_spans: Dict[int, Tuple[str, str, float]] = {}
        self._warned_drop = False

    @property
    def records(self) -> List[TraceRecord]:
        """The retained records, oldest first (a bounded ring: at most
        ``max_records``, the newest always present)."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Also forward records to ``sink`` (e.g. print, file writer)."""
        self._sinks.append(sink)

    # -- record intake -----------------------------------------------------

    def _append(self, record: TraceRecord) -> None:
        if len(self._ring) >= self.max_records:
            self._ring.popleft()
            self.dropped += 1
            if not self._warned_drop:
                self._warned_drop = True
                warnings.warn(
                    f"tracer ring full ({self.max_records} records); "
                    "evicting oldest records (see Tracer.dropped)",
                    RuntimeWarning, stacklevel=3)
        self._ring.append(record)
        for sink in self._sinks:
            sink(record)

    def emit(self, component: str, event: str, **fields: Any) -> None:
        """Record an instant event."""
        if not self.enabled:
            return
        self._append(TraceRecord(self.sim.now, component, event, fields))

    # -- spans -------------------------------------------------------------

    def begin(self, component: str, event: str, **fields: Any) -> int:
        """Open a span; returns its id (0 when tracing is disabled).

        Pass the id to :meth:`end` when the spanned work completes —
        possibly many simulated microseconds later, from a different
        callback.
        """
        if not self.enabled:
            return 0
        span_id = self._next_span_id
        self._next_span_id += 1
        now = self.sim.now
        self._open_spans[span_id] = (component, event, now)
        self._append(TraceRecord(now, component, event, fields, "B",
                                 span_id))
        return span_id

    def end(self, span_id: int, **fields: Any) -> float:
        """Close a span opened by :meth:`begin`; returns its duration.

        A zero or unknown id is a no-op (so callers can hold the 0 that
        a disabled :meth:`begin` returned without re-checking).
        """
        if not self.enabled or span_id == 0:
            return 0.0
        opened = self._open_spans.pop(span_id, None)
        if opened is None:
            return 0.0
        component, event, begin_time = opened
        now = self.sim.now
        duration = now - begin_time
        fields["dur"] = duration
        self._append(TraceRecord(now, component, event, fields, "E",
                                 span_id))
        return duration

    def complete(self, component: str, event: str, start: float,
                 duration: float, **fields: Any) -> None:
        """Record a whole span at once (start and duration known)."""
        if not self.enabled:
            return
        fields["dur"] = duration
        self._append(TraceRecord(start, component, event, fields, "X"))

    @property
    def open_spans(self) -> int:
        """Spans begun but not yet ended."""
        return len(self._open_spans)

    # -- queries -----------------------------------------------------------

    def filter(self, component: Optional[str] = None,
               event: Optional[str] = None,
               phase: Optional[str] = None) -> List[TraceRecord]:
        """Records matching the given component/event name/phase."""
        out: List[TraceRecord] = list(self._ring)
        if component is not None:
            out = [r for r in out if r.component == component]
        if event is not None:
            out = [r for r in out if r.event == event]
        if phase is not None:
            out = [r for r in out if r.phase == phase]
        return out

    def clear(self) -> None:
        self._ring.clear()
        self._open_spans.clear()
        self.dropped = 0
        self._warned_drop = False


def null_tracer(sim: Simulator) -> Tracer:
    """A disabled tracer bound to ``sim`` (cheap to share)."""
    return Tracer(sim, enabled=False)
