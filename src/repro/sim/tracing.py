"""Lightweight event tracing.

Components call ``tracer.emit(component, event, **fields)``; when tracing
is disabled (the default) this is a single attribute check, so the hot
path stays cheap.  Tests and debugging sessions enable it to assert on
exact event orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sim.engine import Simulator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    component: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time * 1e6:10.3f}us] {self.component}.{self.event} {kv}"


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled."""

    def __init__(self, sim: Simulator, enabled: bool = False,
                 max_records: int = 1_000_000):
        self.sim = sim
        self.enabled = enabled
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self._sinks: List[Callable[[TraceRecord], None]] = []

    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Also forward records to ``sink`` (e.g. print, file writer)."""
        self._sinks.append(sink)

    def emit(self, component: str, event: str, **fields: Any) -> None:
        if not self.enabled:
            return
        record = TraceRecord(self.sim.now, component, event, fields)
        if len(self.records) < self.max_records:
            self.records.append(record)
        for sink in self._sinks:
            sink(record)

    def filter(self, component: Optional[str] = None,
               event: Optional[str] = None) -> List[TraceRecord]:
        """Records matching the given component and/or event name."""
        out = self.records
        if component is not None:
            out = [r for r in out if r.component == component]
        if event is not None:
            out = [r for r in out if r.event == event]
        return list(out)

    def clear(self) -> None:
        self.records.clear()


#: A tracer that is always disabled — usable as a default argument so
#: components never need None checks.
NULL_TRACER: Optional[Tracer] = None


def null_tracer(sim: Simulator) -> Tracer:
    """A disabled tracer bound to ``sim`` (cheap to share)."""
    return Tracer(sim, enabled=False)
