"""Finite byte-capacity queues with drop and occupancy accounting.

The NIC input buffer is the central queue of the paper: a small SRAM
(≈1 MB) where all host-congestion drops happen.  :class:`ByteQueue`
therefore tracks, besides the items themselves, everything the analysis
needs: drop counts/bytes, an occupancy-time integral (for mean depth),
and the peak occupancy.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.sim.engine import Simulator

__all__ = ["ByteQueue"]


class ByteQueue:
    """Tail-drop FIFO bounded by total bytes.

    Items are opaque; each is enqueued with an explicit byte size so the
    queue works for packets, descriptors, or DMA requests alike.
    """

    def __init__(self, sim: Simulator, capacity_bytes: int, name: str = "q"):
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self.sim = sim
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._items: Deque[Tuple[Any, int, float]] = deque()
        self._bytes = 0
        # Telemetry.
        self.enqueued_count = 0
        self.enqueued_bytes = 0
        self.dropped_count = 0
        self.dropped_bytes = 0
        self.dequeued_count = 0
        self.peak_bytes = 0
        self._occupancy_integral = 0.0
        self._last_change = sim.now

    def __len__(self) -> int:
        return len(self._items)

    @property
    def bytes_used(self) -> int:
        return self._bytes

    @property
    def bytes_free(self) -> int:
        return self.capacity_bytes - self._bytes

    def _account(self) -> None:
        now = self.sim.now
        self._occupancy_integral += self._bytes * (now - self._last_change)
        self._last_change = now

    def mean_occupancy_bytes(self, elapsed: float) -> float:
        """Time-averaged queue depth in bytes over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        self._account()
        return self._occupancy_integral / elapsed

    def offer(self, item: Any, size_bytes: int) -> bool:
        """Enqueue if it fits; otherwise drop (tail drop) and return False."""
        if size_bytes < 0:
            raise ValueError(f"negative size {size_bytes}")
        used = self._bytes
        if used + size_bytes > self.capacity_bytes:
            self.dropped_count += 1
            self.dropped_bytes += size_bytes
            return False
        now = self.sim.now
        self._occupancy_integral += used * (now - self._last_change)
        self._last_change = now
        self._items.append((item, size_bytes, now))
        used = self._bytes = used + size_bytes
        self.enqueued_count += 1
        self.enqueued_bytes += size_bytes
        if used > self.peak_bytes:
            self.peak_bytes = used
        return True

    def pop(self) -> Optional[Tuple[Any, int, float]]:
        """Dequeue the head as ``(item, size_bytes, enqueue_time)``.

        Returns None when empty.  The enqueue timestamp lets callers
        compute per-item queueing delay (the paper's "host delay"
        component at the NIC).
        """
        if not self._items:
            return None
        now = self.sim.now
        self._occupancy_integral += self._bytes * (now - self._last_change)
        self._last_change = now
        item, size, t_in = self._items.popleft()
        self._bytes -= size
        self.dequeued_count += 1
        return item, size, t_in

    def peek(self) -> Optional[Tuple[Any, int, float]]:
        if not self._items:
            return None
        return self._items[0]

    def head_sojourn(self) -> float:
        """How long the current head item has been queued (0 if empty)."""
        if not self._items:
            return 0.0
        return self.sim.now - self._items[0][2]

    def clear(self) -> int:
        """Discard everything; returns number of items removed.

        Cleared items are not counted as drops — this is for teardown,
        not for policy.
        """
        self._account()
        n = len(self._items)
        self._items.clear()
        self._bytes = 0
        return n

    def drop_rate(self) -> float:
        """Fraction of offered items that were dropped."""
        offered = self.enqueued_count + self.dropped_count
        if offered == 0:
            return 0.0
        return self.dropped_count / offered
