"""Vectorized fluid solver: N independent hosts stepped as one batch.

:class:`BatchFluidSolver` is the fleet-scale twin of
:class:`repro.sim.fluid.FluidSolver`: every piece of per-host state
(congestion window, NIC/CPU queue levels, open-loop demand backlog,
delayed congestion signals, accumulators) becomes a shape-``(N,)``
float64 array, and one :meth:`step` advances all N hosts with ~60
elementwise numpy operations instead of N trips through the scalar
step.  The scalar solver costs a few microseconds of interpreter per
host per step; batched, the per-step cost is amortized across the
whole cohort, which is where the fleet driver's order-of-magnitude
hosts/s win comes from.

**Bit-for-bit contract.**  The fleet aggregate's equality is exact
(``QuantileSketch``/``Density2D`` compare bucket counts, not
tolerances), so this solver does not merely approximate the scalar
path — it reproduces it to the last ulp.  Every expression below is
the scalar :meth:`FluidSolver.step` expression with the same
association and operation order, relying on three facts:

- IEEE-754 elementwise ``+ - * /`` and ``min``/``max`` are identical
  between CPython floats and numpy float64 lanes;
- data-dependent branches become ``np.where`` over lanes whose values
  were computed by those same elementwise ops, so the selected lane
  carries exactly the bits the scalar branch would have produced;
- the one libm call in the scalar dynamics (``x ** QUEUE_GAMMA``) was
  replaced by plain multiplication (:func:`repro.sim.fluid._cube`)
  precisely because ``pow`` kernels differ between libm and numpy in
  the last ulp.

The only knowingly inexact output is the ``timeouts`` accumulator,
whose loss-probability model needs a true ``pow`` (``(1-p)**ppr``);
it feeds no fleet metric and the equivalence tests hold it to rtol
instead.

**Structural uniformity.**  Branches that pick a *code path* rather
than a value — loss- vs delay-based congestion control, open- vs
closed-loop workload, IOMMU on/off — stay Python ``if``s, so a batch
must be structurally uniform.  :func:`repro.workload.fleet.cohort_key`
computes the partition key; the constructor validates it and raises
``ValueError`` on a mixed cohort.

Per-host latency/delay *distributions* (``latency_pairs``,
``delay_pairs``, ``step_trace``) are deliberately not materialized:
the fleet folds scalar headline metrics only, and keeping those lists
would put a Python list append back into the hot loop.  Use the scalar
solver when the message-latency percentiles of one host matter.

Layering: kernel (layer 0), like ``repro.sim.fluid`` — imports only
numpy, its ``repro.sim`` neighbours and the pinned kernel config
modules (enforced by ``scripts/check_layering.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import ExperimentConfig
from repro.sim.fluid import (
    _KNEE_SPAN,
    LOSS_CC_BETA,
    QUEUE_KNEE,
    FluidSolver,
)

__all__ = ["BatchFluidSolver"]

#: Scalar-solver attributes harvested into per-host constant arrays.
#: Harvesting from built ``FluidSolver``s (rather than re-deriving from
#: the config tree) keeps one source of truth for every derived
#: constant, including the Che-approximation IOTLB miss rate.
_CONST_ATTRS = (
    "wire_bytes", "payload_bytes", "packets_per_read", "n_flows",
    "base_rtt", "dt", "misses_per_packet", "antagonist_Bps",
    "nic_write_bytes", "copy_bytes_per_packet", "achievable_Bps",
    "max_queue_delay", "walk_base", "walk_fraction", "t_base",
    "littles_bits", "pcie_goodput_bps", "cpu_wire_bps", "cpu_slowdown",
    "link_rate_bps", "buffer_bytes", "wire_bits", "swift_target",
    "swift_ai_n", "loss_ai_n", "swift_beta", "swift_max_mdf",
    "min_cwnd", "demand_step_bytes", "min_W", "max_W",
)

#: Mutable per-host state initialized from the freshly built scalar
#: solvers (so time-zero state matches by construction).
_STATE_ATTRS = (
    "W", "q_nic", "q_cpu", "q_demand", "now", "_host_delay",
    "_delayed_signal", "_delayed_loss", "_nic_drain_pps",
    "_cpu_drain_pps", "_last_decrease",
)

#: Measurement-window accumulators (the array form of ``FluidRun``,
#: minus the per-step pair lists — see module docstring).
_ACC_ATTRS = (
    "elapsed", "rx_packets", "dropped_packets", "dma_packets",
    "drained_packets", "drained_payload_bytes", "retransmissions",
    "timeouts", "dma_latency_weighted", "nic_delay_weighted",
    "utilization_integral", "achieved_bw_integral", "cwnd_integral",
    "peak_queue_bytes",
)


class BatchFluidSolver:
    """N structurally-uniform hosts' fluid dynamics, stepped together.

    ``configs`` must agree on the three structural flags (loss- vs
    delay-based transport, open- vs closed-loop workload, IOMMU
    enabled); every continuous parameter may vary per host.
    """

    def __init__(self, configs: Sequence[ExperimentConfig]):
        if not configs:
            raise ValueError("BatchFluidSolver needs at least one config")
        solvers = [FluidSolver(config) for config in configs]
        first = solvers[0]
        self.n = len(solvers)
        self.loss_based = first.loss_based
        self.open_loop = first.open_loop
        self.iommu_on = first.iommu_on
        for solver in solvers:
            if (solver.loss_based != self.loss_based
                    or solver.open_loop != self.open_loop
                    or solver.iommu_on != self.iommu_on):
                raise ValueError(
                    "mixed cohort: all configs in a batch must share "
                    "transport family, loop mode, and IOMMU state "
                    "(partition with repro.workload.fleet.cohort_key)")
        for attr in _CONST_ATTRS + _STATE_ATTRS:
            setattr(self, attr, np.array(
                [getattr(s, attr) for s in solvers], dtype=np.float64))
        self.n_receivers = np.array(
            [c.workload.receivers for c in configs], dtype=np.float64)
        self.steps = np.zeros(self.n, dtype=np.int64)
        self.reset_stats()

    def reset_stats(self) -> None:
        """Warmup boundary: restart accumulators, keep CC/queue state
        (mirrors :meth:`FluidSolver.reset_stats`)."""
        for attr in _ACC_ATTRS:
            setattr(self, attr, np.zeros(self.n, dtype=np.float64))

    # -- stepping ------------------------------------------------------------

    def run_until(self, until: float) -> None:
        """Advance every host whose clock is behind ``until`` (same
        loop guard as the scalar ``run_until``).  Hosts reaching the
        horizon first freeze while stragglers (shorter ``dt``) catch
        up, masked so a frozen lane's state and accumulators stay
        bit-identical to a scalar solver that simply stopped."""
        limit = until - 1e-12
        while True:
            active = self.now < limit
            if active.all():
                self._step(None)
            elif active.any():
                self._step(active)
            else:
                return

    def _step(self, active: Optional[np.ndarray]) -> None:
        # ``active is None`` means every lane steps: the selectors
        # collapse to identity, skipping ~20 np.where calls on the
        # common lock-step path.  np.where(active, new, old) is
        # bitwise ``new`` on active lanes, so both paths agree.
        if active is None:
            def sel(new, old):
                return new

            def acc(delta):
                return delta
        else:
            def sel(new, old):
                return np.where(active, new, old)

            def acc(delta):
                return np.where(active, delta, 0.0)

        dt = self.dt

        # Memory bus: NIC DMA writes + CPU copies + antagonist vs the
        # achievable bandwidth -> utilization, queue delay, achieved BW.
        total_Bps = (self._nic_drain_pps * self.nic_write_bytes
                     + self._cpu_drain_pps * self.copy_bytes_per_packet
                     + self.antagonist_Bps)
        rho = total_Bps / self.achievable_Bps
        x = np.minimum((rho - QUEUE_KNEE) / _KNEE_SPAN, 1.0)
        queue_delay = np.where(rho <= QUEUE_KNEE, 0.0,
                               self.max_queue_delay * (x * x * x))
        achieved_Bps = np.minimum(total_Bps, self.achievable_Bps)

        # NIC-stage capacity: Little's-law PCIe bound, goodput-capped.
        t_total = self.t_base + queue_delay
        if self.iommu_on:
            walk = self.walk_base + self.walk_fraction * queue_delay
            t_total = t_total + self.misses_per_packet * walk
        littles = self.littles_bits / t_total
        nic_bps = np.minimum(littles, self.pcie_goodput_bps)

        # CPU-stage capacity: per-core rate slowed by bus contention.
        rho_c = np.minimum(rho, 1.0)
        cpu_bps = self.cpu_wire_bps * (1.0 - self.cpu_slowdown * rho_c)

        # Arrivals: window-limited closed loop / open-loop demand drain.
        rtt_eff = self.base_rtt + self._host_delay
        window_bps = self.W * self.wire_bits / rtt_eff
        if self.open_loop:
            q_demand = self.q_demand + self.demand_step_bytes
            arrival_bps = np.minimum(
                np.minimum(window_bps, q_demand * 8 / dt),
                self.link_rate_bps)
            q_demand = np.maximum(
                q_demand - arrival_bps / 8 * dt, 0.0)
        else:
            arrival_bps = np.minimum(window_bps, self.link_rate_bps)

        # NIC stage: bounded buffer, tail drop on overflow.
        inflow = arrival_bps / 8 * dt
        nic_capacity = nic_bps / 8 * dt
        nic_backlog = self.q_nic + inflow
        dma_bytes = np.minimum(nic_capacity, nic_backlog)
        level = nic_backlog - dma_bytes
        dropped_bytes = np.maximum(level - self.buffer_bytes, 0.0)
        q_nic = np.minimum(level, self.buffer_bytes)
        if self.open_loop:
            q_demand = q_demand + dropped_bytes
        nic_Bps = np.maximum(nic_bps / 8, 1.0)
        nic_delay = t_total + q_nic / nic_Bps

        # CPU stage: unbounded in-memory backlog, loss-free.
        cpu_capacity = cpu_bps / 8 * dt
        cpu_backlog = self.q_cpu + dma_bytes
        done_bytes = np.minimum(cpu_capacity, cpu_backlog)
        q_cpu = cpu_backlog - done_bytes
        cpu_Bps = np.maximum(cpu_bps / 8, 1.0)
        host_delay = nic_delay + q_cpu / cpu_Bps

        # Aggregate AIMD against the one-RTT-delayed signal: both
        # branch outcomes are computed for every lane with the scalar
        # expressions, then np.where picks the lane the scalar ``if``
        # would have taken.
        signal = self._delayed_signal
        now = self.now
        W = self.W
        can_cut = now - self._last_decrease >= rtt_eff
        if self.loss_based:
            grow = self._delayed_loss <= 0.0
            W_grown = W + self.loss_ai_n * dt / rtt_eff
            W_cut = W * LOSS_CC_BETA
        else:
            grow = signal < self.swift_target
            W_grown = W + self.swift_ai_n * dt / rtt_eff
            mdf = np.minimum(
                self.swift_beta * (signal - self.swift_target) / signal,
                self.swift_max_mdf)
            W_cut = W * (1.0 - mdf)
        cut = ~grow & can_cut
        W_new = np.where(grow, W_grown, np.where(can_cut, W_cut, W))
        W_new = np.minimum(np.maximum(W_new, self.min_W), self.max_W)
        last_decrease = np.where(cut, now, self._last_decrease)

        # Accumulators (the array form of the scalar step's tail).
        rx = inflow / self.wire_bytes
        dropped = dropped_bytes / self.wire_bytes
        dma = dma_bytes / self.wire_bytes
        drained = done_bytes / self.wire_bytes
        self.elapsed += acc(dt)
        self.rx_packets += acc(rx)
        self.dropped_packets += acc(dropped)
        self.dma_packets += acc(dma)
        self.drained_packets += acc(drained)
        self.drained_payload_bytes += acc(drained * self.payload_bytes)
        self.retransmissions += acc(dropped)
        self.dma_latency_weighted += acc(t_total * dma)
        self.nic_delay_weighted += acc(nic_delay * dma)
        self.utilization_integral += acc(rho * dt)
        self.achieved_bw_integral += acc(achieved_Bps * dt)
        self.cwnd_integral += acc(W_new / self.n_flows * dt)
        self.peak_queue_bytes = np.maximum(self.peak_queue_bytes,
                                           acc(q_nic))
        # Timeout synthesis (the scalar ``drained > 0`` branch).  The
        # loss-probability model needs a true pow, whose numpy kernel
        # differs from libm in the last ulp — ``timeouts`` feeds no
        # fleet metric, and the equivalence tests hold it to rtol.
        p_pkt = np.zeros(self.n)
        np.divide(dropped, rx, out=p_pkt, where=rx > 0.0)
        np.minimum(p_pkt, 1.0, out=p_pkt)
        messages = drained / self.packets_per_read
        p_msg = 1.0 - (1.0 - p_pkt) ** self.packets_per_read
        synth = drained > 0.0
        if active is not None:
            synth &= active
        self.timeouts += np.where(synth, messages * (p_msg * p_pkt),
                                  0.0)

        # Roll the delayed signals forward one step.
        old_host_delay = self._host_delay
        self._delayed_signal = sel(old_host_delay, self._delayed_signal)
        self._host_delay = sel(host_delay, old_host_delay)
        self._delayed_loss = sel(dropped_bytes, self._delayed_loss)
        self._nic_drain_pps = sel(dma / dt, self._nic_drain_pps)
        self._cpu_drain_pps = sel(drained / dt, self._cpu_drain_pps)
        self.W = sel(W_new, W)
        self._last_decrease = sel(last_decrease, self._last_decrease)
        self.q_nic = sel(q_nic, self.q_nic)
        self.q_cpu = sel(q_cpu, self.q_cpu)
        if self.open_loop:
            self.q_demand = sel(q_demand, self.q_demand)
        self.now = self.now + acc(dt)
        if active is None:
            self.steps += 1
        else:
            self.steps += active

    # -- reporting -----------------------------------------------------------

    def fleet_metrics(self) -> Dict[str, np.ndarray]:
        """Per-host headline metrics, shape ``(N,)`` each, reproducing
        the exact operation chain of ``FluidSolver.snapshot`` +
        ``FluidExperiment.collect`` (symmetric-receiver scaling
        included) so ``link_utilization`` and ``drop_rate`` are
        bit-identical to the scalar pipeline's."""
        m = self.n_receivers
        wire_gbps = np.zeros(self.n)
        np.divide(self.rx_packets * self.wire_bytes * 8, self.elapsed,
                  out=wire_gbps, where=self.elapsed > 0.0)
        wire_gbps = wire_gbps / 1e9
        app_gbps = np.zeros(self.n)
        np.divide(self.drained_payload_bytes * 8, self.elapsed,
                  out=app_gbps, where=self.elapsed > 0.0)
        app_gbps = app_gbps / 1e9
        drop_rate = np.zeros(self.n)
        np.divide(self.dropped_packets, self.rx_packets, out=drop_rate,
                  where=self.rx_packets > 0.0)
        return {
            "link_utilization":
                wire_gbps * m * 1e9 / (self.link_rate_bps * m),
            "drop_rate": drop_rate,
            "app_throughput_gbps": app_gbps * m,
        }
