"""Shared resources for simulation processes.

These are deliberately small: the host model mostly uses the callback
API, and these classes exist for the places where a blocking idiom reads
better (PCIe credits, producer/consumer hand-offs).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["CreditPool", "Gate", "Store"]


class CreditPool:
    """A counting resource with FIFO waiters.

    Models PCIe flow-control credits: a DMA engine acquires credits
    before issuing a write transaction and the root complex releases
    them on completion.  ``acquire`` is callback-based so the NIC hot
    path never allocates generator frames.
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[tuple[int, Callable[[], None]]] = deque()
        # Telemetry: integral of in-use credits over time -> mean usage.
        self._in_use_integral = 0.0
        self._last_change = sim.now

    @property
    def available(self) -> int:
        return self._available

    @property
    def in_use(self) -> int:
        return self.capacity - self._available

    def _account(self) -> None:
        now = self.sim.now
        self._in_use_integral += self.in_use * (now - self._last_change)
        self._last_change = now

    def mean_in_use(self, elapsed: float) -> float:
        """Time-average credits in use over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        self._account()
        return self._in_use_integral / elapsed

    def try_acquire(self, n: int = 1) -> bool:
        """Take ``n`` credits if immediately available."""
        if n > self.capacity:
            raise SimulationError(
                f"requested {n} credits > capacity {self.capacity}"
            )
        available = self._available
        if self._waiters or available < n:
            return False
        now = self.sim.now
        self._in_use_integral += ((self.capacity - available)
                                  * (now - self._last_change))
        self._last_change = now
        self._available = available - n
        return True

    def acquire(self, n: int, callback: Callable[[], None]) -> None:
        """Take ``n`` credits, invoking ``callback`` when granted.

        Grants are strictly FIFO: a large request at the head blocks
        smaller requests behind it (no starvation of wide requests).
        """
        if n > self.capacity:
            raise SimulationError(
                f"requested {n} credits > capacity {self.capacity}"
            )
        if not self._waiters and self._available >= n:
            self._account()
            self._available -= n
            callback()
        else:
            self._waiters.append((n, callback))

    def release(self, n: int = 1) -> None:
        now = self.sim.now
        self._in_use_integral += self.in_use * (now - self._last_change)
        self._last_change = now
        self._available += n
        if self._available > self.capacity:
            raise SimulationError("released more credits than acquired")
        while self._waiters and self._available >= self._waiters[0][0]:
            need, callback = self._waiters.popleft()
            self._available -= need
            callback()

    def waiting(self) -> int:
        """Number of pending acquire requests."""
        return len(self._waiters)


class Store:
    """An unbounded FIFO hand-off between processes.

    ``get`` returns an :class:`Event` that succeeds with the next item;
    if items are already queued it succeeds immediately.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; None when empty."""
        if self._items:
            return self._items.popleft()
        return None


class Gate:
    """A level-triggered barrier: processes wait until it is opened.

    Unlike :class:`~repro.sim.engine.Event`, a gate can close and reopen;
    each ``wait`` call gets a fresh event bound to the *current* state.
    """

    def __init__(self, sim: Simulator, open_: bool = False):
        self.sim = sim
        self._open = open_
        self._waiters: list[Event] = []

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        self._open = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed()

    def close(self) -> None:
        self._open = False

    def wait(self) -> Event:
        ev = Event(self.sim)
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev
