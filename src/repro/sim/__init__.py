"""Discrete-event simulation engine.

A small, dependency-free engine in the style of SimPy, tuned for the hot
paths of the host-interconnect model: the core loop dispatches plain
callbacks from a binary heap, and an optional :class:`~repro.sim.engine.Process`
wrapper runs generator-style processes on top of it for the components
where sequential logic reads better (DMA engines, senders).

Public surface:

- :class:`~repro.sim.engine.Simulator` — event loop.
- :class:`~repro.sim.engine.Event` / :class:`~repro.sim.engine.Process` —
  awaitable primitives for generator processes.
- :class:`~repro.sim.resources.CreditPool` — counting resource with FIFO
  waiters (models PCIe flow-control credits).
- :class:`~repro.sim.resources.Store` — unbounded FIFO hand-off between
  producer and consumer processes.
- :class:`~repro.sim.queues.ByteQueue` — finite byte-capacity tail-drop
  queue with occupancy/drop accounting (models the NIC input SRAM).
- :class:`~repro.sim.wheel.TimerHandle` /
  :class:`~repro.sim.wheel.TimerWheel` — O(1)-cancellable timers behind
  :meth:`~repro.sim.engine.Simulator.schedule_timer`.
- :class:`~repro.sim.randoms.RngRegistry` — named, reproducible RNG
  streams derived from one root seed.
- :class:`~repro.sim.component.Component` /
  :class:`~repro.sim.component.SimComponent` — the bind/reset/snapshot
  protocol every graph node implements, with composite recursion over a
  declared ``children()`` list.
"""

from repro.sim.component import Component, SimComponent, join_name
from repro.sim.engine import Event, Interrupt, Process, Simulator
from repro.sim.queues import ByteQueue
from repro.sim.randoms import RngRegistry
from repro.sim.resources import CreditPool, Gate, Store
from repro.sim.tracing import Tracer
from repro.sim.wheel import TimerHandle, TimerWheel

__all__ = [
    "ByteQueue",
    "Component",
    "CreditPool",
    "Event",
    "Gate",
    "Interrupt",
    "Process",
    "RngRegistry",
    "SimComponent",
    "Simulator",
    "Store",
    "TimerHandle",
    "TimerWheel",
    "Tracer",
    "join_name",
]
