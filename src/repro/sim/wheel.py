"""Hierarchical timer wheel with cancellable handles.

The engine's binary heap is perfect for the datapath (every event fires)
but wasteful for protocol timers: an RTO that is re-armed on every
transmission leaves a trail of entries that sift through the heap only
to be discarded.  The classic fix (Varghese & Lauck) is a timer wheel —
O(1) schedule and cancel — backed by a lazy heap for timers beyond the
wheel's horizon.

The wheel here is *hashed and hierarchical*: ``levels`` levels of
``2**slot_bits`` buckets, where a level-``k`` bucket spans
``2**(slot_bits*k)`` ticks.  Buckets are kept in a dict keyed by
``(level, absolute_bucket_index)``, so the structure is sparse and
rotation ambiguity cannot arise.  A timer due within the current tick
bypasses the wheel entirely and is emitted straight to the engine heap.

Integration contract (see :class:`repro.sim.engine.Simulator`):

- ``emit(entry)`` pushes a ``[time, seq, fn, args]`` heap entry into the
  engine's heap.  Entries keep their original ``(time, seq)`` keys, so
  transferring them early never changes dispatch order — the heap does
  all the final ordering.
- ``arm(time, key)`` schedules a *service* visit at ``time`` (a bucket's
  open time).  The engine encodes services as ``[time, -1, None, key]``
  entries: the ``-1`` sequence number sorts services ahead of every user
  event at the same timestamp, so a bucket is always drained into the
  heap before any same-time user event can dispatch.  Services are
  engine housekeeping and are **not** counted in ``events_dispatched``.

The default ``tick`` is dyadic (``2**-20`` s ≈ 0.95 µs) so tick-index
arithmetic (``time * 2**20``) is exact in floating point.

Cancellation marks the entry dead in place (``entry[2] = entry[3] =
None``).  A dead entry still parked in a bucket is dropped at service
time and never reaches the heap; one that already migrated to the heap
is skipped — uncounted — by the dispatch loop.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["OVERFLOW", "TimerHandle", "TimerWheel"]

#: Service key for the far-future overflow heap (beyond the top level's
#: horizon).  Any non-tuple sentinel works; a string keeps repr readable.
OVERFLOW = "overflow"


class TimerHandle:
    """Cancellation handle for one scheduled timer.

    ``cancel()`` is O(1) and idempotent: it blanks the underlying heap
    entry in place, so no structure needs to be searched.  Cancelling a
    timer that already fired is a harmless no-op (the entry has left the
    heap; blanking it affects nothing).
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    def cancel(self) -> bool:
        """Prevent the timer from firing; True if it was still pending
        as far as this handle can tell (False on repeated cancels)."""
        entry = self._entry
        if entry is None:
            return False
        self._entry = None
        if entry[2] is None:
            return False
        entry[2] = None
        entry[3] = None
        return True

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has run."""
        return self._entry is None

    @property
    def when(self) -> Optional[float]:
        """Scheduled fire time, or None after cancellation."""
        return self._entry[0] if self._entry is not None else None


class TimerWheel:
    """Sparse hierarchical wheel over engine heap entries."""

    __slots__ = ("tick", "slot_bits", "levels", "_inv_tick", "_horizon",
                 "_buckets", "_overflow", "_overflow_armed", "_emit",
                 "_arm")

    def __init__(
        self,
        emit: Callable[[list], None],
        arm: Callable[[float, Any], None],
        tick: float = 2.0 ** -20,
        slot_bits: int = 8,
        levels: int = 3,
    ):
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        if slot_bits < 1 or levels < 1:
            raise ValueError("need at least one bit and one level")
        self.tick = tick
        self.slot_bits = slot_bits
        self.levels = levels
        self._inv_tick = 1.0 / tick
        #: Ticks covered by the whole wheel; beyond it timers overflow
        #: into the lazy heap.
        self._horizon = 1 << (slot_bits * levels)
        self._buckets: Dict[Tuple[int, int], List[list]] = {}
        self._overflow: List[list] = []
        self._overflow_armed: Optional[float] = None
        self._emit = emit
        self._arm = arm

    # -- scheduling ---------------------------------------------------------

    def schedule(self, entry: list, now: float) -> None:
        """File ``entry = [time, seq, fn, args]`` relative to ``now``."""
        self._place(entry, int(now * self._inv_tick))

    def _place(self, entry: list, now_ticks: int) -> None:
        time_ticks = int(entry[0] * self._inv_tick)
        dt = time_ticks - now_ticks
        if dt <= 0:
            # Due within the current tick: the heap orders it exactly.
            self._emit(entry)
            return
        if dt < self._horizon:
            bits = self.slot_bits
            level = 0
            while dt >= (1 << (bits * (level + 1))):
                level += 1
            shift = bits * level
            bucket = time_ticks >> shift
            key = (level, bucket)
            slot = self._buckets.get(key)
            if slot is None:
                self._buckets[key] = [entry]
                # Bucket open times are exact: dyadic tick x integer.
                self._arm((bucket << shift) * self.tick, key)
            else:
                slot.append(entry)
            return
        heappush(self._overflow, entry)
        self._arm_overflow(now_ticks)

    def _arm_overflow(self, now_ticks: int) -> None:
        """(Re-)arm the overflow re-examination service for the current
        earliest far-future timer."""
        if not self._overflow:
            self._overflow_armed = None
            return
        top_ticks = int(self._overflow[0][0] * self._inv_tick)
        reexam_ticks = max(now_ticks + 1, top_ticks - self._horizon + 1)
        reexam = reexam_ticks * self.tick
        if self._overflow_armed is None or reexam < self._overflow_armed:
            self._overflow_armed = reexam
            self._arm(reexam, OVERFLOW)

    # -- servicing ----------------------------------------------------------

    def service(self, key: Any, now: float) -> None:
        """A service entry fired: cascade one bucket (or the overflow
        heap) toward the engine.  Dead (cancelled) entries are dropped
        here and never reach the heap."""
        now_ticks = int(now * self._inv_tick)
        if key is OVERFLOW or key == OVERFLOW:
            self._overflow_armed = None
            overflow = self._overflow
            horizon = self._horizon
            while overflow:
                top = overflow[0]
                if top[2] is None:
                    heappop(overflow)
                    continue
                if int(top[0] * self._inv_tick) - now_ticks >= horizon:
                    break
                self._place(heappop(overflow), now_ticks)
            self._arm_overflow(now_ticks)
            return
        slot = self._buckets.pop(key, None)
        if slot:
            place = self._place
            for entry in slot:
                if entry[2] is not None:
                    place(entry, now_ticks)

    # -- introspection ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Live (un-cancelled) timers still parked in the wheel — for
        tests and debugging, not the hot path."""
        n = sum(1 for slot in self._buckets.values()
                for entry in slot if entry[2] is not None)
        return n + sum(1 for entry in self._overflow
                       if entry[2] is not None)

    def __repr__(self) -> str:
        return (f"TimerWheel(tick={self.tick!r}, "
                f"buckets={len(self._buckets)}, "
                f"overflow={len(self._overflow)})")
