"""The component protocol behind the simulation graph.

Every piece of the simulated system — NIC, PCIe link, IOMMU, memory
controller, CPU threads, switch ports, transport endpoints — exposes
the same three operations:

- ``bind_metrics(registry, name)`` — register observables under a
  namespaced component label;
- ``reset_stats()`` — zero window counters at the warmup boundary
  (cache/queue *state* is always preserved);
- ``snapshot()`` — headline values as a plain dict.

:class:`Component` implements all three as recursions over a declared
``children()`` list, so composites (host, fabric, workloads, the whole
topology) no longer hand-roll fan-out loops: a composite lists its
parts once and the protocol walks the tree.  Leaves override the
``*_own_*`` hooks; composites override ``children()``.

Metric namespacing is path-style: a child named ``nic`` under a parent
bound as ``host0`` registers metrics as ``host0/nic.<metric>``.  The
empty name is the identity — a single-host graph binds with ``name=""``
and every metric keeps its historical flat name (``nic.rx_packets``),
which is what keeps single-host output bit-identical across the
refactor.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Protocol, Tuple, runtime_checkable

__all__ = ["Component", "SimComponent", "join_name"]


def join_name(prefix: str, name: str) -> str:
    """Compose a path-style metric namespace.

    The empty string is the identity on either side: a child named
    ``""`` merges into its parent's namespace, and a parent bound as
    ``""`` leaves the child's historical flat name untouched.
    """
    if not prefix:
        return name
    if not name:
        return prefix
    return f"{prefix}/{name}"


@runtime_checkable
class SimComponent(Protocol):
    """What the rest of the system may assume about any graph node."""

    def bind_metrics(self, registry, name: str = "") -> None:
        """Register observables in ``registry`` under ``name``."""

    def reset_stats(self) -> None:
        """Zero window counters; keep cache/queue state."""

    def snapshot(self) -> Dict[str, Any]:
        """Headline values for the current measurement window."""


class Component:
    """Base class implementing :class:`SimComponent` as a recursion.

    Subclasses override:

    - ``label`` — the default metric namespace when bound with no name
      (instances may set it per-object, e.g. ``cpu3``);
    - ``children()`` — ``(relative_name, component)`` pairs; a relative
      name of ``""`` merges the child into this component's namespace;
    - ``bind_own_metrics`` / ``reset_own_stats`` / ``own_snapshot`` —
      the leaf-level behaviour.
    """

    #: Default metric namespace; instances may override.
    label: str = ""

    def children(self) -> Iterable[Tuple[str, "Component"]]:
        """(relative_name, child) pairs; leaves return ()."""
        return ()

    # -- metrics ------------------------------------------------------------

    def bind_metrics(self, registry, name: str = "") -> None:
        """Register this component's and every descendant's metrics."""
        self.bind_own_metrics(registry, name or self.label)
        for child_name, child in self.children():
            child.bind_metrics(registry, join_name(name, child_name))

    def bind_own_metrics(self, registry, name: str) -> None:
        """Register this node's own observables under ``name``."""

    # -- warmup boundary ----------------------------------------------------

    def reset_stats(self) -> None:
        """Zero this component's and every descendant's window counters."""
        self.reset_own_stats()
        for _, child in self.children():
            child.reset_stats()

    def reset_own_stats(self) -> None:
        """Zero this node's own window counters."""

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Own values plus children's, keyed by relative path."""
        out: Dict[str, Any] = dict(self.own_snapshot())
        for child_name, child in self.children():
            for key, value in child.snapshot().items():
                out[join_name(child_name, key)] = value
        return out

    def own_snapshot(self) -> Dict[str, Any]:
        """This node's own headline values."""
        return {}

    def describe(self) -> Dict[str, Any]:
        """Structural summary of the subtree (debugging/docs aid)."""
        return {
            "type": type(self).__name__,
            "label": self.label,
            "children": {
                name or child.label or type(child).__name__:
                    child.describe()
                for name, child in self.children()
            },
        }
