"""Model-vs-simulation cross-validation over the operating grid.

The paper validates its Little's-law model against the testbed for the
credit-bottlenecked regime ("the observed throughput closely matches
the above model").  Here both sides are ours, so the grid is wider:
CPU-bound, line-rate-bound, interconnect-bound, and memory-contended
points all have to agree.
"""

from repro.analysis.validation import validate_model


def test_model_agrees_with_simulation(benchmark):
    report = benchmark.pedantic(
        lambda: validate_model(
            cores=(4, 8, 12, 16),
            iommu_states=(True, False),
            antagonists=(0, 15),
            warmup=4e-3,
            duration=8e-3,
        ),
        rounds=1, iterations=1)
    print()
    print(report.render())
    # Blind-spot operating points include CC-induced underutilization
    # the model doesn't capture; 20% is the agreement budget, with the
    # mean much tighter.
    assert report.mean_error < 0.10
    assert report.max_error < 0.25
