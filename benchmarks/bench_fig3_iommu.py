"""Figure 3 — IOMMU-induced host congestion vs receiver cores.

Paper: linear CPU-bound region to 8 cores (≈92 Gbps); IOMMU OFF flat
beyond; IOMMU ON declining with rising IOTLB misses once the per-thread
IOMMU footprint exceeds the 128-entry IOTLB; ≥2% drops in the regime
where Swift's 100 µs host target cannot see the congestion; and the
C/(T_base + M·T_miss) model line tracking the measurement.
"""

from conftest import run_figure_benchmark

from repro.analysis.figures import figure3


def test_figure3_iommu_contention(benchmark, output_dir):
    run_figure_benchmark(
        benchmark, figure3, output_dir, quality="quick")
