"""Ablation — NIC input-buffer size.

The blind-spot arithmetic of paper §3.1 is buffer-size dependent: with
a 1 MB buffer the maximum NIC queueing delay stays below Swift's 100 µs
host target whenever the drain rate exceeds ~84 Gbps of wire rate.  A
large enough buffer moves the full-buffer delay above the target and
Swift regains control; a smaller buffer makes drops worse.
"""

import dataclasses

from repro.core.experiment import run_experiment
from repro.core.sweep import baseline_config


def _run_with_buffer(buffer_bytes: int):
    base = baseline_config(warmup=5e-3, duration=8e-3)
    config = dataclasses.replace(
        base,
        host=dataclasses.replace(
            base.host,
            nic=dataclasses.replace(base.host.nic,
                                    buffer_bytes=buffer_bytes)))
    return run_experiment(config)


def test_buffer_size_controls_the_blind_spot(benchmark):
    sizes_mb = (0.5, 1.0, 4.0)

    def sweep():
        return {mb: _run_with_buffer(int(mb * 2**20)) for mb in sizes_mb}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'buffer (MB)':>12} {'tput (Gbps)':>12} {'drop %':>8} "
          f"{'nic delay (us)':>15}")
    for mb, result in results.items():
        print(f"{mb:>12} "
              f"{result.metrics['app_throughput_gbps']:>12.1f} "
              f"{result.metrics['drop_rate'] * 100:>8.2f} "
              f"{result.metrics['mean_nic_delay_us']:>15.1f}")
    # 4 MB of buffer exceeds the host target delay at any drain rate
    # above ~33 Gbps wire: Swift sees the congestion and drops collapse.
    assert results[4.0].metrics["drop_rate"] < \
        0.5 * max(results[0.5].metrics["drop_rate"],
                  results[1.0].metrics["drop_rate"])
