"""Figure 5 — Rx memory region size (BDP provisioning).

Paper: provisioning larger per-queue buffer pools registers more pages
with the IOMMU; misses/packet increase and throughput decreases
monotonically in region size, while the IOMMU-OFF case is flat.
"""

from conftest import run_figure_benchmark

from repro.analysis.figures import figure5


def test_figure5_region_size(benchmark, output_dir):
    run_figure_benchmark(
        benchmark, figure5, output_dir, quality="quick",
        region_mb=(4, 8, 12, 16))
