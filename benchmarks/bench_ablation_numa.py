"""Ablation — NUMA-aware antagonist scheduling (paper §4).

The paper's "rethinking congestion response": rather than reducing the
network rate when the NIC is starved at the memory controller, trigger
CPU rescheduling — move the memory-hungry application to the NUMA node
the NIC is *not* attached to.  This bench runs the Fig. 6 worst case
(15 STREAM cores) in three placements and shows the reschedule restores
NIC throughput without throttling the antagonist.
"""

import dataclasses

from repro.core.experiment import run_experiment
from repro.core.sweep import baseline_config


def _placement(local: int, remote: int):
    base = baseline_config(warmup=5e-3, duration=8e-3)
    return dataclasses.replace(
        base, host=dataclasses.replace(
            base.host, antagonist_cores=local,
            remote_antagonist_cores=remote))


def test_numa_rescheduling_restores_throughput(benchmark):
    def sweep():
        return {
            "all local (Fig. 6)": run_experiment(_placement(15, 0)),
            "split 8/7": run_experiment(_placement(8, 7)),
            "all remote (§4)": run_experiment(_placement(0, 15)),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'placement':>20} {'tput Gbps':>10} {'drop %':>7} "
          f"{'local GB/s':>11} {'remote GB/s':>12}")
    for name, result in results.items():
        m = result.metrics
        print(f"{name:>20} {m['app_throughput_gbps']:>10.1f} "
              f"{m['drop_rate'] * 100:>7.2f} "
              f"{m['memory_total_GBps']:>11.1f} "
              f"{m['remote_memory_GBps']:>12.1f}")
    local = results["all local (Fig. 6)"].metrics
    remote = results["all remote (§4)"].metrics
    # The reschedule restores NIC throughput...
    assert remote["app_throughput_gbps"] > \
        local["app_throughput_gbps"] + 15
    # ...while the antagonist still gets its bandwidth, remotely.
    assert remote["remote_memory_GBps"] > 80
    # The split case lands in between.
    split = results["split 8/7"].metrics["app_throughput_gbps"]
    assert local["app_throughput_gbps"] - 2 <= split \
        <= remote["app_throughput_gbps"] + 2
