"""Streaming-fleet memory contract: parent RSS independent of fleet
size.

The whole point of the streaming pipeline
(:meth:`repro.workload.fleet.FleetSampler.run_aggregate` over
:func:`repro.core.parallel.run_stream`) is that parent memory is
bounded by the in-flight window plus one constant-size
:class:`~repro.workload.fleet_agg.FleetAggregate` — never by the host
count.  This benchmark runs the same fluid fleet at 1k and 10k hosts
and asserts the 10x population costs at most 30% more peak RSS.

Each measurement runs in its *own subprocess* that reports its own
``ru_maxrss``: peak RSS is monotonic per process, so measuring both
fleet sizes in one interpreter would let the first run mask the
second.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

_CHILD = textwrap.dedent("""
    import json, resource, sys
    from repro.workload.fleet import FleetSampler

    n_hosts = int(sys.argv[1])
    sampler = FleetSampler(fidelity="fluid",
                           warmup=5e-4, duration=1e-3)
    aggregate = sampler.run_aggregate(n_hosts)
    print(json.dumps({
        "peak_rss_kb": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss,
        "hosts": aggregate.hosts,
        "droppers": aggregate.droppers,
    }))
""")


def fleet_peak_rss(n_hosts: int) -> dict:
    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, str(n_hosts)],
        env=env, capture_output=True, text=True, check=True)
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_fleet_rss_constant(benchmark):
    """Peak RSS at 10k hosts must stay within 1.3x of 1k hosts.

    Materialize-then-aggregate would grow parent memory ~10x here;
    the streamed fold must not.  The recorded timing is the 1k-host
    run (the regression-gated quantity); both RSS readings land in
    ``extra_info`` for trend tracking.
    """
    small = fleet_peak_rss(1_000)
    large = fleet_peak_rss(10_000)
    assert small["hosts"] == 1_000 and large["hosts"] == 10_000
    ratio = large["peak_rss_kb"] / small["peak_rss_kb"]
    benchmark.extra_info["rss_1k_kb"] = small["peak_rss_kb"]
    benchmark.extra_info["rss_10k_kb"] = large["peak_rss_kb"]
    benchmark.extra_info["rss_ratio"] = round(ratio, 4)
    assert ratio < 1.3, (
        f"peak RSS grew {ratio:.2f}x from 1k to 10k hosts "
        f"({small['peak_rss_kb']} kB -> {large['peak_rss_kb']} kB) — "
        f"the streaming pipeline is accumulating per-host state")
    benchmark.pedantic(lambda: fleet_peak_rss(1_000),
                       rounds=1, iterations=1)
