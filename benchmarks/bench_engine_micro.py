"""Micro-benchmarks of the simulation engine itself.

These are conventional pytest-benchmark measurements (many rounds):
event-dispatch throughput, IOTLB access rate, and the end-to-end
packet cost — the numbers that determine how long a figure sweep takes.
"""

import random

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
)
from repro.core.experiment import ExperimentHandle
from repro.host.iotlb import Iotlb
from repro.host.memory import weighted_water_fill
from repro.sim import Simulator


def test_event_dispatch_throughput(benchmark):
    def run_events():
        sim = Simulator()

        def chain(remaining):
            if remaining:
                sim.call(1e-9, chain, remaining - 1)

        sim.call(0.0, chain, 10_000)
        sim.run()
        return sim.events_dispatched

    dispatched = benchmark(run_events)
    assert dispatched == 10_001


def test_event_dispatch_throughput_profiled(benchmark):
    """The same dispatch chain under SimProfiler — the gap to
    ``test_event_dispatch_throughput`` is the profiler's overhead."""
    from repro.obs.profiler import SimProfiler

    def run_events():
        sim = Simulator()

        def chain(remaining):
            if remaining:
                sim.call(1e-9, chain, remaining - 1)

        sim.call(0.0, chain, 10_000)
        with SimProfiler(sim) as profiler:
            sim.run()
        return profiler

    profiler = benchmark(run_events)
    report = profiler.report()
    assert report["events"] == 10_001
    benchmark.extra_info["profiled_events_per_sec"] = round(
        report["events_per_sec"])


def test_timer_cancel_churn(benchmark):
    """Schedule-then-cancel churn through the timer wheel.

    Models the transport's RTO pattern (re-armed on every transmission,
    stale almost immediately).  Cancellation is O(1) and cancelled
    timers never reach dispatch — a heap-only engine would pop and
    discard every one of them.
    """

    def _never():
        raise AssertionError("cancelled timer dispatched")

    def churn():
        sim = Simulator()

        def step(remaining):
            if remaining:
                sim.schedule_timer(1e-3, _never).cancel()
                sim.call(1e-9, step, remaining - 1)

        sim.call(0.0, step, 10_000)
        sim.run()
        return sim.events_dispatched

    dispatched = benchmark(churn)
    # Only the live chain events count; the 10k dead timers are unseen.
    assert dispatched == 10_001


def test_iotlb_access_throughput(benchmark):
    tlb = Iotlb(entries=128, ways=16)
    rng = random.Random(0)
    keys = [rng.randrange(1 << 40) << 12 for _ in range(256)]

    def access_all():
        for key in keys:
            tlb.access(key)

    benchmark(access_all)


def test_water_fill_throughput(benchmark):
    demands = [float(i % 17 + 1) * 1e9 for i in range(32)]
    weights = [1.0 + (i % 4) for i in range(32)]

    result = benchmark(weighted_water_fill, demands, weights, 90e9)
    assert sum(result) <= 90e9 * 1.001


def test_end_to_end_packet_cost(benchmark):
    """Simulated-time per wall-second for the full workload graph."""

    def run_one_ms():
        config = ExperimentConfig(
            host=HostConfig(cpu=CpuConfig(cores=4)),
            sim=SimConfig(warmup=0.5e-3, duration=0.5e-3),
        )
        handle = ExperimentHandle(config)
        handle.run_warmup()
        handle.run_measurement()
        return handle.sim.events_dispatched

    events = benchmark.pedantic(run_one_ms, rounds=3, iterations=1)
    assert events > 1000
