"""Ablation — the paper-§4 hardware mitigation directions, realized.

Four "looking forward" what-ifs at the most congested operating point
(12 receiver cores, IOMMU ON, 15 STREAM antagonist cores):

- ATS: a device TLB on the NIC absorbs translations before they reach
  the IOMMU (paper: "efficient offload of I/O address translation").
- MBA/MPAM: reserve a memory-bandwidth slice for NIC DMA (paper:
  "mechanisms to more fairly share the memory bandwidth").
- CXL-like link: reduced per-DMA fixed latency (paper: "potentially
  reducing PCIe latency").
- Bigger IOTLB: the brute-force hardware fix.
"""

import dataclasses

from repro.core.experiment import run_experiment
from repro.core.sweep import baseline_config


def _congested_base():
    base = baseline_config(warmup=5e-3, duration=8e-3)
    return dataclasses.replace(
        base, host=dataclasses.replace(base.host, antagonist_cores=15))


def _with_host(config, **changes):
    return dataclasses.replace(
        config, host=dataclasses.replace(config.host, **changes))


def _variants():
    base = _congested_base()
    host = base.host
    return {
        "baseline": base,
        "ats-device-tlb": _with_host(
            base, iommu=dataclasses.replace(
                host.iommu, device_tlb_entries=512)),
        "mba-reservation": _with_host(
            base, memory=dataclasses.replace(
                host.memory, nic_reserved_fraction=0.25)),
        "cxl-low-latency": _with_host(
            base, pcie=dataclasses.replace(
                host.pcie, dma_fixed_latency=0.4e-6)),
        "4x-iotlb": _with_host(
            base, iommu=dataclasses.replace(
                host.iommu, iotlb_entries=512)),
    }


def test_section4_mitigations_recover_throughput(benchmark):
    def sweep():
        return {name: run_experiment(config)
                for name, config in _variants().items()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'variant':>16} {'tput (Gbps)':>12} {'drop %':>8} "
          f"{'misses/pkt':>11}")
    for name, result in results.items():
        print(f"{name:>16} "
              f"{result.metrics['app_throughput_gbps']:>12.1f} "
              f"{result.metrics['drop_rate'] * 100:>8.2f} "
              f"{result.metrics['iotlb_misses_per_packet']:>11.2f}")
    base_tput = results["baseline"].metrics["app_throughput_gbps"]
    for name in ("ats-device-tlb", "mba-reservation", "4x-iotlb"):
        assert results[name].metrics["app_throughput_gbps"] > \
            base_tput + 3, f"{name} should recover throughput"
    # ATS and a bigger IOTLB attack translations specifically.
    assert results["ats-device-tlb"].metrics[
        "iotlb_misses_per_packet"] < 0.3 * results["baseline"].metrics[
        "iotlb_misses_per_packet"]
