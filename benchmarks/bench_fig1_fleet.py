"""Figure 1 — fleet scatter of host drop rate vs link utilization.

Paper: drops correlate positively with access-link utilization, AND a
population of hosts drops packets at low utilization (memory-bus
congestion).  The bench samples a heterogeneous fleet and checks both.
"""

from conftest import run_figure_benchmark

from repro.analysis.figures import figure1


def test_figure1_fleet_scatter(benchmark, output_dir):
    run_figure_benchmark(
        benchmark, figure1, output_dir, n_hosts=60, quality="quick")
