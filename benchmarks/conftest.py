"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_fig*.py`` regenerates one evaluation figure of the paper,
prints the same series the paper plots (ASCII chart + CSV export under
``benchmarks/output/``), and asserts the DESIGN.md shape criteria via
:mod:`repro.analysis.compare`.  ``pytest benchmarks/ --benchmark-only``
runs everything.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def run_figure_benchmark(benchmark, figure_fn, output_dir, **kwargs):
    """Run one figure regeneration exactly once under pytest-benchmark.

    Figure sweeps are minutes-long simulations; a single round is the
    measurement (pedantic mode avoids pytest-benchmark's default
    auto-calibration re-runs).
    """
    from repro.analysis.compare import check_figure

    fig = benchmark.pedantic(figure_fn, kwargs=kwargs, rounds=1,
                             iterations=1)
    print()
    print(fig.render())
    findings = check_figure(fig)
    print()
    for finding in findings:
        print(finding)
    fig.to_csv_dir(output_dir)
    failed = [f for f in findings if not f.passed]
    assert not failed, "shape criteria failed: " + "; ".join(
        f.criterion for f in failed)
    return fig
