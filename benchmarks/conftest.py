"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_fig*.py`` regenerates one evaluation figure of the paper,
prints the same series the paper plots (ASCII chart + CSV export under
``benchmarks/output/``), and asserts the DESIGN.md shape criteria via
:mod:`repro.analysis.compare`.  ``pytest benchmarks/ --benchmark-only``
runs everything.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.sim.engine import Simulator

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(autouse=True)
def engine_stats(request):
    """Account engine throughput for every bench in this directory.

    Wraps ``Simulator.run`` for the duration of the test (restored on
    teardown) and accumulates events dispatched, wall time inside the
    loop, and simulated time advanced — across *all* simulators the
    bench creates (figure sweeps build one per experiment).  The totals
    land in ``benchmark.extra_info`` (``engine_events``,
    ``engine_events_per_sec``, ``sim_wall_ratio``) so every saved
    benchmark JSON carries the engine numbers alongside the timing.
    """
    stats = {"events": 0, "wall_s": 0.0, "sim_s": 0.0}
    # Resolve the benchmark fixture up front: it is torn down before
    # this autouse fixture, so it cannot be fetched during teardown.
    bench = (request.getfixturevalue("benchmark")
             if "benchmark" in request.fixturenames else None)
    original_run = Simulator.run

    def timed_run(self, until=None):
        events_before = self.events_dispatched
        now_before = self.now
        t0 = time.perf_counter()
        try:
            return original_run(self, until)
        finally:
            stats["wall_s"] += time.perf_counter() - t0
            stats["events"] += self.events_dispatched - events_before
            stats["sim_s"] += self.now - now_before

    Simulator.run = timed_run
    try:
        yield stats
    finally:
        Simulator.run = original_run
        if bench is not None and stats["wall_s"] > 0:
            bench.extra_info["engine_events"] = stats["events"]
            bench.extra_info["engine_events_per_sec"] = round(
                stats["events"] / stats["wall_s"])
            bench.extra_info["sim_wall_ratio"] = round(
                stats["sim_s"] / stats["wall_s"], 6)


def run_figure_benchmark(benchmark, figure_fn, output_dir, **kwargs):
    """Run one figure regeneration exactly once under pytest-benchmark.

    Figure sweeps are minutes-long simulations; a single round is the
    measurement (pedantic mode avoids pytest-benchmark's default
    auto-calibration re-runs).
    """
    from repro.analysis.compare import check_figure

    fig = benchmark.pedantic(figure_fn, kwargs=kwargs, rounds=1,
                             iterations=1)
    print()
    print(fig.render())
    findings = check_figure(fig)
    print()
    for finding in findings:
        print(finding)
    fig.to_csv_dir(output_dir)
    failed = [f for f in findings if not f.passed]
    assert not failed, "shape criteria failed: " + "; ".join(
        f.criterion for f in failed)
    return fig
