"""Ablation — Swift's host target delay (paper §4).

The paper argues that "simply using a lower host target delay would not
resolve the problem": with CC reacting at RTT timescale, hundreds of
incast flows keep more than a NIC buffer's worth of bytes in flight
regardless of the target.  This bench sweeps the target at the 12-core
IOMMU-ON operating point and shows drops persist across targets.
"""

import dataclasses

from repro.core.experiment import run_experiment
from repro.core.sweep import baseline_config


def _run_with_target(host_target: float):
    base = baseline_config(warmup=5e-3, duration=8e-3)
    config = dataclasses.replace(
        base, swift=dataclasses.replace(base.swift,
                                        host_target=host_target))
    return run_experiment(config)


def test_lower_host_target_does_not_eliminate_drops(benchmark):
    targets_us = (50, 100, 200)

    def sweep():
        return {t: _run_with_target(t * 1e-6) for t in targets_us}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'target (us)':>12} {'tput (Gbps)':>12} {'drop %':>8}")
    for t, result in results.items():
        print(f"{t:>12} "
              f"{result.metrics['app_throughput_gbps']:>12.1f} "
              f"{result.metrics['drop_rate'] * 100:>8.2f}")
    # Paper claim: drops persist even at half the target.
    assert results[50].metrics["drop_rate"] > 0.005
    assert results[100].metrics["drop_rate"] > 0.005
