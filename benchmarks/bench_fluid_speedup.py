"""Fluid-vs-packet CPU-time speedup on the figure-3 grid.

The fluid engine exists to buy orders of magnitude: the packet kernel
dispatches one event per packet (~10^6 events per figure-3 point at
quick quality) while the fluid solver takes ~400 RTT-scale steps.
This bench runs the *same* expanded config grid through both engines
back to back and asserts the paired CPU-time speedup stays at or above
the 25x floor promised in DESIGN.md — the contract that makes fluid
worth cross-validating at all.

The fluid grid's median also lands in ``benchmarks/baseline.json`` via
``scripts/check_bench_regression.py``, so a fluid-solver slowdown trips
the same gate as a packet-kernel one.
"""

from __future__ import annotations

import time

from repro.core.scenario import load_bundled
from repro.core.sweep import run_sweep

#: Floor on paired CPU-time speedup (packet CPU / fluid CPU) over the
#: figure-3 quick grid.  Measured ~100-300x; 25x leaves room for
#: shared-runner noise without ever letting fluid degrade into a
#: second packet engine.
MIN_SPEEDUP = 25.0


def _grid(fidelity: str):
    return load_bundled("figure3").expand(quality="quick",
                                          fidelity=fidelity)


def _cpu_time(configs) -> float:
    start = time.process_time()
    run_sweep(configs)
    return time.process_time() - start


def test_fluid_speedup_figure3(benchmark):
    packet_cpu = _cpu_time(_grid("packet"))
    fluid_configs = _grid("fluid")

    table = benchmark(run_sweep, fluid_configs)
    assert len(table) == len(fluid_configs)

    fluid_cpu = max(_cpu_time(fluid_configs), 1e-9)
    speedup = packet_cpu / fluid_cpu
    benchmark.extra_info["packet_cpu_s"] = round(packet_cpu, 3)
    benchmark.extra_info["fluid_cpu_s"] = round(fluid_cpu, 4)
    benchmark.extra_info["speedup_x"] = round(speedup, 1)
    print(f"\nfluid speedup on figure3 grid "
          f"({len(fluid_configs)} points): packet {packet_cpu:.2f}s "
          f"CPU vs fluid {fluid_cpu * 1e3:.1f}ms CPU = {speedup:.0f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"fluid engine is only {speedup:.1f}x faster than packet on "
        f"the figure3 grid (floor {MIN_SPEEDUP}x)")
