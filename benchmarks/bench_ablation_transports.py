"""Ablation — transport protocols at the host-congestion operating
point (12 cores, IOMMU ON).

- Swift: the paper's protocol — blind below its host target, ~2-4%
  steady drops.
- CUBIC: loss-only — no delay signal at all, drops at least as high.
- HostCC (paper §4 extension): sub-RTT response to explicit NIC-buffer
  occupancy — drops collapse by an order of magnitude while throughput
  stays at the interconnect limit.
"""

import dataclasses

from repro.core.experiment import run_experiment
from repro.core.sweep import baseline_config


def _run_with_transport(transport: str):
    base = baseline_config(warmup=5e-3, duration=8e-3)
    return run_experiment(dataclasses.replace(base, transport=transport))


def test_host_signal_cc_removes_the_blind_spot(benchmark):
    transports = ("swift", "cubic", "dctcp", "hostcc")

    def sweep():
        return {t: _run_with_transport(t) for t in transports}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'transport':>10} {'tput (Gbps)':>12} {'drop %':>8} "
          f"{'p99 read latency (us)':>22}")
    for t, result in results.items():
        print(f"{t:>10} "
              f"{result.metrics['app_throughput_gbps']:>12.1f} "
              f"{result.metrics['drop_rate'] * 100:>8.2f} "
              f"{result.message_latency_us['p99']:>22.1f}")
    swift_drop = results["swift"].metrics["drop_rate"]
    hostcc_drop = results["hostcc"].metrics["drop_rate"]
    assert swift_drop > 0.005, "Swift should show blind-spot drops"
    assert hostcc_drop < 0.3 * swift_drop, \
        "host-signal CC should collapse drops"
    # ...without giving up meaningful throughput (within 15%).
    assert results["hostcc"].metrics["app_throughput_gbps"] > \
        0.85 * results["swift"].metrics["app_throughput_gbps"]
