"""Worker-count scaling of the parallel sweep runner.

One bench per worker count over the same Figure-3-shaped receiver-core
sweep, recording wall time plus ``extra_info`` (worker count, runs,
speedup vs the serial baseline measured in the same session) — the
trajectory the CI benchmark-smoke job uploads on every PR.

The speedup assertion is deliberately loose (sweeps carry fork +
pickle overhead and CI runners are noisy) and only armed on machines
with enough cores to show parallelism at all.
"""

import os
import time

import pytest

from repro.core.sweep import baseline_config, sweep_receiver_cores

CORES = (2, 4, 6, 8)

_serial_wall: dict = {}


def _sweep(workers):
    base = baseline_config(warmup=1e-3, duration=2e-3)
    return sweep_receiver_cores(cores=CORES, iommu_states=(True,),
                                base=base, workers=workers)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sweep_worker_scaling(benchmark, workers):
    if workers > (os.cpu_count() or 1):
        pytest.skip(f"machine has fewer than {workers} cores")
    start = time.perf_counter()
    table = benchmark.pedantic(_sweep, args=(workers,), rounds=1,
                               iterations=1)
    wall = time.perf_counter() - start
    if workers == 1:
        _serial_wall["wall"] = wall
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["runs"] = len(table)
    if "wall" in _serial_wall:
        benchmark.extra_info["speedup_vs_serial"] = round(
            _serial_wall["wall"] / wall, 3)
    assert len(table) == len(CORES)
    assert not table.failures()


def test_parallel_speedup_vs_serial(benchmark):
    """Loose wall-clock gate: 4 workers must beat serial by >= 1.6x.

    (The determinism CI job checks *exact* table equality; this bench
    checks the time side of the acceptance bar on >= 4-core runners.)
    """
    if (os.cpu_count() or 1) < 4:
        pytest.skip("speedup gate needs >= 4 cores")

    start = time.perf_counter()
    serial = _sweep(workers=1)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    parallel = benchmark.pedantic(_sweep, args=(4,), rounds=1,
                                  iterations=1)
    parallel_wall = time.perf_counter() - start

    benchmark.extra_info["serial_wall_s"] = round(serial_wall, 3)
    benchmark.extra_info["parallel_wall_s"] = round(parallel_wall, 3)
    benchmark.extra_info["speedup"] = round(serial_wall / parallel_wall,
                                            3)
    assert serial == parallel  # bit-identical tables
    assert parallel_wall < 0.625 * serial_wall, (
        f"4-worker sweep took {parallel_wall:.2f}s vs "
        f"{serial_wall:.2f}s serial — expected >= 1.6x speedup")
