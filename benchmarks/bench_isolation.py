"""Isolation study — the paper's §1 application-level claims.

"host congestion ... can lead to hundreds of microseconds of tail
latency, significant throughput drop, and violation of isolation
properties due to packet drops" — all applications share the NIC
buffer where the drops land.

One small-RPC victim per receiver thread shares the host with elephant
reads; the bench compares victim tail latency between a lightly-loaded
host and the paper's congested baseline (12 cores, IOMMU on).
"""

from repro.core.sweep import baseline_config
from repro.workload.isolation import congested_vs_uncongested


def test_host_congestion_violates_isolation(benchmark):
    base = baseline_config(warmup=5e-3, duration=8e-3)

    results = benchmark.pedantic(
        lambda: congested_vs_uncongested(base), rounds=1, iterations=1)
    congested = results["congested"]
    clean = results["uncongested"]
    print()
    print(f"{'case':>12} {'drop %':>7} {'victim p50':>11} "
          f"{'victim p99':>11} {'elephant p99':>13}")
    for name, r in results.items():
        print(f"{name:>12} {r.drop_rate * 100:>7.2f} "
              f"{r.victim.p50:>11.1f} {r.victim.p99:>11.1f} "
              f"{r.elephant.p99:>13.1f}")
    penalty = congested.victim_penalty_p99(clean)
    print(f"\nvictim p99 penalty: {penalty:.1f}x")
    # Hundreds of microseconds of tail latency for innocent RPCs.
    assert congested.victim.p99 > 100.0
    assert penalty > 2.0
    # The baseline really is clean.
    assert clean.drop_rate < 0.001
