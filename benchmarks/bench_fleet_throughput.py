"""Fleet throughput contract: the batched fluid backend must stay an
order of magnitude faster than the scalar one.

PR 9's tentpole (:class:`repro.sim.fluid_batch.BatchFluidSolver` plus
cohort-ranged fleet execution) exists to turn the million-host Figure 1
run from hours into minutes.  This bench runs the *same* figure-1
population (default ``FleetSampler`` warmup/duration, identical seed)
through both backends single-worker and asserts the hosts/s ratio stays
at or above the 10x floor from ISSUE 9 — measured ~13-14x at batch
size 8192, so the floor leaves room for runner noise without letting
the batch degrade into a second scalar path.

The batched wall time also lands in ``benchmarks/baseline.json`` via
``scripts/check_bench_regression.py`` (GATED_PREFIXES), so a slowdown
in the vectorized step, the cohort grouper, or the in-worker config
rebuild trips the same gate as a kernel regression.

Both measurements use ``workers=1``: the ratio under test is the
per-process execution model (array stepping + range tasks vs one
Python solver + one pool task per host), not pool scaling, and a
single-process A/B keeps the bench deterministic on shared runners.
"""

from __future__ import annotations

import time

from repro.workload.fleet import FleetSampler

#: Floor on single-worker hosts/s (batched / scalar) over the default
#: figure-1 fleet population.  ISSUE 9's acceptance bar.
MIN_RATIO = 10.0

#: Scalar hosts measured: enough for a stable per-host cost (the
#: population repeats every 20 indices) while keeping the A-leg a
#: ~1 s run.
SCALAR_HOSTS = 384

#: Batched hosts and batch size: one full-size chunk, large enough to
#: amortize per-chunk overheads (config rebuild, solver harvest,
#: aggregate fold) the way a million-host run would.
BATCHED_HOSTS = 8192


def _hosts_per_s(n_hosts: int, backend: str, batch_size: int) -> float:
    sampler = FleetSampler(fidelity="fluid")
    start = time.perf_counter()
    aggregate = sampler.run_aggregate(
        n_hosts, workers=1, backend=backend, batch_size=batch_size)
    elapsed = time.perf_counter() - start
    assert aggregate.hosts == n_hosts
    return n_hosts / elapsed


def test_fleet_throughput_batched_vs_scalar(benchmark):
    """Batched fluid fleet must sustain >=10x scalar hosts/s.

    The gated (baseline.json) quantity is the batched run's wall
    time; the measured ratio and both absolute rates land in
    ``extra_info`` so README numbers stay reproducible.
    """
    scalar_rate = _hosts_per_s(SCALAR_HOSTS, "scalar", BATCHED_HOSTS)
    batched_rate = _hosts_per_s(BATCHED_HOSTS, "batched", BATCHED_HOSTS)
    ratio = batched_rate / scalar_rate

    benchmark.extra_info["scalar_hosts_per_s"] = round(scalar_rate)
    benchmark.extra_info["batched_hosts_per_s"] = round(batched_rate)
    benchmark.extra_info["ratio_x"] = round(ratio, 1)
    print(f"\nfleet throughput (figure-1 population, workers=1): "
          f"scalar {scalar_rate:.0f} hosts/s vs batched "
          f"{batched_rate:.0f} hosts/s = {ratio:.1f}x")
    assert ratio >= MIN_RATIO, (
        f"batched fluid fleet is only {ratio:.1f}x scalar "
        f"({batched_rate:.0f} vs {scalar_rate:.0f} hosts/s, "
        f"floor {MIN_RATIO}x)")

    benchmark.pedantic(
        lambda: _hosts_per_s(BATCHED_HOSTS, "batched", BATCHED_HOSTS),
        rounds=1, iterations=1)
