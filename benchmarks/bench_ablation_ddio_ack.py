"""Ablation — DDIO and ACK coalescing (DESIGN.md §6 knobs 4-5).

- DDIO off: receiver copies read from DRAM instead of LLC, adding
  ~8 GB/s of read demand at full rate — the memory bus saturates with
  fewer antagonist cores.
- ACK coalescing: fewer ACK transmissions mean fewer Tx-side IOTLB
  accesses per received packet.
"""

import dataclasses

from repro.core.experiment import run_experiment
from repro.core.sweep import baseline_config


def _with_host(config, **changes):
    return dataclasses.replace(
        config, host=dataclasses.replace(config.host, **changes))


def test_ddio_off_increases_memory_pressure(benchmark):
    base = baseline_config(warmup=5e-3, duration=8e-3)
    congested = _with_host(base, antagonist_cores=12)

    def sweep():
        off = _with_host(
            congested,
            ddio=dataclasses.replace(congested.host.ddio, enabled=False))
        return {
            "ddio-on": run_experiment(congested),
            "ddio-off": run_experiment(off),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for name, result in results.items():
        print(f"{name:>9}: tput={result.metrics['app_throughput_gbps']:.1f} "
              f"Gbps, mem util={result.metrics['memory_utilization']:.2f}")
    assert results["ddio-off"].metrics["memory_utilization"] > \
        results["ddio-on"].metrics["memory_utilization"]
    assert results["ddio-off"].metrics["app_throughput_gbps"] < \
        results["ddio-on"].metrics["app_throughput_gbps"] + 1


def test_ack_coalescing_reduces_iotlb_pressure(benchmark):
    base = baseline_config(warmup=5e-3, duration=8e-3)

    def sweep():
        coalesced = _with_host(
            base, nic=dataclasses.replace(base.host.nic,
                                          ack_coalescing=4))
        return {
            "per-packet acks": run_experiment(base),
            "4:1 coalescing": run_experiment(coalesced),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for name, result in results.items():
        print(f"{name:>16}: "
              f"misses/pkt={result.metrics['iotlb_misses_per_packet']:.2f} "
              f"tput={result.metrics['app_throughput_gbps']:.1f}")
    assert results["4:1 coalescing"].metrics[
        "iotlb_misses_per_packet"] < results["per-packet acks"].metrics[
        "iotlb_misses_per_packet"]
