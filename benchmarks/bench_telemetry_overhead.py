"""Telemetry-plane overhead: sampler and ledger A/B measurements.

The telemetry plane's contract is "free when off, cheap when on":
``sample_interval=None`` (the default) builds no sampler, no bus, and
no capture subscription, so the hot path is untouched; enabled, the
drift-free sampler and the JSONL ledger sink must stay within a small
single-digit-percent budget.  The paired test interleaves off/on runs
(A/B/A/B) so machine drift hits both arms equally, and asserts a
CI-safe 1.25x ceiling while reporting the measured ratio — locally the
ratio sits well under the 1.05x acceptance target.
"""

import statistics
import time

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.core.experiment import run_experiment
from repro.core.ledger import LedgerWriter
from repro.core.parallel import run_many


def bench_config(seed=3, sample_interval=None):
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=8)),
        workload=WorkloadConfig(senders=20),
        sim=SimConfig(warmup=1e-3, duration=3e-3, seed=seed,
                      sample_interval=sample_interval),
    )


def test_experiment_telemetry_off(benchmark):
    """Baseline: one experiment with the sampler disabled (default)."""
    result = benchmark.pedantic(
        lambda: run_experiment(bench_config()),
        rounds=5, iterations=1, warmup_rounds=1)
    assert result.metrics["packets_sent"] > 0


def test_experiment_telemetry_on(benchmark):
    """Same experiment polling every 50 us of sim time (~80 ticks)."""
    result = benchmark.pedantic(
        lambda: run_experiment(bench_config(sample_interval=5e-5)),
        rounds=5, iterations=1, warmup_rounds=1)
    assert result.metrics["packets_sent"] > 0


def test_sampler_overhead_budget(benchmark):
    """Paired off/on comparison with a hard ceiling.

    Interleaved arms, median-of-7 each; the ratio lands in
    ``extra_info`` for trend tracking and must stay under 1.25x (the
    acceptance target is 1.05x; the CI margin absorbs shared-runner
    noise).  The two arms must also produce identical metrics — the
    non-perturbation half of the contract, re-checked where the
    overhead is measured.
    """
    off_times, on_times = [], []
    baseline_metrics = sampled_metrics = None
    for _ in range(7):
        t0 = time.perf_counter()
        baseline_metrics = run_experiment(bench_config()).metrics
        off_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        sampled_metrics = run_experiment(
            bench_config(sample_interval=5e-5)).metrics
        on_times.append(time.perf_counter() - t0)
    assert sampled_metrics == baseline_metrics
    off = statistics.median(off_times)
    on = statistics.median(on_times)
    ratio = on / off
    benchmark.extra_info["median_off_s"] = round(off, 6)
    benchmark.extra_info["median_on_s"] = round(on, 6)
    benchmark.extra_info["on_off_ratio"] = round(ratio, 4)
    assert ratio < 1.25, (
        f"sampler overhead {ratio:.3f}x exceeds the 1.25x ceiling "
        f"(off={off:.4f}s on={on:.4f}s)")
    # Record the on-arm as the benchmark's own timing.
    benchmark.pedantic(
        lambda: run_experiment(bench_config(sample_interval=5e-5)),
        rounds=3, iterations=1)


def test_ledger_sink_overhead(benchmark, tmp_path):
    """run_many with a ledger sink vs without, on the same 3 configs.

    The sink costs one JSON encode + line write per lifecycle event —
    a handful of events per multi-second run — so the paired ratio
    must also hold under the 1.25x ceiling.
    """
    configs = [bench_config(seed=s) for s in (3, 4, 5)]
    plain_times, sink_times = [], []
    for i in range(5):
        t0 = time.perf_counter()
        run_many(list(configs))
        plain_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        with LedgerWriter(tmp_path, label=f"bench-{i}") as ledger:
            run_many(list(configs), events=ledger)
        sink_times.append(time.perf_counter() - t0)
    plain = statistics.median(plain_times)
    sink = statistics.median(sink_times)
    ratio = sink / plain
    benchmark.extra_info["median_plain_s"] = round(plain, 6)
    benchmark.extra_info["median_ledger_s"] = round(sink, 6)
    benchmark.extra_info["ledger_ratio"] = round(ratio, 4)
    assert ratio < 1.25, (
        f"ledger overhead {ratio:.3f}x exceeds the 1.25x ceiling")
    benchmark.pedantic(
        lambda: run_many(list(configs)), rounds=3, iterations=1)
