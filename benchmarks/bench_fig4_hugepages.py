"""Figure 4 — hugepages enabled vs disabled.

Paper: 4 KB mappings multiply the registered pages by 512 and make each
packet span two payload pages, so the interconnect bottleneck arrives
at fewer cores and throughput degrades a further >30%; misses reach
4-6/packet.
"""

from conftest import run_figure_benchmark

from repro.analysis.figures import figure4


def test_figure4_hugepages(benchmark, output_dir):
    run_figure_benchmark(
        benchmark, figure4, output_dir, quality="quick",
        cores=(2, 6, 8, 12, 16))
