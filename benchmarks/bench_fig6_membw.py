"""Figure 6 — memory-bus contention from STREAM antagonists.

Paper: total memory bandwidth grows ~linearly then saturates near
90 GB/s; IOMMU-OFF throughput degrades ~15% only near saturation;
IOMMU-ON starts lower and ends near 60 Gbps (~25-35% degradation);
drops are elevated under contention until Swift's host target engages.
"""

from conftest import run_figure_benchmark

from repro.analysis.figures import figure6


def test_figure6_memory_antagonism(benchmark, output_dir):
    run_figure_benchmark(
        benchmark, figure6, output_dir, quality="quick",
        antagonists=(0, 2, 6, 10, 15))
