"""Tests for the model sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import Elasticity, sensitivity_analysis
from repro.core.config import CpuConfig, ExperimentConfig, HostConfig


def config(cores=16):
    return ExperimentConfig(host=HostConfig(cpu=CpuConfig(cores=cores)))


def by_name(elasticities):
    return {e.parameter: e for e in elasticities}


class TestSensitivity:
    def test_interconnect_bound_point_responds_to_credits(self):
        # At high miss rates the credit window is the binding term.
        result = by_name(sensitivity_analysis(config(), 3.0))
        assert result["pcie_credits"].elasticity > 0.5
        assert result["walk_latency"].elasticity < -0.2
        assert result["dma_fixed_latency"].elasticity < 0

    def test_cpu_bound_point_only_cares_about_cores(self):
        result = by_name(sensitivity_analysis(config(cores=4), 0.0))
        assert result["core_rate"].elasticity == pytest.approx(1.0,
                                                               abs=0.05)
        assert result["pcie_credits"].elasticity == pytest.approx(
            0.0, abs=0.01)

    def test_line_rate_bound_point_is_insensitive(self):
        # 12 cores, no misses: the access link is the binding bound.
        result = by_name(sensitivity_analysis(config(cores=12), 0.0))
        for name in ("pcie_credits", "walk_latency", "core_rate"):
            assert abs(result[name].elasticity) < 0.05, name

    def test_sorted_by_magnitude(self):
        result = sensitivity_analysis(config(), 3.0)
        magnitudes = [abs(e.elasticity) for e in result]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_subset_of_parameters(self):
        result = sensitivity_analysis(config(), 2.0,
                                      parameters=["walk_latency"])
        assert len(result) == 1
        assert result[0].parameter == "walk_latency"

    def test_str_rendering(self):
        (e,) = sensitivity_analysis(config(), 2.0,
                                    parameters=["pcie_credits"])
        assert "pcie_credits" in str(e)
        assert isinstance(e, Elasticity)

    def test_validation(self):
        with pytest.raises(ValueError):
            sensitivity_analysis(config(), 2.0, step=0.0)
        with pytest.raises(ValueError):
            sensitivity_analysis(config(), 2.0,
                                 parameters=["not_a_knob"])
