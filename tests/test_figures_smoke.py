"""Smoke tests of the figure-regeneration pipeline on tiny grids.

Full-scale regeneration (with shape assertions) lives in
``benchmarks/``; these tests only verify plumbing: panels present,
series shaped correctly, CSV export working.
"""

import os
import pathlib

import pytest

from repro.analysis.figures import figure3, figure5, figure6


@pytest.fixture(scope="module")
def fig3_tiny():
    return figure3(quality="quick", cores=(2, 10))


def test_figure3_panels_and_series(fig3_tiny):
    assert set(fig3_tiny.panels) == {"throughput", "drop rate",
                                     "iotlb misses"}
    _, _, tput_series = fig3_tiny.panels["throughput"]
    labels = [s.label for s in tput_series]
    assert "App Throughput -- IOMMU ON" in labels
    assert "App Throughput -- IOMMU OFF" in labels
    assert "Max Achievable Throughput" in labels
    for series in tput_series:
        if series.label.startswith("App"):
            assert series.x == (2.0, 10.0)


def test_figure3_model_line_only_in_bottleneck_regime(fig3_tiny):
    _, _, tput_series = fig3_tiny.panels["throughput"]
    (model,) = [s for s in tput_series if s.label.startswith("Modeled")]
    assert all(x >= 10 for x in model.x)


def test_figure3_render_and_csv(fig3_tiny, tmp_path):
    out = fig3_tiny.render()
    assert "figure3" in out
    paths = fig3_tiny.to_csv_dir(tmp_path)
    assert len(paths) == 3
    throughput_csv = (tmp_path / "figure3_throughput.csv").read_text()
    assert throughput_csv.startswith("receiver cores,")


def test_figure5_tiny_grid():
    fig = figure5(quality="quick", region_mb=(4, 16))
    _, _, misses = fig.panels["iotlb misses"]
    (on,) = misses
    assert on.x == (4.0, 16.0)
    assert on.y[1] > on.y[0]  # more region, more misses


def test_figure6_tiny_grid():
    fig = figure6(quality="quick", antagonists=(0, 15))
    _, _, bw = fig.panels["memory bandwidth"]
    for series in bw:
        lookup = dict(zip(series.x, series.y))
        assert lookup[15.0] > lookup[0.0]


def test_bad_quality_rejected():
    with pytest.raises(ValueError):
        figure3(quality="ultra")


# ---------------------------------------------------------------------------
# Byte-identity regression: the scenario-driven figure path must
# reproduce the CSVs the pre-scenario code wrote.
# ---------------------------------------------------------------------------

_GOLDEN_DIR = pathlib.Path(__file__).parent / "data" / "figure3_tiny_golden"
_FIG3_CSVS = ("figure3_throughput.csv", "figure3_drop_rate.csv",
              "figure3_iotlb_misses.csv")


def test_figure3_csvs_byte_identical_to_pre_scenario_goldens(
        fig3_tiny, tmp_path):
    """The goldens were captured with the hand-rolled loop code at the
    same grid/seed/quality; the spec-driven path must match them
    byte for byte."""
    fig3_tiny.to_csv_dir(tmp_path)
    for name in _FIG3_CSVS:
        assert (tmp_path / name).read_bytes() == \
            (_GOLDEN_DIR / name).read_bytes(), name


@pytest.mark.skipif(not os.environ.get("REPRO_FULL_GOLDEN"),
                    reason="full-quality golden check is opt-in "
                           "(REPRO_FULL_GOLDEN=1); ~1 min of runs")
def test_figure3_full_quality_matches_committed_results(tmp_path):
    results = pathlib.Path(__file__).parent.parent / "results"
    fig = figure3(quality="full")
    fig.to_csv_dir(tmp_path)
    for name in _FIG3_CSVS:
        assert (tmp_path / name).read_bytes() == \
            (results / name).read_bytes(), name
