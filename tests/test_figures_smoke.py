"""Smoke tests of the figure-regeneration pipeline on tiny grids.

Full-scale regeneration (with shape assertions) lives in
``benchmarks/``; these tests only verify plumbing: panels present,
series shaped correctly, CSV export working.
"""

import pytest

from repro.analysis.figures import figure3, figure5, figure6


@pytest.fixture(scope="module")
def fig3_tiny():
    return figure3(quality="quick", cores=(2, 10))


def test_figure3_panels_and_series(fig3_tiny):
    assert set(fig3_tiny.panels) == {"throughput", "drop rate",
                                     "iotlb misses"}
    _, _, tput_series = fig3_tiny.panels["throughput"]
    labels = [s.label for s in tput_series]
    assert "App Throughput -- IOMMU ON" in labels
    assert "App Throughput -- IOMMU OFF" in labels
    assert "Max Achievable Throughput" in labels
    for series in tput_series:
        if series.label.startswith("App"):
            assert series.x == (2.0, 10.0)


def test_figure3_model_line_only_in_bottleneck_regime(fig3_tiny):
    _, _, tput_series = fig3_tiny.panels["throughput"]
    (model,) = [s for s in tput_series if s.label.startswith("Modeled")]
    assert all(x >= 10 for x in model.x)


def test_figure3_render_and_csv(fig3_tiny, tmp_path):
    out = fig3_tiny.render()
    assert "figure3" in out
    paths = fig3_tiny.to_csv_dir(tmp_path)
    assert len(paths) == 3
    throughput_csv = (tmp_path / "figure3_throughput.csv").read_text()
    assert throughput_csv.startswith("receiver cores,")


def test_figure5_tiny_grid():
    fig = figure5(quality="quick", region_mb=(4, 16))
    _, _, misses = fig.panels["iotlb misses"]
    (on,) = misses
    assert on.x == (4.0, 16.0)
    assert on.y[1] > on.y[0]  # more region, more misses


def test_figure6_tiny_grid():
    fig = figure6(quality="quick", antagonists=(0, 15))
    _, _, bw = fig.panels["memory bandwidth"]
    for series in bw:
        lookup = dict(zip(series.x, series.y))
        assert lookup[15.0] > lookup[0.0]


def test_bad_quality_rejected():
    with pytest.raises(ValueError):
        figure3(quality="ultra")
