"""Integration tests for the experiment runner, sweeps, and workload."""

import pytest

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.core.experiment import ExperimentHandle, run_experiment
from repro.core.sweep import (
    baseline_config,
    sweep_antagonist_cores,
    sweep_receiver_cores,
    sweep_region_size,
)


def tiny_config(cores=4, senders=8, **kwargs):
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=cores)),
        workload=WorkloadConfig(senders=senders),
        sim=SimConfig(warmup=1e-3, duration=2e-3, seed=3),
        **kwargs,
    )


class TestWorkloadGraph:
    def test_one_connection_per_thread_per_sender(self):
        handle = ExperimentHandle(tiny_config(cores=3, senders=5))
        assert len(handle.workload.connections) == 15
        flow_ids = [c.flow_id for c in handle.workload.connections]
        assert len(set(flow_ids)) == 15

    def test_threads_and_senders_mapped(self):
        handle = ExperimentHandle(tiny_config(cores=2, senders=3))
        for conn in handle.workload.connections:
            assert 0 <= conn.thread_id < 2
            assert 0 <= conn.sender_id < 3


class TestRunExperiment:
    def test_produces_traffic_and_metrics(self):
        result = run_experiment(tiny_config())
        assert result.metrics["app_throughput_gbps"] > 10
        assert result.metrics["packets_sent"] > 100
        assert result.metrics["messages_completed"] > 0
        assert 0 <= result.metrics["drop_rate"] < 0.5
        assert result.message_latency_us["p99"] > 0

    def test_deterministic_for_same_seed(self):
        a = run_experiment(tiny_config())
        b = run_experiment(tiny_config())
        assert a.metrics == b.metrics

    def test_different_seeds_differ(self):
        # Needs an operating point where randomness matters: at 12
        # cores the IOTLB thrashes, and miss patterns are seed-driven.
        def config(seed):
            return ExperimentConfig(
                host=HostConfig(cpu=CpuConfig(cores=12)),
                sim=SimConfig(warmup=1e-3, duration=2e-3, seed=seed))

        a = run_experiment(config(3))
        b = run_experiment(config(99))
        assert a.metrics != b.metrics

    def test_handle_out_exposes_internals(self):
        handles = []
        run_experiment(tiny_config(), handle_out=handles)
        (handle,) = handles
        assert handle.host.nic.dma_completed_packets > 0

    def test_transport_selectable(self):
        for transport in ("swift", "dctcp", "cubic", "hostcc"):
            result = run_experiment(tiny_config(transport=transport))
            assert result.metrics["app_throughput_gbps"] > 5, transport

    def test_warmup_excluded_from_metrics(self):
        handle = ExperimentHandle(tiny_config())
        handle.run_warmup()
        assert handle.host.nic.rx_packets == 0  # stats reset
        handle.run_measurement()
        result = handle.collect()
        # Throughput computed over the measurement window only.
        assert result.metrics["app_throughput_gbps"] > 10


class TestSweeps:
    def test_receiver_core_sweep_layout(self):
        base = baseline_config(warmup=0.5e-3, duration=1e-3)
        table = sweep_receiver_cores(cores=(2, 4), base=base)
        assert len(table) == 4  # 2 cores × 2 iommu states
        assert sorted(set(table.column("cores"))) == [2, 4]
        assert sorted(set(table.column("iommu"))) == [False, True]

    def test_region_sweep_layout(self):
        base = baseline_config(warmup=0.5e-3, duration=1e-3)
        table = sweep_region_size(region_mb=(4, 8),
                                  iommu_states=(True,), base=base)
        assert len(table) == 2
        assert table.column("rx_region_mb") == [4.0, 8.0]

    def test_antagonist_sweep_layout(self):
        base = baseline_config(warmup=0.5e-3, duration=1e-3)
        table = sweep_antagonist_cores(antagonists=(0, 15),
                                       iommu_states=(False,), base=base)
        assert len(table) == 2
        assert table.column("antagonist_cores") == [0, 15]

    def test_progress_callback_invoked(self):
        base = baseline_config(warmup=0.5e-3, duration=1e-3)
        seen = []
        sweep_receiver_cores(cores=(2,), iommu_states=(True,), base=base,
                             progress=lambda i, r: seen.append(i))
        assert seen == [0]


class TestCpuBoundRegion:
    @pytest.mark.parametrize("cores", [2, 4])
    def test_throughput_tracks_core_count(self, cores):
        config = ExperimentConfig(
            host=HostConfig(cpu=CpuConfig(cores=cores)),
            sim=SimConfig(warmup=2e-3, duration=3e-3, seed=1),
        )
        result = run_experiment(config)
        expected = cores * 11.5
        assert result.metrics["app_throughput_gbps"] == pytest.approx(
            expected, rel=0.05)
