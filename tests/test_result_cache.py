"""On-disk result cache: keying, hit/miss/invalidation, sweep wiring."""

import dataclasses

from repro.core.cache import (
    CODE_VERSION,
    ResultCache,
    config_digest,
    default_cache_dir,
)
from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.core.experiment import run_experiment
from repro.core.sweep import baseline_config, sweep_receiver_cores


def tiny_config(seed=3, cores=2):
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=cores)),
        workload=WorkloadConfig(senders=4),
        sim=SimConfig(warmup=0.5e-3, duration=1e-3, seed=seed),
    )


class TestDigest:
    def test_stable_across_instances(self):
        assert config_digest(tiny_config()) == config_digest(tiny_config())

    def test_sensitive_to_any_nested_field(self):
        base = tiny_config()
        deep = dataclasses.replace(
            base, host=dataclasses.replace(
                base.host, iommu=dataclasses.replace(
                    base.host.iommu, walk_cache_entries=33)))
        assert config_digest(base) != config_digest(deep)
        assert config_digest(base) != config_digest(tiny_config(seed=4))

    def test_sensitive_to_code_version_salt(self):
        config = tiny_config()
        assert config_digest(config, salt=CODE_VERSION) \
            != config_digest(config, salt="other-code-version")

    def test_default_dir_respects_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert default_cache_dir() == tmp_path / "c"


class TestHitMiss:
    def test_roundtrip_is_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = tiny_config()
        result = run_experiment(config)
        cache.put(config, result)
        hit = cache.get(config)
        assert hit is not None
        assert hit.result == result  # bit-exact through JSON floats
        assert cache.hits == 1

    def test_miss_on_unknown_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(tiny_config()) is None
        assert cache.misses == 1

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = tiny_config()
        cache.put(config, run_experiment(config))
        assert cache.get(tiny_config(seed=99)) is None
        assert cache.get(tiny_config(cores=4)) is None

    def test_salt_change_invalidates(self, tmp_path):
        config = tiny_config()
        ResultCache(tmp_path).put(config, run_experiment(config))
        assert ResultCache(tmp_path, salt="v2").get(config) is None

    def test_snapshot_wanting_lookup_skips_bare_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = tiny_config()
        result = run_experiment(config)
        cache.put(config, result, snapshot=None)
        assert cache.get(config, want_snapshot=True) is None
        # Upgrading the entry in place satisfies later lookups.
        cache.put(config, result, snapshot={"meta": {}})
        assert cache.get(config, want_snapshot=True).snapshot \
            == {"meta": {}}

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in (1, 2, 3):
            config = tiny_config(seed=seed)
            cache.put(config, run_experiment(config))
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert cache.clear() == 3
        assert cache.stats().entries == 0


class TestSweepWiring:
    def test_second_sweep_is_all_hits_and_identical(self, tmp_path):
        base = baseline_config(warmup=0.5e-3, duration=1e-3)
        cache = ResultCache(tmp_path)
        cold = sweep_receiver_cores(cores=(2, 4), iommu_states=(True,),
                                    base=base, cache=cache)
        assert cache.misses == 2 and cache.hits == 0
        warm = sweep_receiver_cores(cores=(2, 4), iommu_states=(True,),
                                    base=base, cache=cache)
        assert cache.hits == 2
        assert cold == warm

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        base = baseline_config(warmup=0.5e-3, duration=1e-3)
        cache = ResultCache(tmp_path)
        serial = sweep_receiver_cores(cores=(2,), iommu_states=(True,),
                                      base=base, cache=cache)
        parallel = sweep_receiver_cores(cores=(2,), iommu_states=(True,),
                                        base=base, cache=cache,
                                        workers=2)
        assert cache.hits == 1  # the parallel run never forked a worker
        assert serial == parallel

    def test_snapshots_cached_alongside_results(self, tmp_path):
        base = baseline_config(warmup=0.5e-3, duration=1e-3)
        cache = ResultCache(tmp_path)
        cold_snaps: list = []
        warm_snaps: list = []
        sweep_receiver_cores(cores=(2,), iommu_states=(True,), base=base,
                             cache=cache, snapshots_out=cold_snaps)
        sweep_receiver_cores(cores=(2,), iommu_states=(True,), base=base,
                             cache=cache, snapshots_out=warm_snaps)
        assert cache.hits == 1
        assert warm_snaps == cold_snaps
