"""Property-based tests (hypothesis) on core data structures and
invariants."""

import random as _random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MemoryConfig
from repro.host.iotlb import Iotlb
from repro.host.memory import queue_delay_for, weighted_water_fill
from repro.sim import ByteQueue, CreditPool, Simulator
from repro.sim.randoms import derive_seed

# ---------------------------------------------------------------------------
# Engine ordering
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=1.0), min_size=1,
                max_size=50))
def test_events_always_dispatch_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.call(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e-3),
                          st.integers(min_value=0, max_value=9)),
                min_size=1, max_size=30))
def test_simulation_is_deterministic(schedule):
    def run():
        sim = Simulator()
        log = []
        for delay, tag in schedule:
            sim.call(delay, lambda t=tag: log.append((sim.now, t)))
        sim.run()
        return log

    assert run() == run()


# ---------------------------------------------------------------------------
# ByteQueue conservation
# ---------------------------------------------------------------------------


@given(st.lists(st.one_of(
    st.tuples(st.just("offer"), st.integers(min_value=1, max_value=500)),
    st.tuples(st.just("pop"), st.just(0)),
), min_size=1, max_size=200))
def test_byte_queue_conservation(ops):
    sim = Simulator()
    queue = ByteQueue(sim, capacity_bytes=1000)
    popped_bytes = 0
    for op, size in ops:
        if op == "offer":
            queue.offer(object(), size)
        else:
            entry = queue.pop()
            if entry is not None:
                popped_bytes += entry[1]
        # Invariants at every step:
        assert 0 <= queue.bytes_used <= queue.capacity_bytes
        assert queue.peak_bytes <= queue.capacity_bytes
    assert queue.enqueued_bytes == popped_bytes + queue.bytes_used
    assert (queue.enqueued_count
            == queue.dequeued_count + len(queue))


# ---------------------------------------------------------------------------
# CreditPool conservation
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=1, max_value=10), min_size=1,
                max_size=50))
def test_credit_pool_never_exceeds_capacity(amounts):
    sim = Simulator()
    pool = CreditPool(sim, capacity=25)
    held = []
    for n in amounts:
        if pool.try_acquire(n):
            held.append(n)
        assert 0 <= pool.available <= pool.capacity
        assert pool.in_use == sum(held)
    for n in held:
        pool.release(n)
    assert pool.available == pool.capacity


# ---------------------------------------------------------------------------
# IOTLB invariants
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=300), min_size=1,
                max_size=500),
       st.sampled_from([1, 2, 4, 8, None]))
def test_iotlb_occupancy_and_counters(accesses, ways):
    tlb = Iotlb(entries=16, ways=ways)
    for frame in accesses:
        tlb.access(frame << 12)
        assert tlb.occupancy <= tlb.entries
    assert tlb.hits + tlb.misses == len(accesses)
    assert 0.0 <= tlb.miss_ratio() <= 1.0


@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                max_size=300))
def test_fully_associative_iotlb_never_misses_within_capacity(frames):
    # Working set (16 distinct frames) fits exactly: after one cold miss
    # per distinct frame, everything hits.
    tlb = Iotlb(entries=16)
    for frame in frames:
        tlb.access(frame << 12)
    assert tlb.misses == len(set(frames))


# ---------------------------------------------------------------------------
# Memory allocation properties
# ---------------------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=0, max_value=200e9), min_size=1,
             max_size=10),
    st.lists(st.floats(min_value=0.1, max_value=10), min_size=10,
             max_size=10),
    st.floats(min_value=1e9, max_value=200e9),
)
def test_water_fill_properties(demands, weights, capacity):
    weights = weights[:len(demands)]
    alloc = weighted_water_fill(demands, weights, capacity)
    assert len(alloc) == len(demands)
    # No source gets more than it asked for.
    for a, d in zip(alloc, demands):
        assert a <= d + 1e-3
        assert a >= 0
    # Work conservation up to capacity.
    assert sum(alloc) <= capacity + 1e-3
    assert sum(alloc) <= sum(demands) + 1e-3
    if sum(demands) <= capacity:
        for a, d in zip(alloc, demands):
            assert abs(a - d) < 1e-3


@given(st.floats(min_value=0, max_value=2),
       st.floats(min_value=0, max_value=2))
def test_queue_delay_monotone(rho_a, rho_b):
    cfg = MemoryConfig()
    lo, hi = sorted((rho_a, rho_b))
    assert queue_delay_for(lo, cfg) <= queue_delay_for(hi, cfg)
    assert 0 <= queue_delay_for(hi, cfg) <= cfg.max_queue_delay


# ---------------------------------------------------------------------------
# Seed derivation
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**32), st.text(min_size=1,
                                                          max_size=20))
def test_derive_seed_in_range_and_stable(seed, name):
    a = derive_seed(seed, name)
    assert 0 <= a < 2**64
    assert a == derive_seed(seed, name)


@settings(max_examples=30)
@given(st.integers(min_value=0, max_value=100))
def test_lru_iotlb_matches_reference_model(seed):
    """Differential test: the IOTLB agrees with a brute-force LRU."""
    rng = _random.Random(seed)
    tlb = Iotlb(entries=8)
    reference: list[int] = []  # most recent last
    for _ in range(300):
        key = rng.randrange(20) << 12
        expected_hit = key in reference
        assert tlb.access(key) == expected_hit
        if expected_hit:
            reference.remove(key)
        reference.append(key)
        if len(reference) > 8:
            reference.pop(0)
