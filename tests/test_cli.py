"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_defaults_parse():
    args = build_parser().parse_args(["run"])
    assert args.cores == 12
    assert not args.no_iommu
    assert args.transport == "swift"


def test_run_command_executes(capsys):
    code = main(["run", "--cores", "4", "--senders", "8",
                 "--warmup-ms", "1", "--duration-ms", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "app throughput" in out
    assert "drop rate" in out


def test_run_no_iommu_flag(capsys):
    code = main(["run", "--cores", "4", "--senders", "8", "--no-iommu",
                 "--warmup-ms", "1", "--duration-ms", "2"])
    assert code == 0
    assert "'iommu': False" in capsys.readouterr().out


def test_sweep_cores_table(capsys):
    code = main(["sweep", "cores", "2", "4",
                 "--warmup-ms", "1", "--duration-ms", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "tput Gbps" in out
    # Two core counts x two IOMMU states = 4 data rows.
    data_rows = [line for line in out.splitlines()
                 if line.strip() and line.lstrip()[0].isdigit()]
    assert len(data_rows) == 4


def test_sweep_writes_csv(tmp_path, capsys):
    csv_path = tmp_path / "sweep.csv"
    code = main(["sweep", "antagonists", "0",
                 "--warmup-ms", "1", "--duration-ms", "2",
                 "--csv", str(csv_path)])
    assert code == 0
    assert csv_path.exists()
    assert "antagonist_cores" in csv_path.read_text().splitlines()[0]


def test_model_table(capsys):
    code = main(["model", "--cores", "16"])
    assert code == 0
    out = capsys.readouterr().out
    assert "bound (Gbps)" in out
    rows = [line for line in out.splitlines()[1:] if line.strip()]
    values = [float(row.split()[1]) for row in rows]
    assert values == sorted(values, reverse=True)  # monotone in misses


def test_fleet_command(capsys):
    code = main(["fleet", "--hosts", "2",
                 "--warmup-ms", "0.5", "--duration-ms", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "hosts dropping" in out


def test_figure_choices_validated():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "2"])  # fig 2 is a diagram
