"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_defaults_parse():
    args = build_parser().parse_args(["run"])
    assert args.cores == 12
    assert not args.no_iommu
    assert args.transport == "swift"


def test_run_command_executes(capsys):
    code = main(["run", "--cores", "4", "--senders", "8",
                 "--warmup-ms", "1", "--duration-ms", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "app throughput" in out
    assert "drop rate" in out


def test_run_no_iommu_flag(capsys):
    code = main(["run", "--cores", "4", "--senders", "8", "--no-iommu",
                 "--warmup-ms", "1", "--duration-ms", "2"])
    assert code == 0
    assert "'iommu': False" in capsys.readouterr().out


def test_sweep_cores_table(capsys):
    code = main(["sweep", "cores", "2", "4",
                 "--warmup-ms", "1", "--duration-ms", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "tput Gbps" in out
    # Two core counts x two IOMMU states = 4 data rows.
    data_rows = [line for line in out.splitlines()
                 if line.strip() and line.lstrip()[0].isdigit()]
    assert len(data_rows) == 4


def test_sweep_writes_csv(tmp_path, capsys):
    csv_path = tmp_path / "sweep.csv"
    code = main(["sweep", "antagonists", "0",
                 "--warmup-ms", "1", "--duration-ms", "2",
                 "--csv", str(csv_path)])
    assert code == 0
    assert csv_path.exists()
    assert "antagonist_cores" in csv_path.read_text().splitlines()[0]


def test_run_metrics_out_writes_snapshot(tmp_path, capsys):
    out = tmp_path / "metrics.json"
    code = main(["run", "--cores", "2", "--senders", "4",
                 "--warmup-ms", "0.5", "--duration-ms", "1.5",
                 "--metrics-out", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert "nic.dropped_packets" in payload["counters"]
    assert "iommu.iotlb_misses" in payload["counters"]
    assert "nic.drop_rate" in payload["gauges"]
    assert "memory.bandwidth_GBps" in payload["gauges"]
    assert payload["histograms"]["nic.host_delay_us"]["count"] > 0
    assert payload["meta"]["events_dispatched"] > 0


def test_sweep_metrics_out_writes_one_snapshot_per_run(tmp_path):
    out = tmp_path / "metrics.json"
    code = main(["sweep", "antagonists", "0", "2",
                 "--warmup-ms", "0.5", "--duration-ms", "1",
                 "--metrics-out", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    # One snapshot per config: 2 antagonist counts x 2 IOMMU states.
    assert isinstance(payload, list) and len(payload) == 4
    assert all("nic.rx_packets" in snap["counters"] for snap in payload)
    assert [snap["meta"]["params"]["antagonist_cores"]
            for snap in payload] == [0, 2, 0, 2]


def test_trace_command_writes_perfetto_json(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main(["trace", "--cores", "2", "--senders", "4",
                 "--warmup-ms", "0.5", "--duration-ms", "1",
                 "--out", str(out)])
    assert code == 0
    doc = json.loads(out.read_text())
    assert any(e.get("name") == "dma" and e["ph"] == "X"
               for e in doc["traceEvents"])
    stdout = capsys.readouterr().out
    assert "kept" in stdout
    assert "ui.perfetto.dev" in stdout


def test_trace_excludes_warmup_by_default(tmp_path):
    out = tmp_path / "trace.json"
    main(["trace", "--cores", "2", "--senders", "4",
          "--warmup-ms", "1", "--duration-ms", "1", "--out", str(out)])
    doc = json.loads(out.read_text())
    timed = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    # All events inside the measurement window (after 1 ms warmup).
    assert min(e["ts"] for e in timed) >= 1_000  # µs


def test_profile_command_reports(tmp_path, capsys):
    out = tmp_path / "profile.json"
    code = main(["profile", "--cores", "2", "--senders", "4",
                 "--warmup-ms", "0.5", "--duration-ms", "1",
                 "--out", str(out)])
    assert code == 0
    assert "events/sec" in capsys.readouterr().out
    report = json.loads(out.read_text())
    assert report["events"] > 0
    assert "ReceiverThread" in report["components"]


def test_model_table(capsys):
    code = main(["model", "--cores", "16"])
    assert code == 0
    out = capsys.readouterr().out
    assert "bound (Gbps)" in out
    rows = [line for line in out.splitlines()[1:] if line.strip()]
    values = [float(row.split()[1]) for row in rows]
    assert values == sorted(values, reverse=True)  # monotone in misses


def test_fleet_command(capsys):
    code = main(["fleet", "--hosts", "2",
                 "--warmup-ms", "0.5", "--duration-ms", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "hosts dropping" in out


def test_figure_choices_validated():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "2"])  # fig 2 is a diagram


def test_workers_flag_parses():
    args = build_parser().parse_args(["sweep", "cores", "2",
                                      "--workers", "auto"])
    assert args.workers == "auto"
    args = build_parser().parse_args(["sweep", "cores", "2",
                                      "--workers", "3"])
    assert args.workers == 3
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "cores", "2",
                                   "--workers", "0"])


def test_sweep_parallel_matches_serial_output(capsys):
    argv = ["sweep", "cores", "2", "--warmup-ms", "1",
            "--duration-ms", "2", "--no-cache"]
    assert main(argv) == 0
    serial_out = capsys.readouterr().out
    assert main(argv + ["--workers", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == serial_out


def test_sweep_second_run_hits_cache(capsys):
    argv = ["sweep", "antagonists", "0",
            "--warmup-ms", "0.5", "--duration-ms", "1"]
    assert main(argv) == 0
    assert "cache:" not in capsys.readouterr().out  # cold: all misses
    assert main(argv) == 0
    assert "cache: 2 hit(s)" in capsys.readouterr().out


def test_sweep_timeout_prints_failed_rows(capsys):
    code = main(["sweep", "cores", "2", "--warmup-ms", "1",
                 "--duration-ms", "2", "--no-cache",
                 "--timeout-s", "0.0001"])
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("FAILED (timeout)") == 2


def test_cache_stats_and_clear(tmp_path, capsys):
    cache_dir = tmp_path / "cli-cache"
    sweep = ["sweep", "antagonists", "0", "--warmup-ms", "0.5",
             "--duration-ms", "1", "--cache-dir", str(cache_dir)]
    assert main(sweep) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "entries   : 2" in out
    assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
    assert "removed 2" in capsys.readouterr().out


def test_fleet_workers_flag(capsys):
    code = main(["fleet", "--hosts", "2", "--workers", "2",
                 "--warmup-ms", "0.5", "--duration-ms", "1"])
    assert code == 0
    assert "hosts dropping" in capsys.readouterr().out


def test_fleet_sharded_checkpoint_resume_and_merge(tmp_path, capsys):
    """The streaming flags end to end: sharded checkpointed run,
    deterministic stop, resume, and aggregate merge."""
    checkpoint = tmp_path / "fleet.ckpt.json"
    clean_json = tmp_path / "clean.json"
    resumed_json = tmp_path / "resumed.json"
    merged_json = tmp_path / "merged.json"
    base = ["fleet", "--hosts", "12", "--fidelity", "fluid",
            "--warmup-ms", "0.5", "--duration-ms", "1"]

    assert main([*base, "--json-out", str(clean_json)]) == 0
    assert main([*base, "--shards", "3",
                 "--checkpoint", str(checkpoint),
                 "--stop-after-shard", "0"]) == 0
    out = capsys.readouterr().out
    assert "checkpoint:" in out
    assert main([*base, "--shards", "3",
                 "--checkpoint", str(checkpoint), "--resume",
                 "--json-out", str(resumed_json)]) == 0
    assert "hosts dropping" in capsys.readouterr().out

    from repro.workload.fleet_agg import FleetAggregate

    clean = FleetAggregate.from_dict(
        json.loads(clean_json.read_text()))
    resumed = FleetAggregate.from_dict(
        json.loads(resumed_json.read_text()))
    assert resumed == clean
    assert clean.hosts == 12

    # merge accepts aggregate JSON and checkpoint files alike.
    assert main(["fleet", "merge", str(resumed_json),
                 str(checkpoint), "--json-out",
                 str(merged_json)]) == 0
    assert "merged 2 shard summaries" in capsys.readouterr().out
    merged = FleetAggregate.from_dict(
        json.loads(merged_json.read_text()))
    assert merged.hosts == 24  # both inputs cover the same 12 hosts


# ---------------------------------------------------------------------------
# scenario subcommand
# ---------------------------------------------------------------------------

TINY_SPEC = """
[scenario]
name = "tiny"
title = "Tiny test scenario"

[base]
"sim.warmup" = 5e-4
"sim.duration" = 1e-3
"workload.senders" = 8

[[axes]]
path = "host.cpu.cores"
values = [2, 4]

[render]
style = "table"
x = "cores"
"""


def test_scenario_list_shows_bundled_specs(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("figure1", "figure3", "figure6", "iommu_contention",
                 "memory_antagonist"):
        assert name in out


def test_scenario_validate_all_bundled(capsys):
    assert main(["scenario", "validate"]) == 0
    out = capsys.readouterr().out
    assert "FAIL" not in out
    assert "figure3" in out


def test_scenario_validate_reports_bad_spec(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text('[scenario]\nname = "bad"\n'
                   '[base]\n"host.cpu.coresies" = 2\n')
    assert main(["scenario", "validate", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "coresies" in out


def test_scenario_run_spec_file(tmp_path, capsys):
    spec = tmp_path / "tiny.toml"
    spec.write_text(TINY_SPEC)
    csv_path = tmp_path / "tiny.csv"
    code = main(["scenario", "run", str(spec), "--no-cache",
                 "--csv", str(csv_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "tput Gbps" in out
    data_rows = [line for line in out.splitlines()
                 if line.strip() and line.lstrip()[0].isdigit()]
    assert len(data_rows) == 2
    assert csv_path.exists()


def test_scenario_run_second_time_hits_cache(tmp_path, capsys):
    spec = tmp_path / "tiny.toml"
    spec.write_text(TINY_SPEC)
    argv = ["scenario", "run", str(spec)]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    assert "cache: 2 hit(s)" in capsys.readouterr().out


def test_scenario_run_unknown_name_fails(capsys):
    assert main(["scenario", "run", "no-such-scenario"]) == 1
    assert "no-such-scenario" in capsys.readouterr().out


def test_scenario_sweep_and_cli_sweep_share_cache(tmp_path, capsys):
    """`repro sweep` and `repro scenario run` expand to the same
    configs, so one's runs are the other's cache hits."""
    spec = tmp_path / "cores.toml"
    spec.write_text("""
[scenario]
name = "cores"

[base]
"sim.warmup" = 1e-3
"sim.duration" = 2e-3

[[axes]]
path = "host.iommu.enabled"
values = [true, false]

[[axes]]
path = "host.cpu.cores"
values = [2]

[render]
style = "table"
x = "cores"
""")
    assert main(["sweep", "cores", "2",
                 "--warmup-ms", "1", "--duration-ms", "2"]) == 0
    capsys.readouterr()
    assert main(["scenario", "run", str(spec)]) == 0
    assert "cache: 2 hit(s)" in capsys.readouterr().out
