"""Unit tests for the metrics registry (obs.metrics)."""

import json
import statistics

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reader_backed_tracks_source(self):
        box = {"n": 0}
        c = Counter("c", fn=lambda: box["n"])
        box["n"] = 7
        assert c.value == 7

    def test_reader_backed_rejects_inc(self):
        c = Counter("c", fn=lambda: 0)
        with pytest.raises(TypeError):
            c.inc()


class TestGauge:
    def test_set_and_read(self):
        g = Gauge("g")
        g.set(2.5)
        assert g.value == 2.5

    def test_reader_backed_rejects_set(self):
        g = Gauge("g", fn=lambda: 1.0)
        with pytest.raises(TypeError):
            g.set(3.0)
        assert g.value == 1.0


class TestHistogram:
    def test_percentiles_match_statistics_quantiles(self):
        h = Histogram("h")
        values = [float(i) for i in range(1, 1001)]
        for v in values:
            h.observe(v)
        # statistics.quantiles with n=100 and 'inclusive' matches the
        # linear-interpolation percentile definition used here.
        quantiles = statistics.quantiles(values, n=100, method="inclusive")
        assert h.percentile(50) == pytest.approx(quantiles[49])
        assert h.percentile(90) == pytest.approx(quantiles[89])
        assert h.percentile(99) == pytest.approx(quantiles[98])

    def test_exact_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(2.0)
        assert h.minimum == 1.0
        assert h.maximum == 3.0

    def test_reservoir_is_bounded(self):
        h = Histogram("h", reservoir=100)
        for v in range(10_000):
            h.observe(float(v))
        assert len(h._reservoir) == 100
        assert h.count == 10_000
        # min/max stay exact even when sampled out of the reservoir.
        assert h.minimum == 0.0
        assert h.maximum == 9999.0

    def test_reservoir_percentiles_approximate_truth(self):
        h = Histogram("h", reservoir=512)
        for v in range(10_000):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(5000, rel=0.15)

    def test_reservoir_sampling_is_deterministic(self):
        def build():
            h = Histogram("same-name", reservoir=64)
            for v in range(5000):
                h.observe(float(v))
            return h._reservoir

        assert build() == build()

    def test_empty_summary(self):
        s = Histogram("h").summary()
        assert s["count"] == 0
        assert s["p99"] == 0.0

    def test_summary_keys(self):
        h = Histogram("h")
        h.observe(1.0)
        assert set(h.summary()) == {"count", "mean", "p50", "p90", "p99",
                                    "min", "max"}

    def test_bad_reservoir_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", reservoir=0)


class TestDeferredFlush:
    """Deferred aggregation must be invisible: buffering samples locally
    and flushing at snapshot/reset boundaries yields byte-identical
    histogram state to eager per-event observation — including the
    reservoir RNG, which must advance exactly as under eager observes
    (warmup samples replay through the reservoir before ``reset()``)."""

    @staticmethod
    def drive(registry, hist, feed):
        """Observe 3 windows of samples through ``feed(value)``,
        snapshotting after each and resetting between the first two.
        More samples than the reservoir, so algorithm R's RNG is
        exercised across the window boundary."""
        snapshots = []
        for window in range(3):
            for i in range(700):  # 700 > reservoir of 256
                feed(float(window * 10_000 + i * 7 % 997))
            snapshots.append(registry.snapshot())
            if window == 0:
                registry.reset_window()
        return snapshots, list(hist._reservoir)

    def test_buffered_flush_equals_eager_observation(self):
        eager_reg = MetricsRegistry()
        eager_hist = eager_reg.histogram("lat", "nic", reservoir=256)
        eager_snaps, eager_res = self.drive(
            eager_reg, eager_hist, eager_hist.observe)

        deferred_reg = MetricsRegistry()
        deferred_hist = deferred_reg.histogram("lat", "nic", reservoir=256)
        pending = []

        def flush():
            for value in pending:
                deferred_hist.observe(value)
            pending.clear()

        deferred_reg.add_flush_callback(flush)
        deferred_snaps, deferred_res = self.drive(
            deferred_reg, deferred_hist, pending.append)

        assert pending == []  # snapshot() drained the buffer
        assert deferred_snaps == eager_snaps
        assert deferred_res == eager_res

    def test_flush_runs_before_reset_window(self):
        # Samples buffered during warmup must pass through the
        # histogram (advancing its RNG) before reset clears them.
        reg = MetricsRegistry()
        hist = reg.histogram("lat", reservoir=4)
        pending = [1.0, 2.0, 3.0]
        reg.add_flush_callback(
            lambda: (hist.observe(pending.pop(0)) if pending else None))
        reg.reset_window()
        assert hist.count == 0  # the flushed sample was then reset away
        assert pending == [2.0, 3.0]  # but it did flush first

    def test_flush_callbacks_run_in_registration_order(self):
        reg = MetricsRegistry()
        order = []
        reg.add_flush_callback(lambda: order.append("a"))
        reg.add_flush_callback(lambda: order.append("b"))
        reg.flush()
        assert order == ["a", "b"]


class TestMetricsRegistry:
    def test_full_names_are_component_scoped(self):
        reg = MetricsRegistry()
        reg.counter("rx", "nic")
        reg.counter("rx", "nic2")  # same short name, other instance: ok
        assert "nic.rx" in reg
        assert "nic2.rx" in reg

    def test_duplicate_registration_raises(self):
        reg = MetricsRegistry()
        reg.counter("rx", "nic")
        with pytest.raises(ValueError):
            reg.counter("rx", "nic")
        with pytest.raises(ValueError):
            reg.gauge("rx", "nic")  # cross-kind collision too
        with pytest.raises(ValueError):
            reg.histogram("rx", "nic")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("", "nic")

    def test_get_and_contains(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        assert reg.get("a") is c
        with pytest.raises(KeyError):
            reg.get("missing")
        assert "missing" not in reg

    def test_len_and_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        reg.histogram("c")
        assert len(reg) == 3
        assert reg.names() == ["a", "b", "c"]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("drops", "nic").inc(3)
        reg.gauge("util", "memory").set(0.5)
        reg.histogram("delay", "nic").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"]["nic.drops"] == 3
        assert snap["gauges"]["memory.util"] == 0.5
        assert snap["histograms"]["nic.delay"]["count"] == 1

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("drops", "nic").inc()
        assert json.loads(reg.to_json())["counters"]["nic.drops"] == 1

    def test_reset_window_zeros_stored_metrics(self):
        reg = MetricsRegistry()
        c = reg.counter("drops")
        h = reg.histogram("delay")
        g = reg.gauge("level")
        c.inc(5)
        h.observe(1.0)
        g.set(2.0)
        reg.reset_window()
        assert c.value == 0
        assert h.count == 0
        assert g.value == 2.0  # gauges are point-in-time, not windowed

    def test_reset_window_leaves_reader_backed_counters(self):
        reg = MetricsRegistry()
        box = {"n": 9}
        c = reg.counter("drops", fn=lambda: box["n"])
        reg.reset_window()
        assert c.value == 9  # follows its source attribute
