"""Unit tests for the IOTLB cache."""

import pytest

from repro.host.iotlb import Iotlb


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Iotlb(entries=0)


def test_ways_must_divide_entries():
    with pytest.raises(ValueError):
        Iotlb(entries=128, ways=3)
    Iotlb(entries=128, ways=4)  # fine


def test_first_access_misses_then_hits():
    tlb = Iotlb(entries=4)
    assert not tlb.access(0x1000)
    assert tlb.access(0x1000)
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_lru_eviction_order():
    tlb = Iotlb(entries=2)
    tlb.access(0x1000)
    tlb.access(0x2000)
    tlb.access(0x1000)      # refresh 0x1000
    tlb.access(0x3000)      # evicts 0x2000 (LRU)
    assert tlb.contains(0x1000)
    assert not tlb.contains(0x2000)
    assert tlb.evictions == 1


def test_working_set_within_capacity_all_hits_after_warmup():
    tlb = Iotlb(entries=8)
    pages = [i * 0x1000 for i in range(8)]
    for page in pages:
        tlb.access(page)
    tlb.reset_stats()
    for _ in range(10):
        for page in pages:
            assert tlb.access(page)
    assert tlb.miss_ratio() == 0.0


def test_working_set_over_capacity_thrashes_under_round_robin():
    # Sequential scan over capacity+1 pages is the LRU worst case.
    tlb = Iotlb(entries=4)
    pages = [i * 0x1000 for i in range(5)]
    for _ in range(3):
        for page in pages:
            tlb.access(page)
    assert tlb.miss_ratio() == 1.0


def test_occupancy_capped_at_entries():
    tlb = Iotlb(entries=4)
    for i in range(100):
        tlb.access(i * 0x1000)
    assert tlb.occupancy == 4


def test_invalidate_single_entry():
    tlb = Iotlb(entries=4)
    tlb.access(0x1000)
    assert tlb.invalidate(0x1000)
    assert not tlb.contains(0x1000)
    assert not tlb.invalidate(0x1000)  # already gone


def test_invalidate_all():
    tlb = Iotlb(entries=4)
    for i in range(4):
        tlb.access(i * 0x1000)
    tlb.invalidate_all()
    assert tlb.occupancy == 0


def test_contains_does_not_touch_stats_or_lru():
    tlb = Iotlb(entries=2)
    tlb.access(0x1000)
    tlb.access(0x2000)
    tlb.contains(0x1000)      # must NOT refresh LRU position
    hits, misses = tlb.hits, tlb.misses
    tlb.access(0x3000)        # evicts 0x1000 (still LRU)
    assert not tlb.contains(0x1000)
    assert (tlb.hits, tlb.misses) == (hits, misses + 1)


def test_reset_stats_keeps_contents():
    tlb = Iotlb(entries=4)
    tlb.access(0x1000)
    tlb.reset_stats()
    assert tlb.hits == 0 and tlb.misses == 0
    assert tlb.access(0x1000)  # still cached


def test_set_associative_distributes_hugepages():
    # Regression: 2 MB-aligned pages must not collapse onto one set.
    tlb = Iotlb(entries=128, ways=8)
    pages = [i * 2 * 2**20 for i in range(64)]
    for page in pages:
        tlb.access(page)
    occupied_sets = sum(1 for s in tlb._sets if len(s) > 0)
    assert occupied_sets > 8


def test_set_associative_capacity_equals_total_entries():
    tlb = Iotlb(entries=16, ways=4)
    for i in range(16):
        tlb.access(i * 0x1000)
    assert tlb.occupancy <= 16


def test_miss_ratio_zero_when_untouched():
    assert Iotlb(entries=4).miss_ratio() == 0.0
