"""Unit tests for IOMMU address-space layout."""

import random

import pytest

from repro.host.addressing import (
    PAGE_2M,
    PAGE_4K,
    AddressSpaceAllocator,
    Region,
    build_thread_layouts,
)


class TestRegion:
    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            Region(base=0, size=PAGE_4K, page_size=1234)

    def test_rejects_unaligned_base(self):
        with pytest.raises(ValueError):
            Region(base=123, size=PAGE_4K, page_size=PAGE_4K)

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            Region(base=0, size=PAGE_4K + 1, page_size=PAGE_4K)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            Region(base=0, size=0, page_size=PAGE_4K)

    def test_num_pages(self):
        region = Region(base=0, size=8 * PAGE_4K, page_size=PAGE_4K)
        assert region.num_pages == 8

    def test_page_key_maps_offsets_to_page_starts(self):
        region = Region(base=1 << 30, size=4 * PAGE_4K, page_size=PAGE_4K)
        assert region.page_key(0) == 1 << 30
        assert region.page_key(PAGE_4K - 1) == 1 << 30
        assert region.page_key(PAGE_4K) == (1 << 30) + PAGE_4K

    def test_page_key_out_of_range(self):
        region = Region(base=0, size=PAGE_4K, page_size=PAGE_4K)
        with pytest.raises(ValueError):
            region.page_key(PAGE_4K)

    def test_page_keys_enumerates_all(self):
        region = Region(base=0, size=3 * PAGE_4K, page_size=PAGE_4K)
        assert region.page_keys() == [0, PAGE_4K, 2 * PAGE_4K]

    def test_span_keys_crossing_boundary(self):
        region = Region(base=0, size=4 * PAGE_4K, page_size=PAGE_4K)
        keys = region.span_keys(PAGE_4K - 100, 200)
        assert keys == [0, PAGE_4K]

    def test_span_keys_within_one_page(self):
        region = Region(base=0, size=4 * PAGE_4K, page_size=PAGE_4K)
        assert region.span_keys(10, 100) == [0]

    def test_span_keys_clamps_at_region_end(self):
        region = Region(base=0, size=2 * PAGE_4K, page_size=PAGE_4K)
        keys = region.span_keys(PAGE_4K, 10 * PAGE_4K)
        assert keys == [PAGE_4K]

    def test_span_keys_requires_positive_length(self):
        region = Region(base=0, size=PAGE_4K, page_size=PAGE_4K)
        with pytest.raises(ValueError):
            region.span_keys(0, 0)


class TestAllocator:
    def test_regions_disjoint(self):
        alloc = AddressSpaceAllocator()
        a = alloc.allocate(12 * 2**20, PAGE_2M)
        b = alloc.allocate(4 * PAGE_4K, PAGE_4K)
        c = alloc.allocate(2 * 2**20, PAGE_2M)
        assert a.end <= b.base
        assert b.end <= c.base

    def test_hugepage_alignment_preserved(self):
        alloc = AddressSpaceAllocator()
        alloc.allocate(PAGE_4K, PAGE_4K)
        huge = alloc.allocate(PAGE_2M, PAGE_2M)
        assert huge.base % PAGE_2M == 0

    def test_size_rounded_up_to_page(self):
        alloc = AddressSpaceAllocator()
        region = alloc.allocate(100, PAGE_4K)
        assert region.size == PAGE_4K


class TestThreadLayouts:
    def test_requires_at_least_one_thread(self):
        with pytest.raises(ValueError):
            build_thread_layouts(0, 12 * 2**20, hugepages=True)

    def test_default_footprint_calibration(self):
        # 6 hugepages of data + 14 registered control/state pages, of
        # which 12 are part of the *active* footprint (one hot page per
        # ring + conn pool + staging).  6 + 10 active control = 16
        # pages/thread puts the IOTLB knee at 8 threads (paper Fig. 3).
        (layout,) = build_thread_layouts(1, 12 * 2**20, hugepages=True)
        assert layout.data.num_pages == 6
        registered_control = layout.total_pages() - layout.data.num_pages
        assert registered_control == 14
        hot_ring_pages = 4  # rx desc, rx cq, tx desc, tx cq
        active = (layout.data.num_pages
                  + layout.conn_state.num_pages
                  + layout.ack_staging.num_pages
                  + hot_ring_pages)
        assert active == 16

    def test_hugepages_off_multiplies_data_pages_by_512(self):
        (huge,) = build_thread_layouts(1, 12 * 2**20, hugepages=True)
        (small,) = build_thread_layouts(1, 12 * 2**20, hugepages=False)
        assert small.data.num_pages == huge.data.num_pages * 512

    def test_layouts_disjoint_across_threads(self):
        layouts = build_thread_layouts(4, 4 * 2**20, hugepages=True)
        seen = set()
        for layout in layouts:
            for region in layout.all_regions():
                for key in region.page_keys():
                    assert key not in seen
                    seen.add(key)

    def test_payload_pages_hugepage_is_single_page(self):
        (layout,) = build_thread_layouts(1, 12 * 2**20, hugepages=True)
        rng = random.Random(0)
        for _ in range(50):
            pages = layout.payload_pages(rng, 4096)
            assert len(pages) == 1
            assert pages[0] in layout.data.page_keys()

    def test_payload_pages_4k_spans_two_pages(self):
        (layout,) = build_thread_layouts(1, 12 * 2**20, hugepages=False)
        rng = random.Random(0)
        for _ in range(50):
            pages = layout.payload_pages(rng, 4096)
            assert len(pages) == 2
            assert pages[1] - pages[0] == PAGE_4K

    def test_rx_control_pages_cycle_through_ring(self):
        (layout,) = build_thread_layouts(1, 12 * 2**20, hugepages=True)
        first = layout.rx_control_pages()
        # The descriptor page advances after 128 packets.
        for _ in range(127):
            layout.rx_control_pages()
        later = layout.rx_control_pages()
        assert later[0] != first[0]

    def test_conn_state_page_within_pool(self):
        (layout,) = build_thread_layouts(1, 12 * 2**20, hugepages=True)
        rng = random.Random(0)
        pool = set(layout.conn_state.page_keys())
        for _ in range(20):
            assert layout.conn_state_page(rng) in pool

    def test_tx_control_pages_include_staging(self):
        (layout,) = build_thread_layouts(1, 12 * 2**20, hugepages=True)
        rng = random.Random(0)
        pages = layout.tx_control_pages(rng)
        assert len(pages) == 3
        assert pages[2] in layout.ack_staging.page_keys()
