"""End-to-end tests of the paper's central claims, at reduced scale.

These are the repository's acceptance tests: each asserts one
qualitative claim from the paper using short measurement windows
(the full-scale versions live in ``benchmarks/``).
"""


import pytest

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    IommuConfig,
    SimConfig,
)
from repro.core.experiment import run_experiment


def config(cores=12, iommu=True, antagonists=0, hugepages=True,
           transport="swift", seed=1, **exp_kwargs):
    return ExperimentConfig(
        host=HostConfig(
            cpu=CpuConfig(cores=cores),
            iommu=IommuConfig(enabled=iommu),
            hugepages=hugepages,
            antagonist_cores=antagonists,
        ),
        transport=transport,
        sim=SimConfig(warmup=3e-3, duration=5e-3, seed=seed),
        **exp_kwargs,
    )


@pytest.fixture(scope="module")
def results():
    """Run the operating points once; individual tests read from here."""
    points = {
        "on_12": config(cores=12, iommu=True),
        "off_12": config(cores=12, iommu=False),
        "on_16": config(cores=16, iommu=True),
        "off_16": config(cores=16, iommu=False),
        "on_6": config(cores=6, iommu=True),
        "nohp_12": config(cores=12, iommu=True, hugepages=False),
        "ant15_off": config(cores=12, iommu=False, antagonists=15),
        "ant15_on": config(cores=12, iommu=True, antagonists=15),
        "hostcc_12": config(cores=12, iommu=True, transport="hostcc"),
    }
    return {name: run_experiment(c) for name, c in points.items()}


class TestIommuClaims:
    def test_iommu_off_reaches_max_achievable(self, results):
        assert results["off_12"].metrics["app_throughput_gbps"] > 88

    def test_iommu_tax_grows_with_cores(self, results):
        on_12 = results["on_12"].metrics["app_throughput_gbps"]
        on_16 = results["on_16"].metrics["app_throughput_gbps"]
        off_16 = results["off_16"].metrics["app_throughput_gbps"]
        assert on_16 < on_12          # more cores, less throughput
        assert on_16 < 0.9 * off_16   # ≥10% below the no-IOMMU case

    def test_no_misses_below_iotlb_capacity(self, results):
        assert results["on_6"].metrics["iotlb_misses_per_packet"] < 0.2

    def test_misses_beyond_capacity(self, results):
        assert results["on_12"].metrics["iotlb_misses_per_packet"] > 0.5
        assert (results["on_16"].metrics["iotlb_misses_per_packet"]
                > results["on_12"].metrics["iotlb_misses_per_packet"])

    def test_hugepages_off_much_worse(self, results):
        assert (results["nohp_12"].metrics["app_throughput_gbps"]
                < 0.8 * results["on_12"].metrics["app_throughput_gbps"])
        assert (results["nohp_12"].metrics["iotlb_misses_per_packet"]
                > 2.0)


class TestBlindSpotClaims:
    def test_swift_drops_despite_host_delay_target(self, results):
        # The paper's central claim: ≥2% steady drops with a
        # delay-based CC designed to handle host congestion.
        assert results["on_12"].metrics["drop_rate"] > 0.015

    def test_nic_delay_pinned_below_host_target(self, results):
        # The buffer can't hold 100 µs at this drain rate: delay sits
        # just below the target and Swift never engages.
        delay = results["on_12"].metrics["mean_nic_delay_us"]
        assert 60 < delay < 105

    def test_no_drops_when_cpu_is_the_bottleneck(self, results):
        # Host-software congestion (too few cores) is handled fine —
        # the paper's contrast between software and interconnect
        # congestion.
        assert results["on_6"].metrics["drop_rate"] < 0.002

    def test_host_signal_cc_removes_drops(self, results):
        swift_drop = results["on_12"].metrics["drop_rate"]
        hostcc_drop = results["hostcc_12"].metrics["drop_rate"]
        assert hostcc_drop < 0.3 * swift_drop
        assert (results["hostcc_12"].metrics["app_throughput_gbps"]
                > 0.8 * results["on_12"].metrics["app_throughput_gbps"])


class TestMemoryBusClaims:
    def test_antagonist_degrades_iommu_off(self, results):
        clean = results["off_12"].metrics["app_throughput_gbps"]
        antagonized = results["ant15_off"].metrics["app_throughput_gbps"]
        assert antagonized < 0.95 * clean

    def test_drops_at_low_link_utilization(self, results):
        # Fig. 1's second observation: host drops while the access
        # link has substantial headroom (compound IOMMU + antagonist
        # case: drain collapses well below line rate, drops persist).
        m = results["ant15_on"].metrics
        assert m["link_utilization"] < 0.8
        assert m["drop_rate"] > 0.001

    def test_compound_iommu_plus_memory_contention(self, results):
        assert (results["ant15_on"].metrics["app_throughput_gbps"]
                < results["ant15_off"].metrics["app_throughput_gbps"] - 10)

    def test_memory_bandwidth_saturates(self, results):
        assert 80 < results["ant15_on"].metrics["memory_total_GBps"] < 95


class TestLittlesLawModel:
    def test_model_tracks_measured_interconnect_bound(self, results):
        from repro.core.model import ThroughputModel

        result = results["on_16"]
        model = ThroughputModel(config(cores=16))
        bound = model.predict(
            misses_per_packet=result.metrics["iotlb_misses_per_packet"],
            memory_utilization=result.metrics["memory_utilization"])
        measured = result.metrics["app_throughput_gbps"] * 1e9
        assert abs(bound - measured) / measured < 0.15
