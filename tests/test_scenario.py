"""Tests for the declarative scenario layer.

Covers the ISSUE's required failure modes — every rejection must name
the offending key — plus expansion semantics (product/zip order,
repeats with derived seeds, quality presets, axis scaling) and the
oracle check that the bundled figure-3 spec expands to exactly the
config list the historical hand-rolled loops built.
"""

import dataclasses

import pytest

from repro.core.config import ExperimentConfig
from repro.core.scenario import (
    ScenarioError,
    ScenarioSpec,
    SweepAxis,
    apply_overrides,
    bundled_scenarios,
    derive_seed,
    find_scenario,
    load_bundled,
    load_scenario_dir,
)
from repro.core.sweep import baseline_config


def spec_from(text, source="test.toml"):
    return ScenarioSpec.from_text(text, source=source)


MINIMAL = """
[scenario]
name = "t"
"""


# ---------------------------------------------------------------------------
# Validation failure modes (each must name the offending key)
# ---------------------------------------------------------------------------

class TestValidationErrors:
    def test_unknown_dotted_override_path(self):
        with pytest.raises(ScenarioError) as err:
            spec_from(MINIMAL + """
[base]
"host.iommu.enable" = true
""")
        assert "enable" in str(err.value)
        assert "test.toml" in str(err.value)

    def test_unknown_top_level_section(self):
        with pytest.raises(ScenarioError, match="axxes"):
            spec_from(MINIMAL + """
[[axxes]]
path = "host.cpu.cores"
values = [1]
""")

    def test_axis_over_nonexistent_field(self):
        with pytest.raises(ScenarioError) as err:
            spec_from(MINIMAL + """
[[axes]]
path = "host.cpu.coresies"
values = [2, 4]
""")
        assert "coresies" in str(err.value)

    def test_path_stopping_at_a_section_is_rejected(self):
        with pytest.raises(ScenarioError, match="host.iommu"):
            apply_overrides(ExperimentConfig(), {"host.iommu": True})

    def test_path_descending_past_a_leaf_is_rejected(self):
        with pytest.raises(ScenarioError, match="cores"):
            apply_overrides(ExperimentConfig(),
                            {"host.cpu.cores.deep": 1})

    def test_zip_axes_of_unequal_length(self):
        spec = spec_from(MINIMAL.replace(
            'name = "t"', 'name = "t"\nexpansion = "zip"') + """
[[axes]]
path = "host.cpu.cores"
values = [2, 4, 6]

[[axes]]
path = "host.antagonist_cores"
values = [0, 8]
""")
        with pytest.raises(ScenarioError) as err:
            spec.expand()
        msg = str(err.value)
        assert "host.cpu.cores" in msg and "host.antagonist_cores" in msg
        assert "3" in msg and "2" in msg

    def test_duplicate_scenario_name(self, tmp_path):
        for fname in ("a.toml", "b.toml"):
            (tmp_path / fname).write_text(
                '[scenario]\nname = "dup"\n')
        with pytest.raises(ScenarioError) as err:
            load_scenario_dir(tmp_path)
        msg = str(err.value)
        assert "dup" in msg and "a.toml" in msg and "b.toml" in msg

    def test_malformed_toml(self, tmp_path):
        bad = tmp_path / "broken.toml"
        bad.write_text('[scenario\nname = "x"\n')
        with pytest.raises(ScenarioError) as err:
            ScenarioSpec.from_file(bad)
        assert "broken.toml" in str(err.value)

    def test_type_mismatch_names_key(self):
        with pytest.raises(ScenarioError) as err:
            spec_from(MINIMAL + """
[base]
"host.cpu.cores" = "twelve"
""")
        msg = str(err.value)
        assert "host.cpu.cores" in msg and "int" in msg

    def test_bool_not_accepted_for_int(self):
        with pytest.raises(ScenarioError, match="host.cpu.cores"):
            apply_overrides(ExperimentConfig(),
                            {"host.cpu.cores": True})

    def test_value_rejected_by_config_validation_names_key(self):
        with pytest.raises(ScenarioError, match="host.cpu.cores"):
            apply_overrides(ExperimentConfig(), {"host.cpu.cores": -3})

    def test_missing_scenario_table(self):
        with pytest.raises(ScenarioError, match="scenario"):
            spec_from('[base]\n"sim.seed" = 2\n')

    def test_unknown_quality_axis_override(self):
        with pytest.raises(ScenarioError, match="host.cpu.cores"):
            spec_from(MINIMAL + """
[quality.quick.axes]
"host.cpu.cores" = [2]
""")

    def test_default_quality_must_exist(self):
        with pytest.raises(ScenarioError, match="turbo"):
            spec_from("""
[scenario]
name = "t"
default_quality = "turbo"
""")

    def test_axes_rejected_for_non_sweep_driver(self):
        with pytest.raises(ScenarioError, match="axes"):
            spec_from("""
[scenario]
name = "t"
driver = "fleet"

[[axes]]
path = "host.cpu.cores"
values = [2]
""")

    def test_unknown_driver_arg(self):
        with pytest.raises(ScenarioError, match="n_hostsies"):
            spec_from("""
[scenario]
name = "t"
driver = "fleet"

[driver_args]
n_hostsies = 5
""")

    def test_render_where_key_must_be_run_parameter(self):
        with pytest.raises(ScenarioError, match="iommu_enabled"):
            spec_from(MINIMAL + """
[render]
style = "panels"

[[render.panels]]
name = "p"
x = "cores"
x_label = "x"
y_label = "y"

[[render.panels.series]]
label = "s"
metric = "drop_rate"
where = { iommu_enabled = true }
""")

    def test_unknown_quality_preset_at_expand(self):
        spec = spec_from(MINIMAL)
        with pytest.raises(ScenarioError, match="ultra"):
            spec.expand(quality="ultra")

    def test_find_scenario_unknown_name(self):
        with pytest.raises(ScenarioError, match="no-such-scenario"):
            find_scenario("no-such-scenario")


# ---------------------------------------------------------------------------
# Expansion semantics
# ---------------------------------------------------------------------------

class TestExpansion:
    def test_product_order_first_axis_outermost(self):
        spec = spec_from(MINIMAL + """
[[axes]]
path = "host.iommu.enabled"
values = [true, false]

[[axes]]
path = "host.cpu.cores"
values = [2, 4]
""")
        combos = [(c.host.iommu.enabled, c.host.cpu.cores)
                  for c in spec.expand()]
        assert combos == [(True, 2), (True, 4), (False, 2), (False, 4)]

    def test_zip_pairs_axes(self):
        spec = spec_from(MINIMAL.replace(
            'name = "t"', 'name = "t"\nexpansion = "zip"') + """
[[axes]]
path = "host.cpu.cores"
values = [2, 4]

[[axes]]
path = "host.antagonist_cores"
values = [0, 8]
""")
        combos = [(c.host.cpu.cores, c.host.antagonist_cores)
                  for c in spec.expand()]
        assert combos == [(2, 0), (4, 8)]

    def test_axis_scale(self):
        spec = spec_from(MINIMAL + """
[[axes]]
path = "host.rx_region_bytes"
values = [4, 16]
scale = 1048576
""")
        sizes = [c.host.rx_region_bytes for c in spec.expand()]
        assert sizes == [4 * 2**20, 16 * 2**20]
        assert all(isinstance(s, int) for s in sizes)

    def test_repeats_derive_seeds_first_repeat_untouched(self):
        spec = dataclasses.replace(spec_from(MINIMAL + """
[base]
"sim.seed" = 9

[[axes]]
path = "host.cpu.cores"
values = [2]
"""), repeats=3)
        configs = spec.expand()
        assert len(configs) == 3
        assert configs[0].sim.seed == 9
        assert configs[1].sim.seed == derive_seed(9, 1)
        assert configs[2].sim.seed == derive_seed(9, 2)
        seeds = {c.sim.seed for c in configs}
        assert len(seeds) == 3  # disjoint streams
        # Everything but the seed is identical.
        strip = lambda c: dataclasses.replace(  # noqa: E731
            c, sim=dataclasses.replace(c.sim, seed=0))
        assert strip(configs[0]) == strip(configs[1]) == strip(configs[2])

    def test_derive_seed_deterministic(self):
        assert derive_seed(1, 0) == 1
        assert derive_seed(1, 1) == derive_seed(1, 1)
        assert derive_seed(1, 1) != derive_seed(1, 2)
        assert derive_seed(1, 1) != derive_seed(2, 1)

    def test_quality_preset_overrides_and_axis_grid(self):
        spec = spec_from(MINIMAL + """
[[axes]]
path = "host.cpu.cores"
values = [2, 4, 6]

[quality.quick]
"sim.duration" = 2e-3

[quality.quick.axes]
"host.cpu.cores" = [2]
""")
        full = spec.expand()
        assert [c.host.cpu.cores for c in full] == [2, 4, 6]
        quick = spec.expand(quality="quick")
        assert [c.host.cpu.cores for c in quick] == [2]
        assert quick[0].sim.duration == 2e-3

    def test_default_quality_applies_when_quality_omitted(self):
        spec = spec_from("""
[scenario]
name = "t"
default_quality = "quick"

[quality.quick]
"sim.duration" = 2e-3
""")
        (config,) = spec.expand()
        assert config.sim.duration == 2e-3

    def test_base_overrides_are_typed_like_python_configs(self):
        spec = spec_from(MINIMAL + """
[base]
"sim.warmup" = 4e-3
"sim.duration" = 8e-3
""")
        (config,) = spec.expand()
        # TOML floats land as the same doubles Python literals produce,
        # so config digests (and cached results) are shared.
        assert config.sim.warmup == 4e-3
        assert config.sim.duration == 8e-3

    def test_int_coerced_to_float_field(self):
        spec = spec_from(MINIMAL + """
[base]
"workload.offered_load" = 1
""")
        (config,) = spec.expand()
        assert config.workload.offered_load == 1.0
        assert isinstance(config.workload.offered_load, float)


# ---------------------------------------------------------------------------
# Bundled specs and the figure oracles
# ---------------------------------------------------------------------------

class TestBundledSpecs:
    def test_every_bundled_spec_validates_and_expands(self):
        specs = bundled_scenarios()
        assert {"figure1", "figure3", "figure4", "figure5", "figure6",
                "iommu_contention", "memory_antagonist"} <= set(specs)
        for spec in specs.values():
            if spec.driver == "sweep":
                assert spec.expand(), spec.name
                for quality in spec.quality:
                    assert spec.expand(quality=quality), spec.name
            else:
                spec.base_config()

    def test_find_scenario_by_name_and_by_path(self, tmp_path):
        assert find_scenario("figure3").name == "figure3"
        path = tmp_path / "mine.toml"
        path.write_text('[scenario]\nname = "mine"\n')
        assert find_scenario(str(path)).name == "mine"

    def test_figure3_spec_expands_to_historical_config_list(self):
        """Byte-identity anchor: results are pure functions of the
        config, so dataclass-equal config lists in the same order
        guarantee identical sweep tables and figure CSVs."""
        spec = load_bundled("figure3")
        for quality, (warmup, duration), cores in (
            ("quick", (4e-3, 8e-3), (2, 6, 8, 10, 12, 16)),
            ("full", (6e-3, 14e-3), (2, 4, 6, 8, 10, 12, 14, 16)),
        ):
            base = baseline_config(warmup=warmup, duration=duration)
            oracle = []
            for enabled in (True, False):
                for n in cores:
                    host = dataclasses.replace(
                        base.host,
                        iommu=dataclasses.replace(base.host.iommu,
                                                  enabled=enabled),
                        cpu=dataclasses.replace(base.host.cpu,
                                                cores=n))
                    oracle.append(dataclasses.replace(base, host=host))
            assert spec.expand(quality=quality) == oracle

    def test_figure5_spec_scales_region_axis(self):
        spec = load_bundled("figure5")
        configs = spec.expand(quality="quick")
        on = [c for c in configs if c.host.iommu.enabled]
        assert [c.host.rx_region_bytes for c in on] == [
            4 * 2**20, 8 * 2**20, 12 * 2**20, 16 * 2**20]


# ---------------------------------------------------------------------------
# In-memory specs (the sweep_* wrappers' path)
# ---------------------------------------------------------------------------

class TestProgrammaticSpecs:
    def test_sweep_helpers_expand_through_specs(self):
        spec = ScenarioSpec(
            name="inline",
            axes=(SweepAxis("host.iommu.enabled", (True, False)),
                  SweepAxis("host.cpu.cores", (2, 4))))
        configs = spec.expand(base=baseline_config(warmup=1e-3,
                                                   duration=2e-3))
        assert len(configs) == 4
        assert all(c.sim.warmup == 1e-3 for c in configs)

    def test_run_executes_through_shared_pipeline(self):
        spec = ScenarioSpec(
            name="inline",
            base={"sim.warmup": 5e-4, "sim.duration": 1e-3,
                  "workload.senders": 8},
            axes=(SweepAxis("host.cpu.cores", (2,)),))
        table = spec.run()
        (result,) = list(table)
        assert result.params["cores"] == 2
        assert result.metrics["app_throughput_gbps"] > 0
