"""The cross-process half of the telemetry plane: worker lifecycle
events, the durable JSONL run ledger, and the mergeable fold over it.

The acceptance-level claims under test: workers stream queued/started/
finished/failed events whatever the worker count; the ledger file
alone reconstructs a sweep summary that matches the result table; and
``RunAggregate`` is a true mergeable fold —
``fold(a + b) == fold(a).merge(fold(b))`` for any split.
"""

import json

import pytest

from repro.cli import main
from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.core.ledger import (
    LedgerWriter,
    list_runs,
    read_run,
    resolve_run,
    summarize_run,
)
from repro.core.parallel import run_many
from repro.obs.telemetry import RunAggregate


def tiny_config(seed=3, cores=2, senders=4):
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=cores)),
        workload=WorkloadConfig(senders=senders),
        sim=SimConfig(warmup=0.5e-3, duration=1e-3, seed=seed),
    )


def crashing_config():
    """Passes validation, explodes at graph-build inside the worker
    (pickling skips ``__post_init__``, so the bad transport travels)."""
    config = tiny_config()
    object.__setattr__(config, "transport", "definitely-not-a-cc")
    return config


def events_of(stream, kind):
    return [event for event in stream if event.get("ev") == kind]


class TestLedgerWriter:
    def test_begin_and_end_rows(self, tmp_path):
        with LedgerWriter(tmp_path, label="smoke") as ledger:
            ledger.append({"ev": "plan", "total": 2})
        rows = read_run(ledger.path)
        assert [r["ev"] for r in rows] == ["begin", "plan", "end"]
        begin, _, end = rows
        assert begin["run_id"] == ledger.run_id
        assert begin["label"] == "smoke"
        assert begin["v"] == 1
        assert end["ok"] is True
        assert end["rows"] == 2  # rows before the end row itself
        assert all("ts" in r for r in rows)

    def test_exception_marks_run_not_ok(self, tmp_path):
        with pytest.raises(RuntimeError):
            with LedgerWriter(tmp_path, label="boom") as ledger:
                ledger.append({"ev": "plan", "total": 1})
                raise RuntimeError("abort")
        end = read_run(ledger.path)[-1]
        assert end["ev"] == "end"
        assert end["ok"] is False

    def test_meta_lands_in_begin_row(self, tmp_path):
        ledger = LedgerWriter(tmp_path, label="m",
                              meta={"argv": ["sweep", "cores"]})
        ledger.close()
        begin = read_run(ledger.path)[0]
        assert begin["meta"] == {"argv": ["sweep", "cores"]}

    def test_append_after_close_is_noop(self, tmp_path):
        ledger = LedgerWriter(tmp_path, label="x")
        ledger.close()
        ledger.append({"ev": "plan"})
        ledger.close()  # idempotent
        assert [r["ev"] for r in read_run(ledger.path)] \
            == ["begin", "end"]

    def test_colliding_names_get_serial_suffix(self, tmp_path):
        first = LedgerWriter(tmp_path, label="same")
        second = LedgerWriter(tmp_path, label="same")
        first.close()
        second.close()
        assert first.path != second.path
        assert second.run_id.startswith(first.run_id)

    def test_writer_is_an_event_sink(self, tmp_path):
        ledger = LedgerWriter(tmp_path, label="sink")
        ledger({"ev": "queued", "index": 0})  # __call__ == append
        ledger.close()
        assert events_of(read_run(ledger.path), "queued")

    def test_corrupt_row_named_in_error(self, tmp_path):
        ledger = LedgerWriter(tmp_path, label="bad")
        ledger.close()
        with open(ledger.path, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(ValueError, match="corrupt ledger row"):
            read_run(ledger.path)


class TestLifecycleEvents:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_event_stream_shape(self, workers):
        events = []
        configs = [tiny_config(seed=s) for s in (5, 6)]
        run_many(configs, workers=workers, events=events.append)
        (plan,) = events_of(events, "plan")
        assert plan["total"] == 2
        assert plan["pending"] == 2
        assert len(events_of(events, "queued")) == 2
        assert len(events_of(events, "started")) == 2
        finished = events_of(events, "finished")
        assert sorted(f["index"] for f in finished) == [0, 1]
        for event in finished:
            assert event["wall_s"] > 0
            assert event["engine_events"] > 0
            assert event["pid"] > 0
            assert event["metrics"]["app_throughput_gbps"] > 0
            assert "drop_rate" in event["metrics"]
            assert event["params"]["cores"] == 2

    def test_no_events_means_no_work(self):
        # events=None is the default: nothing observable changes.
        outcomes = run_many([tiny_config()])
        assert outcomes[0].result.metrics["packets_sent"] > 0

    def test_failures_keep_emits_failed_event(self):
        events = []
        table_rows = run_many(
            [tiny_config(), crashing_config()],
            events=events.append, failures="keep")
        (failed,) = events_of(events, "failed")
        assert failed["index"] == 1
        assert failed["failure_kind"] == "error"
        assert failed["exception_type"] == "ValueError"
        assert "unknown congestion control" in failed["error"]
        assert "ValueError" in failed["traceback_tail"]
        row = table_rows[1].result
        assert row.kind == "error"
        assert row.exception_type == "ValueError"
        assert row.traceback_tail
        assert len(row.traceback_tail) <= row.TRACEBACK_LIMIT

    def test_failures_keep_in_pool_too(self):
        events = []
        rows = run_many([crashing_config(), tiny_config()],
                        workers=2, events=events.append,
                        failures="keep")
        assert events_of(events, "failed")[0]["index"] == 0
        assert rows[0].result.params["failed"] is True
        assert rows[1].result.metrics["packets_sent"] > 0


class TestRunAggregate:
    def stream(self):
        events = []
        run_many([tiny_config(seed=s) for s in (5, 6, 7)],
                 events=events.append)
        return events

    def test_fold_counts_match_stream(self):
        events = self.stream()
        aggregate = RunAggregate().fold_all(events)
        assert aggregate.total == 3
        assert aggregate.finished == 3
        assert aggregate.failed == 0
        assert aggregate.done == 3
        assert aggregate.sketches["wall_s"].count == 3
        assert aggregate.sketches["throughput_gbps"].count == 3
        assert aggregate.root_causes.total == 3

    def test_fold_split_equals_merge_of_partials(self):
        events = self.stream()
        whole = RunAggregate().fold_all(events)
        for cut in (1, len(events) // 2, len(events) - 1):
            left = RunAggregate().fold_all(events[:cut])
            right = RunAggregate().fold_all(events[cut:])
            merged = left.merge(right)
            assert merged.to_dict() == whole.to_dict()

    def test_round_trip(self):
        aggregate = RunAggregate().fold_all(self.stream())
        restored = RunAggregate.from_dict(
            json.loads(json.dumps(aggregate.to_dict())))
        assert restored.to_dict() == aggregate.to_dict()

    def test_merge_rejects_mismatched_alpha(self):
        with pytest.raises(ValueError):
            RunAggregate(alpha=0.01).merge(RunAggregate(alpha=0.02))

    def test_eta_machinery(self):
        aggregate = RunAggregate()
        aggregate.fold({"ev": "plan", "total": 4, "ts": 100.0})
        assert aggregate.eta_s() is None  # nothing done yet
        aggregate.fold({"ev": "finished", "index": 0, "wall_s": 2.0,
                        "ts": 110.0})
        aggregate.fold({"ev": "finished", "index": 1, "wall_s": 2.0,
                        "ts": 120.0})
        # 2 live runs in 20 s → 0.1 runs/s → 2 remaining ≈ 20 s.
        assert aggregate.eta_s() == pytest.approx(20.0)
        assert aggregate.elapsed_s == pytest.approx(20.0)


class TestLedgerDiscovery:
    def write(self, directory, label):
        ledger = LedgerWriter(directory, label=label)
        ledger.append({"ev": "plan", "total": 1})
        ledger.close()
        return ledger

    def test_list_runs(self, tmp_path):
        a = self.write(tmp_path, "first")
        b = self.write(tmp_path, "second")
        infos = list_runs(tmp_path)
        assert [i.run_id for i in infos] == [a.run_id, b.run_id]
        assert infos[0].label == "first"
        assert infos[0].finished is True
        assert infos[0].rows == 3

    def test_unfinished_run_detected(self, tmp_path):
        ledger = LedgerWriter(tmp_path, label="open")
        ledger.append({"ev": "plan", "total": 5})
        # No close(): simulates a killed sweep.
        (info,) = list_runs(tmp_path)
        assert info.finished is False

    def test_resolve_latest_exact_prefix_and_path(self, tmp_path):
        a = self.write(tmp_path, "alpha")
        b = self.write(tmp_path, "beta")
        assert resolve_run("latest", tmp_path) == b.path
        assert resolve_run(a.run_id, tmp_path) == a.path
        assert resolve_run("alpha-", tmp_path) == a.path
        assert resolve_run(str(b.path), tmp_path) == b.path

    def test_resolve_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resolve_run("latest", tmp_path / "empty")
        self.write(tmp_path, "run")
        self.write(tmp_path, "run")
        with pytest.raises(FileNotFoundError):
            resolve_run("nope", tmp_path)
        with pytest.raises(ValueError, match="ambiguous"):
            resolve_run("run-", tmp_path)

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        from repro.core.ledger import default_ledger_dir

        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "led"))
        assert default_ledger_dir() == tmp_path / "led"


class TestLedgerReconstruction:
    def make_ledger(self, directory):
        configs = [tiny_config(seed=s) for s in (5, 6, 7)]
        with LedgerWriter(directory, label="sweep") as ledger:
            outcomes = run_many(configs, events=ledger)
        return ledger, outcomes

    def test_summary_matches_result_table(self, tmp_path):
        ledger, outcomes = self.make_ledger(tmp_path)
        aggregate = summarize_run(ledger.path)
        assert aggregate.run_id == ledger.run_id
        assert aggregate.ended is True
        assert aggregate.total == len(outcomes)
        assert aggregate.finished == len(outcomes)
        # Sketch extremes bracket the table's actual metric values —
        # the ledger alone reproduces the sweep's summary statistics.
        tputs = [o.result.metrics["app_throughput_gbps"]
                 for o in outcomes]
        sketch = aggregate.sketches["throughput_gbps"]
        assert sketch.count == len(tputs)
        assert sketch.minimum == min(tputs)
        assert sketch.maximum == max(tputs)

    def test_cli_runs_list_and_show(self, tmp_path, capsys):
        ledger, outcomes = self.make_ledger(tmp_path)
        assert main(["runs", "list",
                     "--ledger-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert ledger.run_id in out
        assert "[done]" in out
        assert main(["runs", "show", ledger.run_id,
                     "--ledger-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"{len(outcomes)}/{len(outcomes)}" in out
        assert "wall" in out

    def test_cli_runs_show_json_out(self, tmp_path, capsys):
        ledger, outcomes = self.make_ledger(tmp_path)
        json_path = tmp_path / "agg.json"
        assert main(["runs", "show", "latest",
                     "--ledger-dir", str(tmp_path),
                     "--json-out", str(json_path)]) == 0
        capsys.readouterr()
        state = json.loads(json_path.read_text())
        restored = RunAggregate.from_dict(state)
        assert restored.finished == len(outcomes)
        assert restored.to_dict() \
            == summarize_run(ledger.path).to_dict()

    def test_cli_runs_tail(self, tmp_path, capsys):
        ledger, _ = self.make_ledger(tmp_path)
        assert main(["runs", "tail", ledger.run_id, "-n", "2",
                     "--ledger-dir", str(tmp_path)]) == 0
        lines = [line for line in
                 capsys.readouterr().out.splitlines() if line]
        assert len(lines) == 2
        assert json.loads(lines[-1])["ev"] == "end"

    def test_cli_top_once(self, tmp_path, capsys):
        ledger, outcomes = self.make_ledger(tmp_path)
        assert main(["top", "--once",
                     "--ledger-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"{len(outcomes)}/{len(outcomes)}" in out
        assert "wall" in out


class TestSweepCliLedger:
    def test_sweep_ledger_matches_printed_table(self, tmp_path,
                                                capsys):
        code = main(["sweep", "cores", "2", "4",
                     "--warmup-ms", "0.5", "--duration-ms", "1",
                     "--ledger", "--ledger-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "ledger:" in out
        (info,) = list_runs(tmp_path)
        assert info.finished
        rows = read_run(info.path)
        # Every row parses (iter_run would have raised otherwise) and
        # the fold accounts for every table row: 2 cores × 2 IOMMU
        # states = 4 runs.
        aggregate = summarize_run(info.path)
        assert aggregate.total == 4
        assert aggregate.done == 4
        assert aggregate.failed == 0
        assert events_of(rows, "finished")
