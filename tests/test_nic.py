"""Unit tests for the NIC: buffer, rings, DMA pipeline, backpressure."""

import random

import pytest

from repro.core.config import IommuConfig, MemoryConfig, NicConfig, PcieConfig
from repro.host.addressing import build_thread_layouts
from repro.host.iommu import Iommu
from repro.host.iotlb import Iotlb
from repro.host.memory import MemoryController
from repro.host.nic import Nic, RxRing
from repro.host.pagetable import PageTable
from repro.host.pcie import PcieLink
from repro.net.packet import Ack, Packet
from repro.sim import CreditPool, Simulator


class TestRxRing:
    def test_take_until_empty(self):
        ring = RxRing(2)
        assert ring.take()
        assert ring.take()
        assert not ring.take()
        assert ring.exhaustions == 1

    def test_replenish_capped_at_capacity(self):
        ring = RxRing(4)
        ring.take()
        ring.replenish(100)
        assert ring.free == 4

    def test_negative_replenish_rejected(self):
        with pytest.raises(ValueError):
            RxRing(4).replenish(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            RxRing(0)


def make_nic(n_threads=2, iommu_enabled=False, buffer_bytes=2**20,
             ring_descriptors=1024, nic_overrides=None,
             pcie_overrides=None):
    sim = Simulator()
    memory = MemoryController(sim, MemoryConfig())
    pagetable = PageTable()
    layouts = build_thread_layouts(n_threads, 12 * 2**20, hugepages=True)
    for layout in layouts:
        for region in layout.all_regions():
            pagetable.register_region(region)
    iommu = Iommu(IommuConfig(enabled=iommu_enabled, iotlb_ways=None),
                  Iotlb(128), pagetable, memory)
    pcie_config = PcieConfig(**(pcie_overrides or {}))
    pcie = PcieLink(sim, pcie_config)
    credits = CreditPool(sim, pcie_config.max_inflight_bytes)
    delivered = []
    nic_config = NicConfig(buffer_bytes=buffer_bytes,
                           ring_descriptors=ring_descriptors,
                           replenish_batch=min(32, ring_descriptors),
                           **(nic_overrides or {}))
    nic = Nic(sim, nic_config, pcie, credits, iommu, memory, layouts,
              random.Random(1), deliver=delivered.append)
    return sim, nic, delivered


def pkt(seq, thread_id=0, payload=4096, wire=4452, flow=0):
    return Packet(flow_id=flow, seq=seq, payload_bytes=payload,
                  wire_bytes=wire, sent_time=0.0, thread_id=thread_id)


def test_packet_flows_through_dma():
    sim, nic, delivered = make_nic()
    nic.receive(pkt(0))
    sim.run(until=1e-4)
    assert len(delivered) == 1
    assert delivered[0].dma_done_time is not None
    assert delivered[0].nic_arrival_time == 0.0
    assert nic.dma_completed_packets == 1


def test_dma_latency_includes_fixed_and_memory_components():
    sim, nic, delivered = make_nic()
    nic.receive(pkt(0))
    sim.run(until=1e-4)
    latency = delivered[0].dma_done_time - delivered[0].nic_arrival_time
    expected_min = (nic.pcie.config.dma_fixed_latency
                    + nic.pcie.transfer_time(4452)
                    + nic.memory.config.idle_latency)
    assert latency == pytest.approx(expected_min, rel=0.01)


def test_buffer_overflow_drops():
    # Tiny buffer: only one packet (plus inflight) fits.
    sim, nic, _ = make_nic(buffer_bytes=5000)
    nic.receive(pkt(0))
    nic.receive(pkt(1))  # buffer + inflight exceeded -> drop
    assert nic.dropped_packets == 1
    assert nic.rx_packets == 2
    assert nic.drop_rate() == pytest.approx(0.5)


def test_credit_backpressure_limits_inflight():
    # Credits cover 5 wire packets; the 6th waits in the buffer.
    sim, nic, delivered = make_nic()
    for seq in range(8):
        nic.receive(pkt(seq))
    assert nic.credits.in_use <= nic.credits.capacity
    inflight_pkts = nic._inflight_bytes // 4452
    assert inflight_pkts == 5
    assert len(nic.buffer) == 3
    sim.run(until=1e-3)
    assert len(delivered) == 8  # drains eventually


def test_descriptor_exhaustion_stalls_head_of_line():
    sim, nic, delivered = make_nic(ring_descriptors=2)
    for seq in range(4):
        nic.receive(pkt(seq))
    sim.run(until=1e-3)
    # Only 2 descriptors and nobody replenishes: 2 packets DMA'd.
    assert len(delivered) == 2
    assert len(nic.buffer) == 2
    nic.replenish(0, 2)
    sim.run(until=2e-3)
    assert len(delivered) == 4


def test_fifo_order_preserved():
    sim, nic, delivered = make_nic()
    for seq in range(10):
        nic.receive(pkt(seq))
    sim.run(until=1e-3)
    assert [p.seq for p in delivered] == list(range(10))


def test_sustained_drain_rate_near_littles_law():
    # Huge rings: nobody replenishes descriptors in this open loop.
    sim, nic, delivered = make_nic(ring_descriptors=10**6)
    # Offer far above capacity for 2 ms; measure the drain rate.
    interval = 0.2e-6  # 178 Gbps offered
    state = {"seq": 0}

    def inject():
        nic.receive(pkt(state["seq"], thread_id=state["seq"] % 2))
        state["seq"] += 1
        if sim.now < 2e-3:
            sim.call(interval, inject)

    sim.call(0.0, inject)
    sim.run(until=2e-3)
    drained_bps = nic.dma_completed_payload_bytes * 8 / 2e-3
    # IOMMU off: bound ~ C/T_base ≈ 113 Gbps wire (≈104 Gbps payload),
    # further capped by PCIe goodput 110 Gbps wire ≈ 101 payload.
    assert 85e9 < drained_bps < 110e9


def test_iommu_misses_slow_the_drain():
    def drain_rate(iommu_enabled, n_threads):
        sim, nic, _ = make_nic(n_threads=n_threads,
                               iommu_enabled=iommu_enabled,
                               ring_descriptors=10**6)
        state = {"seq": 0}

        def inject():
            nic.receive(pkt(state["seq"],
                            thread_id=state["seq"] % n_threads))
            state["seq"] += 1
            if sim.now < 2e-3:
                sim.call(0.2e-6, inject)

        sim.call(0.0, inject)
        sim.run(until=2e-3)
        return nic.dma_completed_payload_bytes

    # 16 threads' working set thrashes a 128-entry IOTLB.
    assert drain_rate(True, 16) < 0.92 * drain_rate(False, 16)


def test_transmit_ack_translates_tx_pages():
    sim, nic, _ = make_nic(iommu_enabled=True)
    sent = []
    ack = Ack(flow_id=0, seq=0, sent_time_echo=0.0, host_delay=1e-6)
    nic.transmit_ack(ack, 0, on_wire=sent.append)
    sim.run(until=1e-4)
    assert sent == [ack]
    assert nic.iommu.translations == 1
    assert nic.acks_sent == 1


def test_ack_coalescing_reduces_tx():
    sim, nic, _ = make_nic(iommu_enabled=True,
                           nic_overrides={"ack_coalescing": 4})
    sent = []
    for i in range(8):
        nic.transmit_ack(
            Ack(flow_id=0, seq=i, sent_time_echo=0.0, host_delay=0.0),
            0, on_wire=sent.append)
    sim.run(until=1e-3)
    assert len(sent) == 2  # one wire ACK per 4


def test_buffer_fraction_reflects_occupancy():
    sim, nic, _ = make_nic()
    assert nic.buffer_fraction() == 0.0
    for seq in range(20):
        nic.receive(pkt(seq))
    assert nic.buffer_fraction() > 0.0


def test_reset_stats_zeroes_counters():
    sim, nic, _ = make_nic()
    nic.receive(pkt(0))
    sim.run(until=1e-4)
    nic.reset_stats()
    assert nic.rx_packets == 0
    assert nic.dma_completed_packets == 0
    assert nic.mean_dma_latency() == 0.0
