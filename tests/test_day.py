"""Tests for the one-host-day simulation (time-varying load)."""

import pytest

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.core.experiment import ExperimentHandle
from repro.workload.day import DayBin, diurnal_schedule, simulate_day


def open_loop_config(load=0.5, cores=8, senders=8):
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=cores)),
        workload=WorkloadConfig(senders=senders, offered_load=load),
        sim=SimConfig(warmup=1e-3, duration=2e-3, seed=4),
    )


class TestSchedule:
    def test_length_and_bounds(self):
        schedule = diurnal_schedule(48, seed=1)
        assert len(schedule) == 48
        for load, antagonists in schedule:
            assert 0.05 <= load <= 1.0
            assert antagonists >= 0

    def test_deterministic(self):
        assert diurnal_schedule(24, seed=9) == diurnal_schedule(24, seed=9)

    def test_has_diurnal_swing(self):
        schedule = diurnal_schedule(48, seed=1)
        loads = [load for load, _ in schedule]
        assert max(loads) - min(loads) > 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_schedule(0)
        with pytest.raises(ValueError):
            diurnal_schedule(10, base_load=0.0)


class TestSetOfferedLoad:
    def test_requires_open_loop(self):
        config = ExperimentConfig(
            host=HostConfig(cpu=CpuConfig(cores=4)),
            workload=WorkloadConfig(senders=4),  # closed loop
            sim=SimConfig(warmup=1e-3, duration=1e-3, seed=1))
        handle = ExperimentHandle(config)
        with pytest.raises(ValueError):
            handle.workload.set_offered_load(0.5)

    def test_rate_change_takes_effect(self):
        handle = ExperimentHandle(open_loop_config(load=0.2))
        handle.sim.run(until=2e-3)
        before = handle.host.nic.rx_packets
        handle.workload.set_offered_load(0.8)
        handle.sim.run(until=4e-3)
        after = handle.host.nic.rx_packets - before
        assert after > 2 * before  # ~4x the rate over an equal window

    def test_range_validated(self):
        handle = ExperimentHandle(open_loop_config())
        with pytest.raises(ValueError):
            handle.workload.set_offered_load(0.0)
        with pytest.raises(ValueError):
            handle.workload.set_offered_load(3.0)


class TestSimulateDay:
    def test_requires_open_loop(self):
        config = ExperimentConfig(
            host=HostConfig(cpu=CpuConfig(cores=4)),
            workload=WorkloadConfig(senders=4),
            sim=SimConfig(warmup=1e-3, duration=1e-3, seed=1))
        with pytest.raises(ValueError):
            simulate_day(config, [(0.5, 0)])

    def test_bins_measure_their_own_load(self):
        schedule = [(0.2, 0), (0.7, 0)]
        bins = simulate_day(open_loop_config(), schedule,
                            bin_duration=3e-3, warmup_per_bin=1e-3)
        assert [b.index for b in bins] == [0, 1]
        assert isinstance(bins[0], DayBin)
        assert bins[1].link_utilization > 2 * bins[0].link_utilization

    def test_antagonist_applied_per_bin(self):
        schedule = [(0.3, 0), (0.3, 15)]
        bins = simulate_day(open_loop_config(), schedule,
                            bin_duration=2e-3)
        assert bins[0].antagonist_cores == 0
        assert bins[1].antagonist_cores == 15
