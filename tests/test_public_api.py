"""Public-API surface checks: everything advertised is importable."""

import importlib
import pathlib

import pytest

import repro


def test_version_string():
    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize("name", repro.__all__)
def test_top_level_exports_resolve(name):
    assert getattr(repro, name) is not None


@pytest.mark.parametrize("module", [
    "repro.sim",
    "repro.host",
    "repro.net",
    "repro.transport",
    "repro.workload",
    "repro.core",
    "repro.obs",
    "repro.analysis",
    "repro.cli",
])
def test_subpackage_all_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name) is not None, f"{module}.{name}"


def test_all_lists_are_sorted_and_unique():
    for module in ("repro", "repro.sim", "repro.host", "repro.net",
                   "repro.transport", "repro.workload", "repro.core",
                   "repro.obs", "repro.analysis"):
        exported = importlib.import_module(module).__all__
        assert len(exported) == len(set(exported)), module
        assert list(exported) == sorted(exported), module


def test_py_typed_marker_present():
    marker = pathlib.Path(repro.__file__).parent / "py.typed"
    assert marker.exists()


def test_docstrings_on_public_modules():
    for module in ("repro", "repro.sim.engine", "repro.host.nic",
                   "repro.host.memory", "repro.transport.swift",
                   "repro.core.model", "repro.analysis.figures"):
        assert importlib.import_module(module).__doc__, module
