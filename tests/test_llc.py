"""Tests for the dynamic LLC/DDIO residency model (leaky DMA)."""

import random


from repro.core.config import DdioConfig, HostConfig, MemoryConfig
from repro.host import ReceiverHost
from repro.host.llc import DynamicLlcModel
from repro.host.memory import MemoryController
from repro.net.packet import Packet
from repro.sim import Simulator


def make_model(slice_bytes=16384, enabled=True):
    sim = Simulator()
    memory = MemoryController(sim, MemoryConfig())
    model = DynamicLlcModel(
        DdioConfig(enabled=enabled, dynamic_llc=True,
                   ddio_slice_bytes=slice_bytes),
        memory)
    return model


def pkt(seq, payload=4096):
    return Packet(flow_id=0, seq=seq, payload_bytes=payload,
                  wire_bytes=payload + 356, sent_time=0.0, thread_id=0)


def test_prompt_copy_hits_in_llc():
    model = make_model(slice_bytes=16384)
    p = pkt(0)
    model.record_dma_write(p)
    model.record_copy(p)
    assert model.llc_hits == 1
    assert model.llc_misses == 0
    assert model._reads.bytes_pending == 0


def test_delayed_copy_misses_after_slice_turnover():
    # Slice fits 4 packets; copy packet 0 after 5 newer DMAs: evicted.
    model = make_model(slice_bytes=4 * 4096)
    first = pkt(0)
    model.record_dma_write(first)
    for seq in range(1, 6):
        model.record_dma_write(pkt(seq))
    model.record_copy(first)
    assert model.llc_misses == 1
    assert model._reads.bytes_pending == 4096


def test_residency_boundary_exact():
    model = make_model(slice_bytes=2 * 4096)
    a = pkt(0)
    model.record_dma_write(a)
    model.record_dma_write(pkt(1))  # cursor - stamp = 4096 < 8192: hit
    model.record_copy(a)
    assert model.llc_hits == 1
    b = pkt(2)
    model.record_dma_write(b)
    model.record_dma_write(pkt(3))
    model.record_dma_write(pkt(4))  # cursor - stamp = 8192: evicted
    model.record_copy(b)
    assert model.llc_misses == 1


def test_ddio_disabled_every_copy_misses():
    model = make_model(enabled=False)
    p = pkt(0)
    model.record_dma_write(p)
    model.record_copy(p)
    assert model.llc_misses == 1


def test_plain_byte_count_treated_as_miss():
    model = make_model()
    model.record_copy(4096)
    assert model.llc_misses == 1
    assert model.payload_bytes_copied == 4096


def test_hit_ratio():
    model = make_model(slice_bytes=10 * 4096)
    for seq in range(4):
        p = pkt(seq)
        model.record_dma_write(p)
        model.record_copy(p)
    assert model.hit_ratio() == 1.0


def test_host_uses_dynamic_model_when_configured():
    sim = Simulator()
    config = HostConfig(
        ddio=DdioConfig(dynamic_llc=True, ddio_slice_bytes=2**20))
    host = ReceiverHost(sim, config, random.Random(0))
    assert isinstance(host.copy_model, DynamicLlcModel)


def test_leaky_dma_emerges_with_cpu_backlog():
    """End-to-end: a slow CPU lets the DDIO slice turn over before the
    copy happens, so read misses appear (the leaky-DMA effect)."""

    from repro.core.config import CpuConfig
    from repro.net.packet import Packet as P

    def run(core_rate_bps):
        sim = Simulator()
        config = HostConfig(
            cpu=CpuConfig(cores=1, core_rate_bps=core_rate_bps),
            ddio=DdioConfig(dynamic_llc=True,
                            ddio_slice_bytes=64 * 4096),
        )
        host = ReceiverHost(sim, config, random.Random(0))
        host.attach_ack_egress(lambda a: None)
        host.attach_receiver(lambda p: None)
        # Offer 1000 packets fast: DMA far outpaces the CPU.
        for i in range(1000):
            pkt = P(0, i, 4096, 4452, 0.0, 0)
            sim.call(i * 0.4e-6, host.deliver_packet, pkt)
        sim.run(until=50e-3)
        return host.copy_model.hit_ratio()

    fast_cpu = run(150e9)    # faster than the DMA drain: prompt copies
    slow_cpu = run(2e9)      # large backlog: slice turns over
    assert fast_cpu > 0.9
    assert slow_cpu < 0.5
