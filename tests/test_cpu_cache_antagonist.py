"""Unit tests for receiver threads, the copy-traffic model, and the
STREAM antagonist."""

import random

import pytest

from repro.core.config import (
    CpuConfig,
    DdioConfig,
    IommuConfig,
    MemoryConfig,
    NicConfig,
    PcieConfig,
)
from repro.host.addressing import build_thread_layouts
from repro.host.antagonist import StreamAntagonist
from repro.host.cache import CopyTrafficModel
from repro.host.cpu import ReceiverThread
from repro.host.iommu import Iommu
from repro.host.iotlb import Iotlb
from repro.host.memory import MemoryController
from repro.host.nic import Nic
from repro.host.pagetable import PageTable
from repro.host.pcie import PcieLink
from repro.net.packet import Packet
from repro.sim import CreditPool, Simulator


def make_thread(cores_rate_bps=11.5e9, slowdown=0.0, batch=4):
    sim = Simulator()
    memory = MemoryController(sim, MemoryConfig())
    layouts = build_thread_layouts(1, 12 * 2**20, hugepages=True)
    pagetable = PageTable()
    for region in layouts[0].all_regions():
        pagetable.register_region(region)
    pcie_config = PcieConfig()
    nic = Nic(
        sim, NicConfig(), PcieLink(sim, pcie_config),
        CreditPool(sim, pcie_config.max_inflight_bytes),
        Iommu(IommuConfig(enabled=False), Iotlb(128), pagetable, memory),
        memory, layouts, random.Random(0), deliver=lambda p: None)
    copy_model = CopyTrafficModel(DdioConfig(), memory)
    processed = []
    thread = ReceiverThread(
        sim, 0, CpuConfig(cores=1, core_rate_bps=cores_rate_bps,
                          contention_slowdown=slowdown),
        nic, memory, copy_model, on_processed=processed.append,
        replenish_batch=batch)
    return sim, thread, nic, processed, copy_model


def pkt(seq, payload=4096):
    p = Packet(flow_id=0, seq=seq, payload_bytes=payload,
               wire_bytes=payload + 356, sent_time=0.0, thread_id=0)
    p.nic_arrival_time = 0.0
    p.dma_done_time = 0.0
    return p


def test_processing_time_matches_core_rate():
    sim, thread, _, processed, _ = make_thread(cores_rate_bps=11.5e9)
    thread.enqueue(pkt(0))
    sim.run(until=10e-3)
    assert len(processed) == 1
    expected = 4096 * 8 / 11.5e9
    assert processed[0].cpu_done_time == pytest.approx(expected)


def test_fifo_processing_and_queueing():
    sim, thread, _, processed, _ = make_thread()
    for seq in range(5):
        thread.enqueue(pkt(seq))
    sim.run(until=10e-3)
    assert [p.seq for p in processed] == list(range(5))
    per_pkt = 4096 * 8 / 11.5e9
    assert processed[-1].cpu_done_time == pytest.approx(5 * per_pkt)


def test_throughput_capped_at_core_rate():
    sim, thread, _, processed, _ = make_thread()
    n = 200
    for seq in range(n):
        thread.enqueue(pkt(seq))
    sim.run(until=10e-3)
    elapsed = processed[-1].cpu_done_time
    rate = n * 4096 * 8 / elapsed
    assert rate == pytest.approx(11.5e9, rel=0.01)


def test_descriptors_replenished_in_batches():
    sim, thread, nic, _, _ = make_thread(batch=4)
    nic.rings[0].free = 0
    for seq in range(4):
        thread.enqueue(pkt(seq))
    sim.run(until=10e-3)
    assert nic.rings[0].free == 4


def test_flush_descriptors_returns_partial_batch():
    sim, thread, nic, _, _ = make_thread(batch=100)
    nic.rings[0].free = 0
    thread.enqueue(pkt(0))
    sim.run(until=10e-3)
    assert nic.rings[0].free == 0  # still batched
    thread.flush_descriptors()
    assert nic.rings[0].free == 1


def test_contention_slows_processing():
    sim, thread, _, processed, _ = make_thread(slowdown=0.5)
    # Saturate the memory bus.
    thread.memory.register_constant("stream", "cpu", 200e9)
    sim.run(until=1e-3)
    thread.enqueue(pkt(0))
    sim.run(until=2e-3)
    base = 4096 * 8 / 11.5e9
    measured = processed[0].cpu_done_time - 1e-3
    assert measured == pytest.approx(base * 1.5, rel=0.05)


def test_mean_queue_delay_statistic():
    sim, thread, _, processed, _ = make_thread()
    for seq in range(3):
        thread.enqueue(pkt(seq))
    sim.run(until=10e-3)
    assert thread.mean_queue_delay() > 0
    assert thread.processed_packets == 3


def test_utilization_fraction():
    sim, thread, _, _, _ = make_thread()
    thread.enqueue(pkt(0))
    sim.run(until=1e-3)
    per_pkt = 4096 * 8 / 11.5e9
    assert thread.utilization(1e-3) == pytest.approx(per_pkt / 1e-3)


class TestCopyTrafficModel:
    def test_ddio_on_fractions(self):
        sim = Simulator()
        memory = MemoryController(sim, MemoryConfig())
        model = CopyTrafficModel(DdioConfig(enabled=True), memory)
        model.record_copy(10000)
        assert model._reads.bytes_pending == 2900
        assert model._writes.bytes_pending == 500

    def test_ddio_off_reads_full_payload(self):
        sim = Simulator()
        memory = MemoryController(sim, MemoryConfig())
        model = CopyTrafficModel(DdioConfig(enabled=False), memory)
        model.record_copy(10000)
        assert model._reads.bytes_pending == 10000

    def test_accumulates_payload_counter(self):
        sim = Simulator()
        memory = MemoryController(sim, MemoryConfig())
        model = CopyTrafficModel(DdioConfig(), memory)
        model.record_copy(100)
        model.record_copy(200)
        assert model.payload_bytes_copied == 300


class TestStreamAntagonist:
    def test_demand_scales_with_cores(self):
        sim = Simulator()
        memory = MemoryController(sim, MemoryConfig())
        ant = StreamAntagonist(memory, cores=4, per_core_Bps=6.5e9)
        assert ant.demand_Bps == pytest.approx(26e9)

    def test_achieved_saturates_at_capacity(self):
        sim = Simulator()
        memory = MemoryController(
            sim, MemoryConfig(achievable_Bps=90e9))
        ant = StreamAntagonist(memory, cores=15, per_core_Bps=6.5e9)
        sim.run(until=1e-3)
        assert ant.achieved_Bps() <= 90e9
        assert ant.achieved_Bps() > 85e9

    def test_set_cores_updates_demand(self):
        sim = Simulator()
        memory = MemoryController(sim, MemoryConfig())
        ant = StreamAntagonist(memory, cores=0, per_core_Bps=6.5e9)
        ant.set_cores(10)
        assert ant.demand_Bps == pytest.approx(65e9)

    def test_negative_cores_rejected(self):
        sim = Simulator()
        memory = MemoryController(sim, MemoryConfig())
        with pytest.raises(ValueError):
            StreamAntagonist(memory, cores=-1, per_core_Bps=1e9)
        ant = StreamAntagonist(memory, cores=0, per_core_Bps=1e9)
        with pytest.raises(ValueError):
            ant.set_cores(-2)
