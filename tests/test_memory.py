"""Unit tests for the memory controller."""

import pytest

from repro.core.config import MemoryConfig
from repro.host.memory import (
    MemoryController,
    queue_delay_for,
    weighted_water_fill,
)
from repro.sim import Simulator


class TestWaterFill:
    def test_empty(self):
        assert weighted_water_fill([], [], 100) == []

    def test_under_capacity_everyone_satisfied(self):
        alloc = weighted_water_fill([10, 20], [1, 1], 100)
        assert alloc == [10, 20]

    def test_over_capacity_split_by_weight(self):
        alloc = weighted_water_fill([100, 100], [3, 1], 80)
        assert alloc == pytest.approx([60, 20])

    def test_small_demand_fully_served_before_weights_apply(self):
        alloc = weighted_water_fill([5, 1000], [1, 1], 100)
        assert alloc == pytest.approx([5, 95])

    def test_total_never_exceeds_capacity(self):
        alloc = weighted_water_fill([50, 60, 70], [1, 2, 3], 100)
        assert sum(alloc) == pytest.approx(100)

    def test_zero_demand_gets_zero(self):
        alloc = weighted_water_fill([0, 50], [1, 1], 100)
        assert alloc == [0, 50]


class TestQueueDelayCurve:
    def test_zero_below_knee(self):
        cfg = MemoryConfig()
        assert queue_delay_for(0.0, cfg) == 0.0
        assert queue_delay_for(0.5, cfg) == 0.0

    def test_max_at_and_beyond_saturation(self):
        cfg = MemoryConfig()
        assert queue_delay_for(1.0, cfg) == pytest.approx(
            cfg.max_queue_delay)
        assert queue_delay_for(1.5, cfg) == pytest.approx(
            cfg.max_queue_delay)

    def test_monotone_increasing(self):
        cfg = MemoryConfig()
        values = [queue_delay_for(r / 100, cfg) for r in range(0, 151, 5)]
        assert all(a <= b for a, b in zip(values, values[1:]))


def make_controller(**overrides):
    sim = Simulator()
    return sim, MemoryController(sim, MemoryConfig(**overrides))


class TestMemoryController:
    def test_duplicate_source_rejected(self):
        _, mem = make_controller()
        mem.register_counter("a", "nic")
        with pytest.raises(ValueError):
            mem.register_counter("a", "cpu")
        with pytest.raises(ValueError):
            mem.register_constant("a", "cpu", 1e9)

    def test_bad_source_class_rejected(self):
        _, mem = make_controller()
        with pytest.raises(ValueError):
            mem.register_counter("x", "gpu")

    def test_negative_constant_rate_rejected(self):
        _, mem = make_controller()
        with pytest.raises(ValueError):
            mem.register_constant("x", "cpu", -1.0)

    def test_idle_latency_when_uncontended(self):
        sim, mem = make_controller()
        sim.run(until=1e-3)
        assert mem.dma_write_latency() == pytest.approx(
            mem.config.idle_latency)
        assert mem.walk_access_latency() == pytest.approx(
            mem.config.walk_base_latency)

    def test_constant_source_drives_utilization(self):
        sim, mem = make_controller(achievable_Bps=100e9)
        mem.register_constant("stream", "cpu", 50e9)
        sim.run(until=1e-3)
        assert mem.utilization == pytest.approx(0.5)

    def test_latency_rises_under_saturation(self):
        sim, mem = make_controller(achievable_Bps=100e9)
        mem.register_constant("stream", "cpu", 120e9)
        sim.run(until=1e-3)
        assert mem.dma_write_latency() == pytest.approx(
            mem.config.idle_latency + mem.config.max_queue_delay)
        # Walks see only a fraction of the inflation.
        assert mem.walk_access_latency() < mem.dma_write_latency()

    def test_counter_source_rate_converges(self):
        sim, mem = make_controller(achievable_Bps=100e9)
        counter = mem.register_counter("nic", "nic")
        interval = mem.config.tick_interval

        def feed():
            counter.add(int(10e9 * interval))  # 10 GB/s
            sim.call(interval, feed)

        sim.call(0.0, feed)
        sim.run(until=2e-3)  # many demand_tau periods
        assert counter.rate_Bps == pytest.approx(10e9, rel=0.05)

    def test_allocation_respects_weights_under_saturation(self):
        sim, mem = make_controller(achievable_Bps=90e9,
                                   cpu_weight=4.0, nic_weight=1.0)
        mem.register_constant("stream", "cpu", 120e9)
        mem.register_constant("nic-ish", "nic", 60e9)
        sim.run(until=1e-3)
        alloc = mem.current_demands()
        achieved = mem.achieved_bandwidth()
        # CPU gets its weighted share: 4/5 of 90 = 72, NIC 18.  (First
        # tick happens 20 µs in, so integrals carry ~2% startup slack.)
        assert achieved["stream"] == pytest.approx(72e9, rel=0.05)
        assert achieved["nic-ish"] == pytest.approx(18e9, rel=0.05)
        assert alloc["stream"] == 120e9

    def test_total_achieved_capped_at_capacity(self):
        sim, mem = make_controller(achievable_Bps=90e9)
        mem.register_constant("a", "cpu", 80e9)
        mem.register_constant("b", "cpu", 80e9)
        sim.run(until=1e-3)
        assert mem.total_achieved_bandwidth() <= 90e9 * 1.001

    def test_mba_reservation_caps_cpu_demand(self):
        sim, mem = make_controller(achievable_Bps=100e9,
                                   nic_reserved_fraction=0.2)
        mem.register_constant("stream", "cpu", 200e9)
        sim.run(until=1e-3)
        # CPU demand capped at 80 GB/s, so rho = 0.8: no saturation.
        assert mem.utilization == pytest.approx(0.8, rel=0.01)

    def test_reset_accounting_restarts_integrals(self):
        sim, mem = make_controller(achievable_Bps=100e9)
        mem.register_constant("stream", "cpu", 50e9)
        sim.run(until=1e-3)
        mem.reset_accounting()
        sim.run(until=2e-3)
        assert mem.achieved_bandwidth()["stream"] == pytest.approx(
            50e9, rel=0.05)

    def test_set_constant_rate_updates_demand(self):
        sim, mem = make_controller(achievable_Bps=100e9)
        mem.register_constant("stream", "cpu", 10e9)
        sim.run(until=0.5e-3)
        mem.set_constant_rate("stream", 70e9)
        sim.run(until=1.5e-3)
        assert mem.utilization == pytest.approx(0.7, rel=0.01)
