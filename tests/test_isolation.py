"""Tests for the isolation study (victim RPCs on a congested host)."""

import pytest

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.workload.isolation import (
    IsolationResult,
    _IsolationWorkload,
    congested_vs_uncongested,
    run_isolation_study,
)
from repro.sim import Simulator


def config(cores=12, senders=8, seed=1):
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=cores)),
        workload=WorkloadConfig(senders=senders),
        sim=SimConfig(warmup=2e-3, duration=4e-3, seed=seed),
    )


def test_victims_are_one_per_thread():
    sim = Simulator()
    workload = _IsolationWorkload(sim, config(cores=3, senders=5))
    victims = workload.victim_flow_ids()
    assert len(victims) == 3
    assert len(workload.elephant_flow_ids()) == 12
    for flow_id in victims:
        assert workload.receiver.per_flow_packets[flow_id] == 1


def test_requires_two_senders():
    with pytest.raises(ValueError):
        run_isolation_study(config(senders=1))


def test_study_produces_both_latency_classes():
    result = run_isolation_study(config())
    assert result.victim.count > 10
    assert result.elephant.count > 10
    # Single-MTU victim reads complete faster than 4-packet elephants
    # at the median.
    assert result.victim.p50 <= result.elephant.p50


def test_congestion_inflates_victim_tail():
    results = congested_vs_uncongested(config())
    congested = results["congested"]
    baseline = results["uncongested"]
    # The congested host drops packets; the baseline does not.
    assert congested.drop_rate > baseline.drop_rate
    # Victims pay for their neighbours: p99 blow-up at least 2x.
    assert congested.victim_penalty_p99(baseline) > 2.0


def test_penalty_requires_baseline_samples():
    result = run_isolation_study(config())
    empty = IsolationResult(
        victim=result.elephant.__class__(0, 0, 0, 0, 0, 0),
        elephant=result.elephant,
        drop_rate=0.0,
        app_throughput_gbps=0.0,
    )
    with pytest.raises(ValueError):
        result.victim_penalty_p99(empty)
