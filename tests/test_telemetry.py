"""The in-sim telemetry plane: bus semantics, sampler cadence, and the
non-perturbation guarantee.

The load-bearing properties: the bus never stalls or perturbs the
publisher (bounded queues, drop counting), the sampler ticks at
drift-free ``epoch + k·interval`` absolute sim times, and attaching a
sampler leaves every experiment output bit-identical — including
across worker counts.
"""

import dataclasses

import pytest

from repro.core.config import (
    CpuConfig,
    ExperimentConfig,
    HostConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.core.experiment import ExperimentHandle, run_experiment
from repro.core.sweep import run_sweep
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    MetricsSampler,
    TelemetryBus,
    TelemetrySample,
    classify_root_cause,
)
from repro.sim.engine import Simulator


def sample(time, name, value, kind="counter"):
    return TelemetrySample(time=time, name=name, kind=kind, value=value)


def tiny_config(seed=3, sample_interval=None):
    return ExperimentConfig(
        host=HostConfig(cpu=CpuConfig(cores=2)),
        workload=WorkloadConfig(senders=4),
        sim=SimConfig(warmup=0.5e-3, duration=1e-3, seed=seed,
                      sample_interval=sample_interval),
    )


class TestTelemetryBus:
    def test_subscribe_receives_published(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        bus.publish(sample(1.0, "nic.drops", 3))
        bus.publish(sample(2.0, "nic.drops", 5))
        got = sub.poll()
        assert [(s.time, s.value) for s in got] == [(1.0, 3), (2.0, 5)]
        assert sub.poll() == []  # poll drains

    def test_prefix_filtering(self):
        bus = TelemetryBus()
        nic_only = bus.subscribe(prefix="nic.")
        everything = bus.subscribe()
        bus.publish(sample(1.0, "nic.drops", 1))
        bus.publish(sample(1.0, "host.throughput", 9, kind="gauge"))
        assert [s.name for s in nic_only.poll()] == ["nic.drops"]
        assert len(everything.poll()) == 2

    def test_unsubscribe_stops_delivery(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        assert bus.unsubscribe(sub) is True
        assert bus.unsubscribe(sub) is False  # already gone
        bus.publish(sample(1.0, "nic.drops", 1))
        assert sub.poll() == []

    def test_close_is_unsubscribe(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        sub.close()
        bus.publish(sample(1.0, "nic.drops", 1))
        assert len(sub) == 0

    def test_bounded_queue_drops_oldest_and_counts(self):
        bus = TelemetryBus()
        sub = bus.subscribe(maxlen=2)
        for i in range(5):
            bus.publish(sample(float(i), "nic.drops", i))
        assert sub.dropped == 3
        assert sub.delivered == 5
        # Most recent survive — a slow consumer sees fresh data.
        assert [s.value for s in sub.poll()] == [3, 4]

    def test_last_value_queries(self):
        bus = TelemetryBus()
        bus.publish(sample(1.0, "nic.drops", 3))
        bus.publish(sample(2.0, "nic.drops", 7))
        assert bus.names() == ["nic.drops"]
        assert bus.last("nic.drops").time == 2.0
        assert bus.value("nic.drops") == 7
        assert bus.value("missing", default=-1.0) == -1.0
        assert bus.last("missing") is None

    def test_delta_and_rate_over_window(self):
        bus = TelemetryBus()
        for t, v in ((0.0, 0.0), (1.0, 10.0), (2.0, 30.0),
                     (3.0, 60.0)):
            bus.publish(sample(t, "nic.drops", v))
        # Window of 2s from t=3: baseline is the sample at t=1.
        assert bus.delta("nic.drops", window=2.0) == 50.0
        assert bus.rate("nic.drops", window=2.0) == 25.0
        # Window larger than history falls back to the oldest sample.
        assert bus.delta("nic.drops", window=100.0) == 60.0

    def test_delta_needs_two_samples(self):
        bus = TelemetryBus()
        assert bus.delta("nic.drops", 1.0) is None
        bus.publish(sample(1.0, "nic.drops", 5))
        assert bus.delta("nic.drops", 1.0) is None
        assert bus.rate("nic.drops", 1.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryBus(history=1)
        with pytest.raises(ValueError):
            TelemetryBus().subscribe(maxlen=0)


class TestMetricsSampler:
    def make(self, interval=1e-4, select=None):
        sim = Simulator()
        registry = MetricsRegistry()
        counter = registry.counter("polls", "nic")
        registry.gauge("depth", "nic", fn=lambda: 2.5)
        bus = TelemetryBus()
        sampler = MetricsSampler(sim, registry, bus,
                                 interval=interval, select=select)
        return sim, counter, bus, sampler

    def test_drift_free_absolute_tick_times(self):
        sim, _counter, bus, sampler = self.make(interval=1e-4)
        sub = bus.subscribe(prefix="nic.polls")
        sim.at(3e-4, sampler.start)  # epoch mid-run, not at zero
        sim.run(until=8.05e-4)
        times = [s.time for s in sub.poll()]
        assert times == pytest.approx(
            [4e-4, 5e-4, 6e-4, 7e-4, 8e-4], abs=1e-12)
        assert sampler.ticks == 5

    def test_samples_carry_live_registry_values(self):
        sim, counter, bus, sampler = self.make(interval=1e-4)
        sub = bus.subscribe(prefix="nic.polls")
        sim.at(0.5e-4, lambda: counter.inc(3))
        sim.at(1.5e-4, lambda: counter.inc(4))
        sampler.start()
        sim.run(until=2.5e-4)
        assert [s.value for s in sub.poll()] == [3.0, 7.0]

    def test_select_restricts_polled_names(self):
        sim, _counter, bus, sampler = self.make(
            interval=1e-4, select=("nic.depth",))
        sub = bus.subscribe()
        sampler.start()
        sim.run(until=1.5e-4)
        names = {s.name for s in sub.poll()}
        assert names == {"nic.depth"}

    def test_stop_disarms_pending_tick(self):
        sim, _counter, bus, sampler = self.make(interval=1e-4)
        sampler.start()
        sim.at(2.5e-4, sampler.stop)
        sim.run(until=9e-4)
        assert sampler.ticks == 2  # ticks at 1e-4 and 2e-4 only

    def test_start_is_idempotent(self):
        sim, _counter, _bus, sampler = self.make(interval=1e-4)
        sampler.start()
        sampler.start()
        sim.run(until=1.5e-4)
        assert sampler.ticks == 1

    def test_rejects_nonpositive_interval(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MetricsSampler(sim, MetricsRegistry(), TelemetryBus(),
                           interval=0.0)


class TestExperimentIntegration:
    def test_sampler_does_not_perturb_results(self):
        plain = run_experiment(tiny_config())
        sampled = run_experiment(
            tiny_config(sample_interval=1e-4))
        assert sampled.metrics == plain.metrics
        assert sampled.message_latency_us == plain.message_latency_us

    def test_params_identical_with_and_without_sampler(self):
        # sample_interval is observability config, not an experiment
        # parameter: it must not show up in params (or cache keys).
        plain = run_experiment(tiny_config())
        sampled = run_experiment(tiny_config(sample_interval=1e-4))
        assert sampled.params == plain.params

    def test_disabled_by_default(self):
        handle = ExperimentHandle(tiny_config())
        assert handle.sampler is None
        assert handle.telemetry is None
        assert handle.telemetry_samples() == []
        handle.run_warmup()
        handle.run_measurement()
        assert "telemetry" not in handle.metrics_snapshot()

    def test_snapshot_carries_telemetry_block(self):
        config = tiny_config(sample_interval=1e-4)
        handle = ExperimentHandle(config)
        handle.run_warmup()
        handle.run_measurement()
        handle.collect()
        block = handle.metrics_snapshot()["telemetry"]
        assert block["interval"] == 1e-4
        # warmup 0.5 ms + duration 1 ms at 0.1 ms cadence = 10 ticks.
        assert block["ticks"] == 10
        assert block["dropped"] == 0
        assert len(block["samples"]) == block["ticks"] * (
            len(block["samples"]) // block["ticks"])
        first = block["samples"][0]
        assert len(first) == 4  # [time, name, kind, value]
        assert first[0] >= config.sim.warmup

    def test_telemetry_samples_accessor(self):
        handle = ExperimentHandle(tiny_config(sample_interval=1e-4))
        handle.run_warmup()
        handle.run_measurement()
        samples = handle.telemetry_samples()
        assert samples
        assert all(isinstance(s, TelemetrySample) for s in samples)
        names = {s.name for s in samples}
        assert any(name.startswith("nic") for name in names)
        # The sampler's own counters are registered too.
        assert any(name.startswith("sampler") for name in names)

    def test_epoch_is_warmup_boundary(self):
        config = tiny_config(sample_interval=1e-4)
        handle = ExperimentHandle(config)
        handle.run_warmup()
        handle.run_measurement()
        times = sorted({s.time for s in handle.telemetry_samples()})
        warmup = config.sim.warmup
        expected = [warmup + (k + 1) * 1e-4 for k in range(10)]
        assert times == pytest.approx(expected, abs=1e-12)


class TestWorkerDeterminism:
    def test_sampler_output_identical_workers_1_vs_4(self):
        def configs():
            return [
                dataclasses.replace(
                    tiny_config(seed=seed),
                    sim=SimConfig(warmup=0.5e-3, duration=1e-3,
                                  seed=seed, sample_interval=2e-4))
                for seed in (3, 4, 5)
            ]

        serial_snaps: list = []
        parallel_snaps: list = []
        run_sweep(configs(), workers=1, snapshots_out=serial_snaps)
        run_sweep(configs(), workers=4, snapshots_out=parallel_snaps)
        assert len(serial_snaps) == 3
        assert serial_snaps == parallel_snaps  # telemetry included
        for snap in serial_snaps:
            assert snap["telemetry"]["ticks"] > 0
            assert snap["telemetry"]["samples"]


class TestClassifyRootCause:
    def test_taxonomy(self):
        assert classify_root_cause(
            {"antagonist_cores": 12}) == "memory-bus"
        assert classify_root_cause(
            {"iommu": True, "cores": 12}) == "iommu"
        assert classify_root_cause(
            {"iommu": True, "cores": 4}) == "cpu-or-none"
        assert classify_root_cause({}) == "cpu-or-none"
        assert classify_root_cause(
            {"antagonist_cores": "garbage"}) == "unknown"
