"""Unit tests for the SimComponent protocol and Component recursion."""

import dataclasses

from repro.core.sweep import baseline_config
from repro.core.topology import GraphBuilder
from repro.obs.metrics import MetricsRegistry
from repro.sim import Component, SimComponent, Simulator, join_name


# -- join_name ---------------------------------------------------------------


def test_join_name_composes_paths():
    assert join_name("host0", "nic") == "host0/nic"
    assert join_name("host0/nic", "buffer") == "host0/nic/buffer"


def test_join_name_empty_is_identity():
    assert join_name("", "nic") == "nic"
    assert join_name("host0", "") == "host0"
    assert join_name("", "") == ""


# -- recursion over a fake tree ----------------------------------------------


class Leaf(Component):
    def __init__(self, label):
        self.label = label
        self.resets = 0
        self.bound_names = []

    def bind_own_metrics(self, registry, name):
        self.bound_names.append(name)
        registry.counter("events", component=name)

    def reset_own_stats(self):
        self.resets += 1

    def own_snapshot(self):
        return {"resets": self.resets}


class Pair(Component):
    def __init__(self, label, left, right):
        self.label = label
        self.left = left
        self.right = right

    def children(self):
        return (("left", self.left), ("right", self.right))


def make_tree():
    a, b, c = Leaf("a"), Leaf("b"), Leaf("c")
    root = Pair("root", Pair("inner", a, b), c)
    return root, (a, b, c)


def test_reset_stats_hits_every_leaf_exactly_once():
    root, leaves = make_tree()
    root.reset_stats()
    assert [leaf.resets for leaf in leaves] == [1, 1, 1]
    root.reset_stats()
    assert [leaf.resets for leaf in leaves] == [2, 2, 2]


def test_bind_metrics_namespaces_by_path():
    root, leaves = make_tree()
    registry = MetricsRegistry()
    root.bind_metrics(registry, "root")
    assert [leaf.bound_names for leaf in leaves] == [
        ["root/left/left"], ["root/left/right"], ["root/right"]]
    assert "root/right.events" in registry


def test_bind_metrics_empty_name_uses_label():
    leaf = Leaf("nic")
    registry = MetricsRegistry()
    leaf.bind_metrics(registry)
    assert leaf.bound_names == ["nic"]
    assert "nic.events" in registry


def test_snapshot_merges_children_by_relative_path():
    root, _ = make_tree()
    snap = root.snapshot()
    assert snap == {"left/left/resets": 0, "left/right/resets": 0,
                    "right/resets": 0}


def test_describe_reports_tree_shape():
    root, _ = make_tree()
    doc = root.describe()
    assert doc["type"] == "Pair"
    assert set(doc["children"]) == {"left", "right"}
    assert doc["children"]["left"]["children"]["right"]["label"] == "b"


# -- the real graph ----------------------------------------------------------


def _quick_config(receivers=1):
    base = baseline_config(warmup=1e-3, duration=2e-3)
    return dataclasses.replace(
        base,
        workload=dataclasses.replace(base.workload, receivers=receivers))


def _walk(component, out=None):
    out = out if out is not None else []
    out.append(component)
    for _, child in component.children():
        _walk(child, out)
    return out


def test_topology_nodes_implement_protocol():
    topology = GraphBuilder(_quick_config()).build(Simulator())
    for node in _walk(topology):
        assert isinstance(node, SimComponent), type(node).__name__
        assert isinstance(node, Component), type(node).__name__


def test_topology_walk_reaches_every_leaf_exactly_once():
    topology = GraphBuilder(_quick_config()).build(Simulator())
    nodes = _walk(topology)
    ids = [id(node) for node in nodes]
    assert len(ids) == len(set(ids)), "a component appears twice"
    host = topology.host
    for leaf in (host.nic, host.pcie, host.iommu, host.iotlb,
                 host.memory, host.copy_model, topology.receiver,
                 topology.fabric.ports[0], *host.threads):
        assert sum(1 for node in nodes if node is leaf) == 1, leaf


def test_topology_rebinds_cleanly_on_fresh_registry():
    topology = GraphBuilder(_quick_config()).build(Simulator())
    topology.bind_metrics(MetricsRegistry())
    # A second registry is a fresh namespace: no duplicate errors.
    registry = MetricsRegistry()
    topology.bind_metrics(registry)
    assert "nic.rx_packets" in registry
    assert "transport.mean_cwnd" in registry
    assert "receiver.messages_completed" in registry
    assert "fabric.fabric_drops" in registry


def test_multi_host_binding_prefixes_each_host():
    topology = GraphBuilder(_quick_config(receivers=2)).build(Simulator())
    registry = MetricsRegistry()
    topology.bind_metrics(registry)
    for name in ("host0/nic.rx_packets", "host1/nic.rx_packets",
                 "host0.app_throughput_gbps", "host1.app_throughput_gbps",
                 "host0/transport.mean_cwnd", "fabric.fabric_drops"):
        assert name in registry, name
